//! The end-to-end pipeline drivers.

use crate::recorders::{SamplerRecorder, StreamingRecorder};
use memgaze_analysis::{AnalysisConfig, Analyzer, StreamingAnalyzer, StreamingReport};
use memgaze_instrument::{InstrumentConfig, Instrumented, Instrumenter};
use memgaze_model::{
    AuxAnnotations, FrameIndex, FullTrace, ModelError, SampledTrace, ShardReader, SymbolTable,
    TraceMeta,
};
use memgaze_ptsim::{
    BandwidthModel, OverheadModel, RunStats, SamplerConfig, StreamFull, StreamSampler, StreamStats,
};
use memgaze_workloads::ubench::MicroBench;
use memgaze_workloads::{Allocation, FnRecorder, Phase, TracedSpace};
use serde::{Deserialize, Serialize};

/// Pipeline configuration: collection, instrumentation, analysis, and
/// overhead-model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Processor-Tracing collection parameters.
    pub sampler: SamplerConfig,
    /// Instrumentor configuration (ROI, compression).
    pub instrument: InstrumentConfig,
    /// Analysis parameters.
    pub analysis: AnalysisConfig,
    /// Overhead-model constants.
    pub overhead: OverheadModel,
}

impl PipelineConfig {
    /// The paper's microbenchmark setup: 10-K-load period, 16-KiB buffer.
    pub fn microbench() -> PipelineConfig {
        PipelineConfig {
            sampler: SamplerConfig::microbench(),
            instrument: InstrumentConfig::default(),
            analysis: AnalysisConfig::default(),
            overhead: OverheadModel::default(),
        }
    }

    /// The paper's application setup: large period, 8-KiB buffer.
    pub fn application(period: u64) -> PipelineConfig {
        PipelineConfig {
            sampler: SamplerConfig::application(period),
            instrument: InstrumentConfig::default(),
            analysis: AnalysisConfig::default(),
            overhead: OverheadModel::default(),
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::microbench()
    }
}

/// Result of tracing an IR microbenchmark.
pub struct MicroReport {
    /// The decoded sampled trace.
    pub trace: SampledTrace,
    /// Instrumentation side tables (annotations keyed by original ip).
    pub instrumented: Instrumented,
    /// Run statistics (exec + packets).
    pub run: RunStats,
}

impl MicroReport {
    /// An analyzer over this report.
    pub fn analyzer(&self, cfg: AnalysisConfig) -> Analyzer<'_> {
        Analyzer::new(
            &self.trace,
            &self.instrumented.annots,
            &self.instrumented.orig_symbols,
        )
        .with_config(cfg)
    }
}

/// Result of tracing a native workload.
pub struct WorkloadReport {
    /// The sampled trace.
    pub trace: SampledTrace,
    /// Annotation file from the site registry.
    pub annots: AuxAnnotations,
    /// Symbols from the site registry.
    pub symbols: SymbolTable,
    /// Per-phase execution counters.
    pub phases: Vec<Phase>,
    /// Collection statistics.
    pub stream: StreamStats,
    /// Simulated allocations (object → address range).
    pub allocations: Vec<Allocation>,
}

impl WorkloadReport {
    /// An analyzer over this report.
    pub fn analyzer(&self, cfg: AnalysisConfig) -> Analyzer<'_> {
        Analyzer::new(&self.trace, &self.annots, &self.symbols).with_config(cfg)
    }

    /// Address range of the most recent allocation with `label`.
    pub fn object_range(&self, label: &str) -> Option<(u64, u64)> {
        self.allocations
            .iter()
            .rev()
            .find(|a| a.label == label)
            .map(|a| (a.base, a.base + a.bytes))
    }

    /// Address range covering *all* allocations with `label`.
    pub fn label_range(&self, label: &str) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for a in self.allocations.iter().filter(|a| a.label == label) {
            lo = lo.min(a.base);
            hi = hi.max(a.base + a.bytes);
        }
        (lo < hi).then_some((lo, hi))
    }
}

/// Result of full-trace collection over a workload.
pub struct FullWorkloadReport {
    /// The full trace ('Rec' when a bandwidth model dropped packets,
    /// 'All' otherwise).
    pub trace: FullTrace,
    /// Annotation file.
    pub annots: AuxAnnotations,
    /// Symbols.
    pub symbols: SymbolTable,
    /// Per-phase counters.
    pub phases: Vec<Phase>,
    /// Allocations.
    pub allocations: Vec<Allocation>,
}

/// Interpreter step budget for profiling and collection runs.
pub(crate) const MAX_INSTRS: u64 = 2_000_000_000;

/// The pipeline façade.
pub struct MemGaze {
    cfg: PipelineConfig,
}

impl MemGaze {
    /// A pipeline with the given configuration.
    pub fn new(cfg: PipelineConfig) -> MemGaze {
        MemGaze { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Run a microbenchmark end-to-end on the IR path: generate,
    /// instrument (`ptwrite` insertion), execute, collect, decode.
    pub fn run_microbench(
        &self,
        bench: &MicroBench,
    ) -> Result<MicroReport, Box<dyn std::error::Error>> {
        let _run_span = memgaze_obs::span("pipeline.run_microbench");
        let module = bench.module();
        // Opt-in verification gate: with MEMGAZE_VERIFY=1, the module is
        // linted (IR verifier + differential classification + plan
        // checker) and the run aborts on any error-severity diagnostic.
        if std::env::var("MEMGAZE_VERIFY").is_ok_and(|v| v == "1") {
            let _span = memgaze_obs::span("pipeline.verify");
            let report = memgaze_instrument::lint_module(&module, &self.cfg.instrument);
            if report.has_errors() {
                let msgs: Vec<String> = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == memgaze_isa::Severity::Error)
                    .map(|d| d.to_string())
                    .collect();
                return Err(format!(
                    "MEMGAZE_VERIFY: {} lint error(s) in module '{}':\n{}",
                    msgs.len(),
                    module.name,
                    msgs.join("\n")
                )
                .into());
            }
        }
        let inst = {
            let _span = memgaze_obs::span("pipeline.instrument");
            Instrumenter::new(self.cfg.instrument.clone()).instrument(&module)
        };
        let main = inst
            .module
            .find_proc("main")
            .ok_or("generated module lacks a main procedure")?;
        let (trace, run, _outcome) = {
            let _span = memgaze_obs::span("pipeline.collect");
            memgaze_ptsim::collect_sampled(&inst, main, self.cfg.sampler.clone(), &bench.name())?
        };
        Ok(MicroReport {
            trace,
            instrumented: inst,
            run,
        })
    }

    /// Ground-truth full trace of a microbenchmark (validation baseline).
    pub fn microbench_ground_truth(
        &self,
        bench: &MicroBench,
    ) -> Result<FullTrace, Box<dyn std::error::Error>> {
        let module = bench.module();
        let main = module
            .find_proc("main")
            .ok_or("generated module lacks a main procedure")?;
        let (trace, _stats) = memgaze_ptsim::ground_truth(&module, main, &bench.name())?;
        Ok(trace)
    }
}

/// Trace a native workload through the sampled collector. The closure
/// receives the traced space and performs the workload; its return value
/// is passed through.
pub fn trace_workload<T>(
    name: &str,
    cfg: &SamplerConfig,
    run: impl FnOnce(&mut TracedSpace<SamplerRecorder>) -> T,
) -> (WorkloadReport, T) {
    let recorder = SamplerRecorder::new(StreamSampler::new(cfg.clone()));
    let mut space = TracedSpace::new(recorder);
    let value = {
        let mut span = memgaze_obs::span("pipeline.collect");
        if span.is_active() {
            span.set_label(name.to_string());
        }
        run(&mut space)
    };
    let annots = space.annotations();
    let symbols = space.symbols();
    let phases = space.phases().to_vec();
    let allocations = space.allocations().to_vec();
    let recorder = space.into_recorder();
    let (trace, stream) = recorder.sampler.finish(name);
    (
        WorkloadReport {
            trace,
            annots,
            symbols,
            phases,
            stream,
            allocations,
        },
        value,
    )
}

/// A typed failure of the streaming pipeline. The streaming path decodes
/// container bytes it wrote moments earlier, but "we just wrote it" is
/// not a proof — a recorder bug, a torn buffer, or future persistence of
/// containers across runs all make decode failures reachable, so they
/// surface as errors rather than panics.
#[derive(Debug)]
pub enum PipelineError {
    /// A container operation failed.
    Container {
        /// Which pipeline stage was running.
        stage: &'static str,
        /// The underlying model error.
        source: ModelError,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Container { stage, source } => {
                write!(f, "streaming pipeline failed at {stage}: {source}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Container { source, .. } => Some(source),
        }
    }
}

/// Result of the streaming workload path: a finished incremental analysis
/// plus the sharded container it was computed from. Unlike
/// [`WorkloadReport`] there is no resident [`SampledTrace`] — the trace
/// only ever existed one shard at a time.
pub struct StreamingWorkloadReport {
    /// The finished incremental analysis (bit-identical to the resident
    /// analyzer over the same trace).
    pub report: StreamingReport,
    /// Final trace metadata (trailer-patched totals).
    pub meta: TraceMeta,
    /// Annotation file from the site registry.
    pub annots: AuxAnnotations,
    /// Symbols from the site registry.
    pub symbols: SymbolTable,
    /// Per-phase execution counters.
    pub phases: Vec<Phase>,
    /// Collection statistics.
    pub stream: StreamStats,
    /// Simulated allocations (object → address range).
    pub allocations: Vec<Allocation>,
    /// The sharded v2 container the analysis consumed; kept so callers
    /// can persist it or re-run other analyses shard by shard.
    pub container: Vec<u8>,
    /// Frame index sidecar for `container`, enabling seek-based fan-out
    /// without rescanning the container.
    pub index: FrameIndex,
}

impl StreamingWorkloadReport {
    /// Persist the sharded container into a content-addressed
    /// [`TraceStore`](memgaze_store::TraceStore) under `id` — the
    /// pipeline-side ingestion hook. Frames already stored (from any
    /// trace) deduplicate to the existing blobs; the trace can then be
    /// re-analyzed, fanned out, or queried without the resident bytes.
    pub fn put_into(
        &self,
        store: &memgaze_store::TraceStore,
        id: &str,
    ) -> Result<memgaze_store::PutReceipt, memgaze_store::StoreError> {
        store.put(id, &self.container, &self.index, &self.symbols)
    }
}

/// Run a [`StreamingAnalyzer`] over every frame of a sharded container.
/// This is the resident-side analysis step of
/// [`trace_workload_streaming`], split out so callers holding persisted
/// container bytes can analyze them too. Corrupt or truncated containers
/// yield a typed [`PipelineError`], never a panic.
pub fn analyze_shard_container(
    container: &[u8],
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    analysis: AnalysisConfig,
    locality_sizes: &[u64],
) -> Result<(StreamingReport, TraceMeta), PipelineError> {
    let mut span = memgaze_obs::span("pipeline.analyze");
    if span.is_active() {
        span.set_label(format!("{} container bytes", container.len()));
    }
    let mut reader = ShardReader::new(container).map_err(|source| PipelineError::Container {
        stage: "container header decode",
        source,
    })?;
    let mut analyzer = StreamingAnalyzer::new(annots, symbols, analysis);
    if !locality_sizes.is_empty() {
        analyzer = analyzer.with_locality_sizes(locality_sizes);
    }
    for shard in reader.by_ref() {
        let shard = shard.map_err(|source| PipelineError::Container {
            stage: "shard frame decode",
            source,
        })?;
        analyzer.ingest_shard(&shard.samples);
    }
    let meta = reader.meta().clone();
    let report = analyzer.finish(&meta);
    Ok((report, meta))
}

/// Trace a native workload through the streaming path: completed samples
/// are encoded into sharded container frames as the workload runs, then
/// decoded one shard at a time into a [`StreamingAnalyzer`], so the full
/// trace is never materialized. The analysis runs after the workload
/// because annotations and symbols only exist once the run completes.
pub fn trace_workload_streaming<T>(
    name: &str,
    cfg: &SamplerConfig,
    shard_samples: usize,
    analysis: AnalysisConfig,
    locality_sizes: &[u64],
    run: impl FnOnce(&mut TracedSpace<StreamingRecorder>) -> T,
) -> Result<(StreamingWorkloadReport, T), PipelineError> {
    let provisional = TraceMeta::new(name, cfg.period, cfg.buffer_bytes);
    let recorder =
        StreamingRecorder::new(StreamSampler::new(cfg.clone()), &provisional, shard_samples);
    let mut space = TracedSpace::new(recorder);
    let value = {
        let mut span = memgaze_obs::span("pipeline.collect");
        if span.is_active() {
            span.set_label(name.to_string());
        }
        run(&mut space)
    };
    let annots = space.annotations();
    let symbols = space.symbols();
    let phases = space.phases().to_vec();
    let allocations = space.allocations().to_vec();
    let (container, index, _meta, stream) = {
        let _span = memgaze_obs::span("pipeline.seal");
        space
            .into_recorder()
            .finish(name)
            .map_err(|source| PipelineError::Container {
                stage: "container seal",
                source,
            })?
    };

    let (report, meta) =
        analyze_shard_container(&container, &annots, &symbols, analysis, locality_sizes)?;
    Ok((
        StreamingWorkloadReport {
            report,
            meta,
            annots,
            symbols,
            phases,
            stream,
            allocations,
            container,
            index,
        },
        value,
    ))
}

/// Collect a full trace of a native workload ('Rec' with a bandwidth
/// model, 'All' with `None`).
pub fn full_trace_workload<T>(
    name: &str,
    bw: Option<BandwidthModel>,
    compress: bool,
    run: impl FnOnce(&mut TracedSpace<crate::recorders::FullRecorder>) -> T,
) -> (FullWorkloadReport, T) {
    let full = match bw {
        Some(b) => StreamFull::new(b),
        None => StreamFull::unlimited(),
    };
    let mut space = TracedSpace::new(crate::recorders::FullRecorder::new(full));
    space.set_compress(compress);
    let value = run(&mut space);
    let annots = space.annotations();
    let symbols = space.symbols();
    let phases = space.phases().to_vec();
    let allocations = space.allocations().to_vec();
    let trace = space.into_recorder().full.finish(name);
    (
        FullWorkloadReport {
            trace,
            annots,
            symbols,
            phases,
            allocations,
        },
        value,
    )
}

/// Count a workload's loads without collecting anything (used to size
/// sampling periods).
pub fn dry_run_loads<T>(
    run: impl FnOnce(&mut TracedSpace<FnRecorder<fn(memgaze_model::Ip, u64, bool, u8)>>) -> T,
) -> (u64, T) {
    fn nop(_: memgaze_model::Ip, _: u64, _: bool, _: u8) {}
    let mut space = TracedSpace::new(FnRecorder(nop as fn(memgaze_model::Ip, u64, bool, u8)));
    let value = run(&mut space);
    (space.counters().loads, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_workloads::minivite::{self, MapVariant, MiniViteConfig};
    use memgaze_workloads::ubench::{MicroBench, OptLevel};

    #[test]
    fn microbench_pipeline_end_to_end() {
        let bench = MicroBench::parse("str2|irr", 1024, 10, OptLevel::O3).unwrap();
        let mut cfg = PipelineConfig::microbench();
        cfg.sampler.period = 2000;
        let report = MemGaze::new(cfg.clone()).run_microbench(&bench).unwrap();
        assert!(report.trace.num_samples() > 1);
        assert!(report.run.exec.ptwrites > 0);

        let analyzer = report.analyzer(cfg.analysis);
        let rows = analyzer.function_table();
        assert!(rows.iter().any(|r| r.name == "kernel"));
        // The kernel mixes strided and irregular loads.
        let kernel = rows.iter().find(|r| r.name == "kernel").unwrap();
        assert!(kernel.f_str_pct > 0.0 && kernel.f_str_pct < 100.0);
    }

    #[test]
    fn workload_pipeline_end_to_end() {
        let mut cfg = SamplerConfig::application(20_000);
        cfg.seed = 9;
        let mv = MiniViteConfig {
            scale: 7,
            degree: 6,
            iterations: 1,
            variant: MapVariant::V2,
            seed: 3,
            v2_default_capacity: 64,
        };
        let (report, result) =
            trace_workload("miniVite-v2", &cfg, |space| minivite::run(space, &mv));
        assert!(!result.communities.is_empty());
        assert!(report.trace.num_samples() > 0);
        assert!(report.stream.total_loads > 20_000);
        assert_eq!(report.phases.len(), 3);
        assert!(report.label_range("map").is_some());

        let analyzer = report.analyzer(AnalysisConfig::default());
        let rows = analyzer.function_table();
        assert!(
            rows.iter().any(|r| r.name == "map.insert"),
            "hot functions: {:?}",
            rows.iter().map(|r| r.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streaming_workload_matches_resident_pipeline() {
        let mut cfg = SamplerConfig::application(20_000);
        cfg.seed = 9;
        let mv = MiniViteConfig {
            scale: 7,
            degree: 6,
            iterations: 1,
            variant: MapVariant::V2,
            seed: 3,
            v2_default_capacity: 64,
        };
        let sizes = [16u64, 64];
        let (resident, _) = trace_workload("miniVite-v2", &cfg, |space| minivite::run(space, &mv));
        let (streamed, result) = trace_workload_streaming(
            "miniVite-v2",
            &cfg,
            2,
            AnalysisConfig::default(),
            &sizes,
            |space| minivite::run(space, &mv),
        )
        .unwrap();
        assert!(!result.communities.is_empty());
        streamed.index.validate(&streamed.container).unwrap();
        // Deterministic workload + same seed → identical trace, so the
        // container decodes back to the resident trace exactly.
        let decoded = memgaze_model::decode_sharded(&streamed.container).unwrap();
        assert_eq!(decoded, resident.trace);
        assert_eq!(streamed.meta, resident.trace.meta);
        assert_eq!(streamed.phases, resident.phases);
        assert_eq!(streamed.stream.total_loads, resident.stream.total_loads);

        // And the incremental analysis matches the resident analyzer bit
        // for bit.
        let analyzer = resident.analyzer(AnalysisConfig::default());
        assert_eq!(streamed.report.decompression, analyzer.decompression());
        assert_eq!(streamed.report.function_rows, analyzer.function_table());
        assert_eq!(&streamed.report.block_reuse, analyzer.block_reuse());
        assert_eq!(
            streamed.report.locality_series,
            memgaze_analysis::locality_vs_interval_with(
                &resident.trace,
                &resident.annots,
                AnalysisConfig::default().reuse_block,
                &sizes,
                1,
            )
        );
        assert_eq!(streamed.report.interval_rows(8), analyzer.interval_rows(8));
        let n = resident.trace.num_samples() as u64;
        assert_eq!(streamed.report.ingest.shards, n.div_ceil(2));
        assert_eq!(streamed.report.ingest.samples, n);
    }

    #[test]
    fn corrupt_container_is_a_typed_error_not_a_panic() {
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let cfg = AnalysisConfig::default();
        // Garbage bytes: header decode fails.
        let err =
            analyze_shard_container(b"not a container", &annots, &symbols, cfg, &[]).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Container {
                stage: "container header decode",
                ..
            }
        ));
        // A valid container truncated mid-frame: frame decode fails.
        let mut trace = SampledTrace::new(TraceMeta::new("t", 100, 8192));
        for s in 0..6u64 {
            let acc = (0..40)
                .map(|i| memgaze_model::Access::new(0x400u64, (s * 64 + i) * 64, s * 100 + i))
                .collect();
            trace
                .push_sample(memgaze_model::Sample::new(acc, s * 100 + 40))
                .unwrap();
        }
        trace.meta.total_loads = 600;
        let container = memgaze_model::encode_sharded(&trace, 2);
        let truncated = &container[..container.len() - 10];
        let err = analyze_shard_container(truncated, &annots, &symbols, cfg, &[]).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Container {
                stage: "shard frame decode",
                ..
            }
        ));
        assert!(err.to_string().contains("shard frame decode"), "{err}");
    }

    #[test]
    fn full_and_sampled_see_same_stream() {
        let mv = MiniViteConfig {
            scale: 6,
            degree: 4,
            iterations: 1,
            variant: MapVariant::V1,
            seed: 3,
            v2_default_capacity: 64,
        };
        let (full, _) = full_trace_workload("mv", None, true, |s| minivite::run(s, &mv));
        let (loads, _) = dry_run_loads(|s| minivite::run(s, &mv));
        assert_eq!(full.trace.meta.total_loads, loads);
        assert!(full.trace.accesses.len() as u64 <= loads);
        assert_eq!(full.trace.dropped, 0);
    }

    #[test]
    fn uncompressed_full_trace_is_larger() {
        let mv = MiniViteConfig {
            scale: 6,
            degree: 4,
            iterations: 1,
            variant: MapVariant::V1,
            seed: 3,
            v2_default_capacity: 64,
        };
        let (comp, _) = full_trace_workload("mv", None, true, |s| minivite::run(s, &mv));
        let (unc, _) = full_trace_workload("mv", None, false, |s| minivite::run(s, &mv));
        // miniVite's sites are all non-constant here, so the counts can
        // tie; the uncompressed trace must never be smaller.
        assert!(unc.trace.accesses.len() >= comp.trace.accesses.len());
    }
}
