//! Per-phase overhead estimation (paper Fig. 7).
//!
//! Converts the workloads' per-phase execution counters into the overhead
//! model's [`RunProfile`]s and evaluates both PT modes: continuous
//! ("suboptimal kernel support") and sample-only (MemGaze-opt).

use memgaze_ptsim::{OverheadModel, PtMode, RunProfile};
use memgaze_workloads::Phase;
use serde::{Deserialize, Serialize};

/// Overhead estimate of one phase under one PT mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseOverhead {
    /// Phase name.
    pub phase: String,
    /// Fractional overhead (0.4 = 40%).
    pub overhead: f64,
    /// Slowdown factor.
    pub slowdown: f64,
    /// The Fig. 7 predictor: ptwrites / non-ptwrite instructions.
    pub ptwrite_ratio: f64,
    /// Loads executed in the phase.
    pub loads: u64,
}

/// Build one [`RunProfile`] from a phase's counters. `enabled_fraction`
/// is the share of `ptwrite`s executed while PT was enabled (1.0 for
/// continuous mode; the collector's measured ratio for opt mode).
pub fn profile_of(phase: &Phase, enabled_fraction: f64, bytes_per_packet: u64) -> RunProfile {
    let c = &phase.counters;
    let enabled = (c.ptwrites as f64 * enabled_fraction).round() as u64;
    RunProfile {
        instrs: c.instrs,
        loads: c.loads,
        stores: c.stores,
        ptwrites_executed: c.ptwrites,
        ptwrites_enabled: enabled,
        bytes_generated: enabled * bytes_per_packet,
    }
}

/// Evaluate every phase (skipping empty ones) under the given mode.
pub fn phase_profiles(
    phases: &[Phase],
    model: &OverheadModel,
    mode: PtMode,
    measured_enabled_fraction: f64,
) -> Vec<PhaseOverhead> {
    let frac = match mode {
        PtMode::Continuous => 1.0,
        PtMode::SampleOnly => measured_enabled_fraction.clamp(0.0, 1.0),
    };
    phases
        .iter()
        .filter(|p| p.counters.loads > 0)
        .map(|p| {
            let prof = profile_of(p, frac, memgaze_ptsim::packet::PTW_BYTES);
            let est = model.estimate(&prof);
            PhaseOverhead {
                phase: p.name.clone(),
                overhead: est.overhead(),
                slowdown: est.slowdown(),
                ptwrite_ratio: prof.ptwrite_ratio(),
                loads: prof.loads,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_workloads::Counters;

    fn phase(name: &str, loads: u64, stores: u64) -> Phase {
        let ptw = loads / 2;
        Phase {
            name: name.to_string(),
            counters: Counters {
                loads,
                stores,
                instrs: loads * 3 + stores * 2 + ptw,
                ptwrites: ptw,
                instrumented_loads: ptw,
            },
        }
    }

    #[test]
    fn continuous_overhead_exceeds_opt() {
        let phases = vec![
            phase("graphgen", 1_000_000, 100_000),
            phase("rank", 2_000_000, 50_000),
        ];
        let model = OverheadModel::default();
        let cont = phase_profiles(&phases, &model, PtMode::Continuous, 1.0);
        let opt = phase_profiles(&phases, &model, PtMode::SampleOnly, 0.05);
        assert_eq!(cont.len(), 2);
        for (c, o) in cont.iter().zip(&opt) {
            assert!(
                c.overhead > o.overhead,
                "{}: {} vs {}",
                c.phase,
                c.overhead,
                o.overhead
            );
            // Opt overhead approaches the ptwrite execution rate.
            assert!((o.overhead - o.ptwrite_ratio).abs() < 0.15);
        }
    }

    #[test]
    fn empty_phases_skipped() {
        let phases = vec![
            Phase {
                name: "main".into(),
                counters: Counters::default(),
            },
            phase("work", 1000, 10),
        ];
        let out = phase_profiles(&phases, &OverheadModel::default(), PtMode::Continuous, 1.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].phase, "work");
    }

    #[test]
    fn ratio_tracks_instrumentation_density() {
        let p = phase("x", 1_000_000, 0);
        let prof = profile_of(&p, 1.0, 10);
        // ptw = 500k; non-ptw instrs = 3M → ratio ≈ 0.1667.
        assert!((prof.ptwrite_ratio() - 0.5 / 3.0).abs() < 1e-9);
        assert_eq!(prof.bytes_generated, 500_000 * 10);
    }
}
