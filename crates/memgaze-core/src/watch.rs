//! `memgaze watch`: live rolling-window monitoring of a running
//! workload with an adaptive-sampling feedback controller.
//!
//! Every other collection path runs to completion before analysis
//! starts; the watch loop interleaves them. Between workload steps it
//! drains the sampler's completed samples, closes fixed-size windows,
//! analyzes each window with a fresh [`StreamingAnalyzer`], folds the
//! result into the bounded [`WindowRing`] (raising [`AnomalyMark`]s on
//! metric drift), and feeds the sampler's drop-rate/pressure
//! observation to a [`Controller`] that retunes the period (`w + z`),
//! buffer capacity, and hardware address-range guards at runtime — the
//! governor pattern: observe one interval, nudge one knob, clamp to
//! bounds, settle when the signal holds inside the target band.
//!
//! Every closed window is also written as one container frame, so a
//! pinned-controller run can be replayed offline frame by frame and
//! each window's report compared field-for-field against a resident
//! analysis of the same slice (`tests/watch_equivalence.rs`).

use memgaze_analysis::{
    window_meta, AnalysisConfig, AnomalyMark, LiveConfig, StreamingAnalyzer, WindowRing,
    WindowStats,
};
use memgaze_model::{
    AuxAnnotations, FrameIndex, LoadClass, Sample, ShardWriter, SymbolTable, TraceMeta,
};
use memgaze_ptsim::{IpGuards, SamplerConfig, SamplerObservation, StreamStats};
use memgaze_workloads::TracedSpace;

use crate::pipeline::PipelineError;
use crate::recorders::SamplerRecorder;

/// Whether the feedback controller may touch the sampling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerMode {
    /// Observe only: knobs never change, so the collected stream is a
    /// pure function of the workload and the initial configuration —
    /// the mode the bit-identity proof runs in.
    Pinned,
    /// Retune period/buffer/guards from the observed drop rate.
    Adaptive,
}

impl std::str::FromStr for ControllerMode {
    type Err = String;
    fn from_str(s: &str) -> Result<ControllerMode, String> {
        match s {
            "pinned" => Ok(ControllerMode::Pinned),
            "adaptive" => Ok(ControllerMode::Adaptive),
            other => Err(format!("unknown controller mode {other:?}")),
        }
    }
}

/// Controller law parameters.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Drop-rate band `[lo, hi]` the controller steers into.
    pub target_drop: (f64, f64),
    /// Period clamp (loads per sample).
    pub period_bounds: (u64, u64),
    /// Buffer clamp (bytes).
    pub buffer_bounds: (u64, u64),
    /// Multiplicative step per retune.
    pub gain: f64,
    /// Consecutive in-band windows before the controller counts as
    /// converged.
    pub settle_windows: usize,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig {
            target_drop: (0.0, 0.6),
            period_bounds: (500, 1 << 20),
            buffer_bounds: (512, 256 << 10),
            gain: 1.5,
            settle_windows: 3,
        }
    }
}

/// What a retune did to the guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardAction {
    /// Guards untouched.
    Keep,
    /// Narrowed to the hottest function's range.
    Narrow,
    /// Restored to the initial guards.
    Restore,
}

/// One controller decision, recorded per retuned window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retune {
    /// Window whose observation triggered the retune.
    pub window: usize,
    /// Observed drop rate that interval.
    pub drop_rate: f64,
    /// Observed peak buffer pressure that interval.
    pub pressure: f64,
    /// Period in force after the retune.
    pub period: u64,
    /// Buffer capacity in force after the retune.
    pub buffer_bytes: u64,
    /// Guard change, if any.
    pub guard: GuardAction,
}

/// The feedback governor: one observation in, at most one knob out.
///
/// Escalation above the band: grow the buffer (cheapest — more trace
/// memory) until clamped, then shrink the period (snapshots drain the
/// buffer more often), then narrow the IP guards to the hottest
/// function (shed enabled packets). Below the band the steps unwind in
/// reverse. Inside the band nothing moves and the settle streak grows.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    mode: ControllerMode,
    period: u64,
    buffer_bytes: u64,
    narrowed: bool,
    streak: usize,
    converged_at: Option<usize>,
    trace: Vec<Retune>,
    last_drop: f64,
}

impl Controller {
    /// A controller starting from the sampler's initial knobs.
    pub fn new(mode: ControllerMode, cfg: ControllerConfig, sampler: &SamplerConfig) -> Controller {
        Controller {
            cfg,
            mode,
            period: sampler.period,
            buffer_bytes: sampler.buffer_bytes,
            narrowed: false,
            streak: 0,
            converged_at: None,
            trace: Vec::new(),
            last_drop: 0.0,
        }
    }

    /// Feed one interval's observation; returns the retune to apply,
    /// if any. Pinned mode observes (tracking convergence of the
    /// as-configured knobs) but never retunes.
    pub fn observe(&mut self, window: usize, obs: &SamplerObservation) -> Option<Retune> {
        let drop = obs.drop_rate();
        let pressure = obs.pressure();
        self.last_drop = drop;
        let (lo, hi) = self.cfg.target_drop;
        if drop >= lo && drop <= hi {
            self.streak += 1;
            if self.streak >= self.cfg.settle_windows && self.converged_at.is_none() {
                self.converged_at = Some(window);
            }
            return None;
        }
        self.streak = 0;
        if self.mode == ControllerMode::Pinned {
            return None;
        }
        let gain = self.cfg.gain.max(1.01);
        let guard = if drop > hi {
            // Too lossy: buffer, then period, then guards.
            let grown = ((self.buffer_bytes as f64 * gain) as u64).min(self.cfg.buffer_bounds.1);
            if grown > self.buffer_bytes {
                self.buffer_bytes = grown;
                GuardAction::Keep
            } else {
                let shrunk = ((self.period as f64 / gain) as u64).max(self.cfg.period_bounds.0);
                if shrunk < self.period {
                    self.period = shrunk;
                    GuardAction::Keep
                } else if !self.narrowed {
                    self.narrowed = true;
                    GuardAction::Narrow
                } else {
                    return None; // fully saturated: nothing left to move
                }
            }
        } else {
            // Below the band: unwind in reverse — restore guards, then
            // stretch the period back toward coverage.
            if self.narrowed {
                self.narrowed = false;
                GuardAction::Restore
            } else {
                let grown = ((self.period as f64 * gain) as u64).min(self.cfg.period_bounds.1);
                if grown > self.period {
                    self.period = grown;
                    GuardAction::Keep
                } else {
                    return None;
                }
            }
        };
        let r = Retune {
            window,
            drop_rate: drop,
            pressure,
            period: self.period,
            buffer_bytes: self.buffer_bytes,
            guard,
        };
        self.trace.push(r);
        Some(r)
    }

    /// Window at which the settle streak completed, if it has.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// Whether the drop rate has held in band for the settle window.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Every retune applied so far.
    pub fn trace(&self) -> &[Retune] {
        &self.trace
    }

    /// The most recent interval's drop rate.
    pub fn last_drop_rate(&self) -> f64 {
        self.last_drop
    }

    /// Knobs currently in force.
    pub fn knobs(&self) -> (u64, u64) {
        (self.period, self.buffer_bytes)
    }
}

/// Watch-loop configuration.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Samples per window.
    pub window_samples: usize,
    /// Rolling-ring and anomaly parameters.
    pub live: LiveConfig,
    /// Controller law.
    pub controller: ControllerConfig,
    /// Pinned or adaptive.
    pub mode: ControllerMode,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            window_samples: 8,
            live: LiveConfig::default(),
            controller: ControllerConfig::default(),
            mode: ControllerMode::Adaptive,
        }
    }
}

/// Everything a watch run produced.
#[derive(Debug)]
pub struct WatchReport {
    /// Per-window drift stats, in window order (every window, not just
    /// those still in the ring).
    pub windows: Vec<WindowStats>,
    /// Every anomaly mark raised.
    pub anomalies: Vec<AnomalyMark>,
    /// The ring itself (recent windows' full reports).
    pub ring: WindowRing,
    /// Controller retune trace.
    pub retunes: Vec<Retune>,
    /// Window where the controller's settle streak completed.
    pub converged_at: Option<usize>,
    /// Drop rate of the final observed interval.
    pub final_drop_rate: f64,
    /// One container frame per closed window (the replay artifact).
    pub container: Vec<u8>,
    /// Frame index for `container`.
    pub index: FrameIndex,
    /// Final trace metadata.
    pub meta: TraceMeta,
    /// Site annotations at end of run.
    pub annots: AuxAnnotations,
    /// Symbols at end of run.
    pub symbols: SymbolTable,
    /// Collection statistics.
    pub stream: StreamStats,
    /// Sampling knobs at collection start — the values window metadata
    /// derives from on both the live and the replay side.
    pub initial_period: u64,
    /// Initial buffer capacity (see `initial_period`).
    pub initial_buffer_bytes: u64,
    /// Samples per window the run used.
    pub window_samples: usize,
}

/// Run a step-based workload under the watch loop. `step` is called
/// with the space and a 0-based step index until it returns `false`;
/// the loop drains samples, closes windows, and retunes between steps.
pub fn watch_workload(
    name: &str,
    sampler_cfg: &SamplerConfig,
    watch: &WatchConfig,
    analysis: AnalysisConfig,
    locality_sizes: &[u64],
    mut step: impl FnMut(&mut TracedSpace<SamplerRecorder>, usize) -> bool,
) -> Result<WatchReport, PipelineError> {
    let initial_period = sampler_cfg.period;
    let initial_buffer = sampler_cfg.buffer_bytes;
    let initial_guards = sampler_cfg.guards.clone();
    let window_samples = watch.window_samples.max(1);

    let provisional = TraceMeta::new(name, initial_period, initial_buffer);
    let mut writer = ShardWriter::new(Vec::new(), &provisional)
        .expect("writing a container header to a Vec cannot fail");

    let recorder = SamplerRecorder::new(memgaze_ptsim::StreamSampler::new(sampler_cfg.clone()));
    let mut space = TracedSpace::new(recorder);
    let mut ring = WindowRing::new(watch.live);
    let mut controller = Controller::new(watch.mode, watch.controller, sampler_cfg);
    let mut windows: Vec<WindowStats> = Vec::new();
    let mut pending: Vec<Sample> = Vec::new();
    let mut hottest: Option<String> = None;

    let close_window = |window_slice: &[Sample],
                        space: &TracedSpace<SamplerRecorder>,
                        ring: &mut WindowRing,
                        windows: &mut Vec<WindowStats>,
                        writer: &mut ShardWriter<Vec<u8>>,
                        hottest: &mut Option<String>| {
        writer
            .write_shard(window_slice)
            .expect("writing a shard frame to a Vec cannot fail");
        let annots = space.annotations();
        let symbols = space.symbols();
        let mut sa =
            StreamingAnalyzer::new(&annots, &symbols, analysis).with_locality_sizes(locality_sizes);
        sa.ingest_shard(window_slice);
        let meta = window_meta(name, initial_period, initial_buffer, window_slice);
        let report = sa.finish(&meta);
        *hottest = report.function_rows.first().map(|r| r.name.clone());
        let (stats, marks) = ring.push(report);
        windows.push(stats);
        publish_window_gauges(&stats, marks.len());
    };

    let mut i = 0usize;
    loop {
        let more = step(&mut space, i);
        i += 1;
        pending.extend(space.recorder_mut().sampler.take_completed());
        while pending.len() >= window_samples {
            let window_slice: Vec<Sample> = pending.drain(..window_samples).collect();
            close_window(
                &window_slice,
                &space,
                &mut ring,
                &mut windows,
                &mut writer,
                &mut hottest,
            );
            let obs = space.recorder_mut().sampler.take_observation();
            let window = windows.len() - 1;
            if let Some(r) = controller.observe(window, &obs) {
                let guards = match r.guard {
                    GuardAction::Keep => space.recorder_mut().sampler.config().guards.clone(),
                    GuardAction::Narrow => match &hottest {
                        Some(name) => IpGuards::from_functions(&space.symbols(), [name.as_str()]),
                        None => initial_guards.clone(),
                    },
                    GuardAction::Restore => initial_guards.clone(),
                };
                space
                    .recorder_mut()
                    .sampler
                    .retune(r.period, r.buffer_bytes, guards);
            }
            publish_controller_gauges(&controller, &obs);
        }
        if !more {
            break;
        }
    }

    let annots = space.annotations();
    let symbols = space.symbols();
    let recorder = space.into_recorder();
    let (meta, tail, stream) = recorder.sampler.finish_parts(name);
    pending.extend(tail);
    // Close remaining windows, including a trailing partial one — the
    // live view should not silently drop the stream's tail.
    for window_slice in pending.chunks(window_samples) {
        writer
            .write_shard(window_slice)
            .expect("writing a shard frame to a Vec cannot fail");
        let mut sa =
            StreamingAnalyzer::new(&annots, &symbols, analysis).with_locality_sizes(locality_sizes);
        sa.ingest_shard(window_slice);
        let wmeta = window_meta(name, initial_period, initial_buffer, window_slice);
        let report = sa.finish(&wmeta);
        let (stats, marks) = ring.push(report);
        windows.push(stats);
        publish_window_gauges(&stats, marks.len());
    }

    let (container, index) = writer
        .finish_indexed(meta.total_loads, meta.total_instrumented_loads)
        .map_err(|source| PipelineError::Container {
            stage: "watch-seal",
            source,
        })?;

    Ok(WatchReport {
        anomalies: ring.anomalies().to_vec(),
        windows,
        retunes: controller.trace().to_vec(),
        converged_at: controller.converged_at(),
        final_drop_rate: controller.last_drop_rate(),
        ring,
        container,
        index,
        meta,
        annots,
        symbols,
        stream,
        initial_period,
        initial_buffer_bytes: initial_buffer,
        window_samples,
    })
}

fn publish_window_gauges(stats: &WindowStats, marks: usize) {
    memgaze_obs::gauge!("watch.window").set(stats.window as u64);
    memgaze_obs::gauge!("watch.f_hat_bytes").set(stats.f_hat_bytes as u64);
    memgaze_obs::gauge!("watch.mean_d_milli").set((stats.mean_d * 1000.0) as u64);
    memgaze_obs::gauge!("watch.df_irr_pct").set(stats.delta_f_irr_pct as u64);
    memgaze_obs::gauge!("watch.a_const_pct").set(stats.a_const_pct as u64);
    if marks > 0 {
        memgaze_obs::counter!("watch.anomalies").add(marks as u64);
    }
}

fn publish_controller_gauges(controller: &Controller, obs: &SamplerObservation) {
    let (period, buffer) = controller.knobs();
    memgaze_obs::gauge!("watch.controller.period").set(period);
    memgaze_obs::gauge!("watch.controller.buffer_bytes").set(buffer);
    memgaze_obs::gauge!("watch.controller.drop_pct").set((obs.drop_rate() * 100.0) as u64);
    memgaze_obs::gauge!("watch.controller.pressure_pct").set((obs.pressure() * 100.0) as u64);
    memgaze_obs::gauge!("watch.controller.retunes").set(controller.trace().len() as u64);
    memgaze_obs::gauge!("watch.controller.converged").set(u64::from(controller.converged()));
}

/// The synthetic phase-shift workload the smoke run and the equivalence
/// tests drive: a strided streaming phase over a small array, then an
/// irregular two-source pointer-chase over a much larger region. The
/// shift raises footprint, reuse distance, and `ΔF_irr%` together —
/// and doubles the packet rate, pressing the circular buffer.
pub fn phase_shift_steps(
    space: &mut TracedSpace<SamplerRecorder>,
    step: usize,
    total_steps: usize,
    loads_per_step: usize,
) -> bool {
    if step == 0 {
        space.alloc("stream", 64 << 10);
        space.alloc("chase", 8 << 20);
        space.phase("strided");
    }
    let shift_at = total_steps / 2;
    if step == shift_at {
        space.phase("irregular");
    }
    if step < shift_at {
        let site = space.site("stream_sum", "a[i]", LoadClass::Strided, false, 10);
        let base = space.find_allocation("stream").expect("stream alloc").base;
        for l in 0..loads_per_step {
            let off = ((step * loads_per_step + l) as u64 * 64) % (64 << 10);
            space.load(site, base + off);
        }
    } else {
        let site = space.site("chase_walk", "n->next", LoadClass::Irregular, true, 20);
        let base = space.find_allocation("chase").expect("chase alloc").base;
        for l in 0..loads_per_step {
            let x = (step * loads_per_step + l) as u64;
            let off = (x.wrapping_mul(2654435761) ^ (x << 7)) % (8 << 20);
            space.load(site, base + (off & !7));
        }
    }
    step + 1 < total_steps
}

/// Scripted smoke: run the phase-shift workload under an adaptive
/// controller starting from a deliberately undersized buffer. Asserts
/// the run raised at least one anomaly mark and that the controller
/// converged (drop rate inside the target band for the settle streak).
/// Returns a human-readable summary, or the first failure.
pub fn watch_smoke() -> Result<String, String> {
    let (report, watch) = smoke_run(ControllerMode::Adaptive)?;
    if report.anomalies.is_empty() {
        return Err("smoke run raised no anomaly marks".to_string());
    }
    if report.converged_at.is_none() {
        return Err(format!(
            "controller failed to converge (final drop rate {:.2}, {} retunes)",
            report.final_drop_rate,
            report.retunes.len()
        ));
    }
    let (lo, hi) = watch.controller.target_drop;
    if report.final_drop_rate < lo || report.final_drop_rate > hi {
        return Err(format!(
            "final drop rate {:.2} outside band [{lo:.2}, {hi:.2}]",
            report.final_drop_rate
        ));
    }
    Ok(format!(
        "watch smoke: {} windows, {} anomaly marks (first: {}), controller converged at \
         window {} after {} retunes, final drop rate {:.2} in band [{lo:.2}, {hi:.2}]",
        report.windows.len(),
        report.anomalies.len(),
        report.anomalies[0].detail(),
        report.converged_at.unwrap_or(0),
        report.retunes.len(),
        report.final_drop_rate,
    ))
}

/// The smoke run itself, shared with `bench_watch`: phase-shift
/// workload, undersized initial buffer, watch config tuned so the
/// adaptive controller has room to converge before the run ends.
pub fn smoke_run(mode: ControllerMode) -> Result<(WatchReport, WatchConfig), String> {
    let mut cfg = SamplerConfig::application(2_000);
    cfg.buffer_bytes = 1 << 10;
    let watch = WatchConfig {
        window_samples: 4,
        mode,
        ..WatchConfig::default()
    };
    let report = watch_workload(
        "watch-smoke",
        &cfg,
        &watch,
        AnalysisConfig::default(),
        &[16, 64, 256],
        |space, step| phase_shift_steps(space, step, 64, 4_000),
    )
    .map_err(|e| e.to_string())?;
    Ok((report, watch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_watch_never_retunes_and_is_deterministic() {
        let (a, _) = smoke_run(ControllerMode::Pinned).unwrap();
        let (b, _) = smoke_run(ControllerMode::Pinned).unwrap();
        assert!(a.retunes.is_empty());
        assert_eq!(a.container, b.container);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.anomalies, b.anomalies);
    }

    #[test]
    fn smoke_raises_anomalies_and_converges() {
        let summary = watch_smoke().expect("smoke must pass");
        assert!(summary.contains("anomaly"), "{summary}");
        assert!(summary.contains("converged"), "{summary}");
    }

    #[test]
    fn controller_escalates_to_guard_narrowing_when_saturated() {
        let sampler = SamplerConfig {
            period: 1000,
            buffer_bytes: 512,
            ..SamplerConfig::application(1000)
        };
        let cfg = ControllerConfig {
            target_drop: (0.0, 0.01),
            period_bounds: (1000, 1000),
            buffer_bounds: (512, 512),
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(ControllerMode::Adaptive, cfg, &sampler);
        let obs = SamplerObservation {
            enabled_packets: 1000,
            overwritten_packets: 900,
            peak_used_bytes: 512,
            buffer_bytes: 512,
        };
        let r = c.observe(0, &obs).expect("saturated knobs must narrow");
        assert_eq!(r.guard, GuardAction::Narrow);
        // Fully saturated and already narrowed: nothing left to move.
        assert!(c.observe(1, &obs).is_none());
    }

    #[test]
    fn controller_relaxes_below_band() {
        let sampler = SamplerConfig {
            period: 1000,
            buffer_bytes: 4096,
            ..SamplerConfig::application(1000)
        };
        let cfg = ControllerConfig {
            target_drop: (0.2, 0.6),
            period_bounds: (500, 4000),
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(ControllerMode::Adaptive, cfg, &sampler);
        let idle = SamplerObservation {
            enabled_packets: 1000,
            overwritten_packets: 0,
            peak_used_bytes: 100,
            buffer_bytes: 4096,
        };
        let r = c.observe(0, &idle).expect("below band must stretch period");
        assert!(r.period > 1000);
        assert_eq!(r.guard, GuardAction::Keep);
    }
}
