//! Multi-process fan-out coordinator: partition an indexed sharded
//! container across workers, retry crashed or hung workers, and fold the
//! partial reports in shard order into a [`StreamingReport`] that is
//! bit-identical to the resident analyzer.
//!
//! Two backends share every other moving part:
//!
//! * [`FanoutBackend::InProcess`] runs each range on a coordinator
//!   thread — no serialization, no processes; the reference backend for
//!   tests and the fallback when no worker binary is available;
//! * [`FanoutBackend::Subprocess`] spawns `<exe> analyze-shard`
//!   subprocesses that seek into the container via the frame-index
//!   sidecar and ship [`PartialReport`]s back over a pipe (`MGZW`
//!   framing). A worker that exits nonzero, produces garbage, or
//!   exceeds the timeout is killed and its range re-run in a fresh
//!   subprocess, up to [`FanoutConfig::max_attempts`] tries.
//!
//! Crash-path tests inject failures via environment variables passed to
//! workers ([`FanoutConfig::worker_env`]): `MEMGAZE_FANOUT_CRASH_ONCE`
//! names a marker file; the first worker to see it absent creates it,
//! emits garbage, and exits nonzero — so exactly one attempt fails and
//! the retry succeeds. `MEMGAZE_FANOUT_HANG_ONCE` does the same but
//! sleeps past any reasonable timeout instead;
//! `MEMGAZE_FANOUT_SHORT_WRITE_ONCE` frames a payload longer than it
//! writes; `MEMGAZE_FANOUT_STDERR_FLOOD_ONCE` floods stderr before
//! exiting nonzero; and `MEMGAZE_FANOUT_PANIC_ONCE` panics an
//! [`FanoutBackend::InProcess`] worker thread.
//!
//! The coordinator never panics on a worker's behalf: mutexes poisoned
//! by a panicking in-process worker are recovered (the protected data
//! is only ever mutated under short, non-panicking critical sections),
//! the panic itself is caught and routed through the same retry path as
//! a crashed subprocess, and malformed worker output is a typed
//! [`FanoutError::Protocol`].
//!
//! With observability on (`MEMGAZE_OBS`), the run records a
//! `fanout.run` span over per-range `fanout.range`/`fanout.attempt`
//! spans plus `fanout.retry`/`fanout.kill` marks; each subprocess
//! worker inherits the attempt span via `MEMGAZE_OBS_PARENT` and writes
//! its own JSONL event file into the scratch directory, which the
//! coordinator absorbs into one stitched trace.

use memgaze_analysis::{
    analyze_frames, partition_frames, AnalysisConfig, PartialError, PartialReport, StreamingReport,
    WorkerSpec,
};
use memgaze_model::{AuxAnnotations, FrameIndex, ModelError, ShardReader, SymbolTable, TraceMeta};
use std::io::{Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Magic framing the worker's stdout payload.
const WORKER_MAGIC: &[u8; 4] = b"MGZW";

/// Crash-injection env var: a marker-file path; first worker to find it
/// absent creates it, writes garbage, and exits nonzero.
pub const CRASH_ONCE_ENV: &str = "MEMGAZE_FANOUT_CRASH_ONCE";
/// Hang-injection env var: like [`CRASH_ONCE_ENV`] but sleeps instead.
pub const HANG_ONCE_ENV: &str = "MEMGAZE_FANOUT_HANG_ONCE";
/// Short-write injection: the worker frames a payload longer than what
/// it actually writes, then exits 0 — exercising framing validation.
pub const SHORT_WRITE_ONCE_ENV: &str = "MEMGAZE_FANOUT_SHORT_WRITE_ONCE";
/// Stderr-flood injection: the worker writes megabytes of stderr before
/// exiting nonzero — exercising the drain cap.
pub const STDERR_FLOOD_ONCE_ENV: &str = "MEMGAZE_FANOUT_STDERR_FLOOD_ONCE";
/// Panic injection for the [`FanoutBackend::InProcess`] backend: the
/// first in-process worker to find the marker absent creates it and
/// panics. Read from [`FanoutConfig::worker_env`], never the process
/// environment, so parallel tests cannot contaminate each other.
pub const PANIC_ONCE_ENV: &str = "MEMGAZE_FANOUT_PANIC_ONCE";

/// Stderr bytes kept per worker attempt; the rest is drained (so the
/// child cannot deadlock on a full pipe) but dropped, and the failure
/// detail notes how much was truncated.
const STDERR_KEEP: usize = 64 * 1024;

/// Recover a possibly-poisoned fan-out mutex. Poisoning here means a
/// worker thread panicked; the coordinator's critical sections only do
/// plain pushes/stores, so the data is still consistent and the run
/// must keep going rather than cascade the panic.
fn lock_live<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fan-out run parameters.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Worker slots (and the target number of frame ranges).
    pub workers: usize,
    /// Analysis threads inside each worker.
    pub threads_per_worker: usize,
    /// Attempts per range before the run fails.
    pub max_attempts: u32,
    /// Wall-clock budget per worker attempt.
    pub timeout: Duration,
    /// Locality-vs-interval sizes to accumulate.
    pub locality_sizes: Vec<u64>,
    /// Extra environment for spawned workers (failure injection in
    /// tests; empty in production).
    pub worker_env: Vec<(String, String)>,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        FanoutConfig {
            workers: 4,
            threads_per_worker: 1,
            max_attempts: 3,
            timeout: Duration::from_secs(120),
            locality_sizes: Vec::new(),
            worker_env: Vec::new(),
        }
    }
}

/// Where worker ranges execute.
#[derive(Debug, Clone)]
pub enum FanoutBackend {
    /// Coordinator threads calling [`analyze_frames`] directly.
    InProcess,
    /// `<exe> analyze-shard` subprocesses exchanging partials over
    /// pipes.
    Subprocess {
        /// The `memgaze` binary to spawn (usually
        /// `std::env::current_exe()`).
        exe: PathBuf,
    },
}

/// One failed worker attempt (the run may still succeed via retry).
#[derive(Debug, Clone)]
pub struct WorkerFailure {
    /// The frame range the attempt was assigned.
    pub range: (usize, usize),
    /// 1-based attempt number.
    pub attempt: u32,
    /// What went wrong.
    pub detail: String,
}

/// A fan-out run's result: the merged report plus scheduling facts.
#[derive(Debug)]
pub struct FanoutRunReport {
    /// The merged analysis, bit-identical to the resident analyzer.
    pub report: StreamingReport,
    /// Trace metadata with trailer-patched totals.
    pub meta: TraceMeta,
    /// The frame ranges that were dispatched.
    pub ranges: Vec<Range<usize>>,
    /// Worker attempts beyond the first, summed over ranges.
    pub retries: u32,
    /// Every failed attempt, in completion order.
    pub failures: Vec<WorkerFailure>,
}

/// Fan-out failures.
#[derive(Debug)]
pub enum FanoutError {
    /// Container or index rejected by the model layer.
    Model(ModelError),
    /// A partial report failed to decode or merge.
    Partial(PartialError),
    /// Scratch-file or pipe I/O failed.
    Io(std::io::Error),
    /// A frame range failed every attempt.
    RangeFailed {
        /// Range start (frame index).
        lo: usize,
        /// Range end (exclusive).
        hi: usize,
        /// Attempts made.
        attempts: u32,
        /// The last attempt's failure.
        last: String,
    },
    /// A worker spoke the protocol wrong (bad framing, bad arguments).
    Protocol {
        /// What was malformed.
        detail: String,
    },
}

impl std::fmt::Display for FanoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanoutError::Model(e) => write!(f, "fan-out model error: {e}"),
            FanoutError::Partial(e) => write!(f, "fan-out partial-report error: {e}"),
            FanoutError::Io(e) => write!(f, "fan-out i/o error: {e}"),
            FanoutError::RangeFailed {
                lo,
                hi,
                attempts,
                last,
            } => write!(
                f,
                "frame range {lo}..{hi} failed all {attempts} attempts; last error: {last}"
            ),
            FanoutError::Protocol { detail } => write!(f, "fan-out protocol error: {detail}"),
        }
    }
}

impl std::error::Error for FanoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FanoutError::Model(e) => Some(e),
            FanoutError::Partial(e) => Some(e),
            FanoutError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for FanoutError {
    fn from(e: ModelError) -> Self {
        FanoutError::Model(e)
    }
}

impl From<PartialError> for FanoutError {
    fn from(e: PartialError) -> Self {
        FanoutError::Partial(e)
    }
}

impl From<std::io::Error> for FanoutError {
    fn from(e: std::io::Error) -> Self {
        FanoutError::Io(e)
    }
}

/// Monotonic scratch-directory discriminator within this process.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Scratch files shared by all workers of one subprocess run; the
/// directory is removed on drop, success or failure.
struct Scratch {
    dir: PathBuf,
    spec: PathBuf,
    container: PathBuf,
    index: PathBuf,
}

impl Scratch {
    fn write(container: &[u8], index: &FrameIndex, spec: &WorkerSpec) -> std::io::Result<Scratch> {
        let dir = std::env::temp_dir().join(format!(
            "memgaze-fanout-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let s = Scratch {
            spec: dir.join("spec.bin"),
            container: dir.join("container.bin"),
            index: dir.join("index.bin"),
            dir,
        };
        std::fs::write(&s.spec, spec.encode())?;
        std::fs::write(&s.container, container)?;
        std::fs::write(&s.index, index.encode())?;
        Ok(s)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Analyze an indexed container by fanning its frame ranges out across
/// workers. The partials are merged **in shard order**, so the returned
/// report is bit-identical to the resident [`StreamingAnalyzer`]
/// (`memgaze_analysis::StreamingAnalyzer`) — and hence to the resident
/// `Analyzer` — for every worker count and shard size.
pub fn run_fanout(
    container: &[u8],
    index: &FrameIndex,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    analysis: AnalysisConfig,
    cfg: &FanoutConfig,
    backend: &FanoutBackend,
) -> Result<FanoutRunReport, FanoutError> {
    // Reject a stale index before dispatching anything: every downstream
    // read depends on it describing exactly these bytes.
    index.validate(container)?;
    let mut meta = ShardReader::new(container)?.meta().clone();
    meta.total_loads = index.total_loads;
    meta.total_instrumented_loads = index.total_instrumented_loads;

    let worker_cfg = AnalysisConfig {
        threads: cfg.threads_per_worker.max(1),
        ..analysis
    };
    let ranges = partition_frames(index, cfg.workers);

    let scratch = match backend {
        FanoutBackend::Subprocess { .. } => {
            let spec = WorkerSpec {
                footprint_block: worker_cfg.footprint_block,
                reuse_block: worker_cfg.reuse_block,
                threads: worker_cfg.threads,
                locality_sizes: cfg.locality_sizes.clone(),
                annots: annots.clone(),
                symbols: symbols.clone(),
            };
            Some(Scratch::write(container, index, &spec)?)
        }
        FanoutBackend::InProcess => None,
    };

    let queue: Mutex<Vec<Range<usize>>> = Mutex::new(ranges.clone());
    let results: Mutex<Vec<Option<PartialReport>>> = Mutex::new(vec![None; ranges.len()]);
    let failures: Mutex<Vec<WorkerFailure>> = Mutex::new(Vec::new());
    let retries = AtomicU64::new(0);
    let fatal: Mutex<Option<FanoutError>> = Mutex::new(None);
    let slots = cfg.workers.clamp(1, ranges.len().max(1));

    let mut run_span = memgaze_obs::span("fanout.run");
    if run_span.is_active() {
        run_span.set_label(format!(
            "{} frames, {} ranges, {} slots",
            index.entries.len(),
            ranges.len(),
            slots
        ));
    }
    let run_ctx = run_span.ctx();

    std::thread::scope(|scope| {
        for _ in 0..slots {
            scope.spawn(|| loop {
                if lock_live(&fatal).is_some() {
                    return;
                }
                let Some(range) = lock_live(&queue).pop() else {
                    return;
                };
                // A range index is its position in the (contiguous,
                // sorted) partition — recover it from the range starts.
                let Some(idx) = ranges.iter().position(|r| r.start == range.start) else {
                    let mut f = lock_live(&fatal);
                    if f.is_none() {
                        *f = Some(FanoutError::Protocol {
                            detail: format!(
                                "queued range {}..{} is not in the partition",
                                range.start, range.end
                            ),
                        });
                    }
                    return;
                };
                let mut range_span = memgaze_obs::span_under("fanout.range", run_ctx);
                if range_span.is_active() {
                    range_span.set_label(format!("frames {}..{}", range.start, range.end));
                }
                let mut attempt = 0u32;
                let outcome = loop {
                    attempt += 1;
                    memgaze_obs::counter!("fanout.attempts").add(1);
                    let run = {
                        let _attempt_span = memgaze_obs::span("fanout.attempt");
                        let parent = _attempt_span.ctx();
                        match (backend, &scratch) {
                            (FanoutBackend::InProcess, _) => run_worker_in_process(
                                container, index, &range, annots, symbols, worker_cfg, cfg,
                            ),
                            (FanoutBackend::Subprocess { exe }, Some(s)) => {
                                run_worker_subprocess(exe, s, &range, cfg, attempt, parent)
                            }
                            (FanoutBackend::Subprocess { .. }, None) => Err(
                                "internal: subprocess backend dispatched without scratch files"
                                    .to_string(),
                            ),
                        }
                    };
                    match run {
                        Ok(p) => break Ok(p),
                        Err(detail) => {
                            lock_live(&failures).push(WorkerFailure {
                                range: (range.start, range.end),
                                attempt,
                                detail: detail.clone(),
                            });
                            if attempt >= cfg.max_attempts.max(1) {
                                break Err(detail);
                            }
                            memgaze_obs::mark(
                                "fanout.retry",
                                &[
                                    ("range", format!("{}..{}", range.start, range.end)),
                                    ("attempt", attempt.to_string()),
                                    ("detail", truncate_detail(&detail)),
                                ],
                            );
                            retries.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                match outcome {
                    Ok(p) => {
                        lock_live(&results)[idx] = Some(p);
                    }
                    Err(last) => {
                        let mut f = lock_live(&fatal);
                        if f.is_none() {
                            *f = Some(FanoutError::RangeFailed {
                                lo: range.start,
                                hi: range.end,
                                attempts: attempt,
                                last,
                            });
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(err) = fatal.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(err);
    }
    let mut merged = PartialReport::empty(
        worker_cfg.footprint_block,
        worker_cfg.reuse_block,
        &cfg.locality_sizes,
    );
    for (i, slot) in results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .enumerate()
    {
        let partial = slot.ok_or_else(|| FanoutError::Protocol {
            detail: format!("range {i} produced no partial report"),
        })?;
        merged.merge(partial)?;
    }
    let report = merged.finish(&meta);
    Ok(FanoutRunReport {
        report,
        meta,
        ranges,
        retries: retries.into_inner() as u32,
        failures: failures.into_inner().unwrap_or_else(|e| e.into_inner()),
    })
}

/// Clamp a failure detail for span marks: event payloads stay bounded
/// even when a worker dumps a long stderr tail into the detail string.
fn truncate_detail(detail: &str) -> String {
    const MAX: usize = 200;
    if detail.len() <= MAX {
        return detail.to_string();
    }
    let mut cut = MAX;
    while !detail.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… ({} bytes)", &detail[..cut], detail.len())
}

/// Extract a panic payload's message, if it carries one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// One in-process attempt over one frame range. A panicking worker
/// (analysis bug, injected via [`PANIC_ONCE_ENV`]) is caught here and
/// routed through the same string-error retry path as a crashed
/// subprocess — `std::thread::scope` would otherwise re-raise the panic
/// at join and take the whole coordinator down.
fn run_worker_in_process(
    container: &[u8],
    index: &FrameIndex,
    range: &Range<usize>,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    worker_cfg: AnalysisConfig,
    cfg: &FanoutConfig,
) -> Result<PartialReport, String> {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        maybe_inject_inprocess_panic(&cfg.worker_env);
        analyze_frames(
            container,
            index,
            range.clone(),
            annots,
            symbols,
            worker_cfg,
            &cfg.locality_sizes,
        )
    }));
    match caught {
        Ok(run) => run.map_err(|e| e.to_string()),
        Err(payload) => Err(format!(
            "in-process worker for frames {}..{} panicked: {}",
            range.start,
            range.end,
            panic_message(payload.as_ref())
        )),
    }
}

/// [`PANIC_ONCE_ENV`] injection for the in-process backend. The marker
/// path comes from `worker_env` (the per-run config), not the process
/// environment, so concurrent tests in one process cannot trip each
/// other's injections.
fn maybe_inject_inprocess_panic(worker_env: &[(String, String)]) {
    let Some((_, marker)) = worker_env.iter().find(|(k, _)| k == PANIC_ONCE_ENV) else {
        return;
    };
    let path = Path::new(marker);
    if !path.exists() {
        let _ = std::fs::write(path, b"panicked");
        panic!("injected in-process worker panic");
    }
}

/// One subprocess attempt over one frame range. Any failure — spawn,
/// nonzero exit, timeout, bad framing, undecodable partial — comes back
/// as a string so the slot loop can retry uniformly. With observability
/// on, the worker is handed `parent` as its remote span parent plus a
/// scratch JSONL path, and its events are absorbed into this process's
/// sinks whether the attempt succeeded or not.
fn run_worker_subprocess(
    exe: &Path,
    scratch: &Scratch,
    range: &Range<usize>,
    cfg: &FanoutConfig,
    attempt: u32,
    parent: Option<memgaze_obs::SpanCtx>,
) -> Result<PartialReport, String> {
    let obs_path = memgaze_obs::enabled().then(|| {
        scratch.dir.join(format!(
            "obs-{}-{}-a{attempt}.jsonl",
            range.start, range.end
        ))
    });
    let result = run_worker_subprocess_inner(exe, scratch, range, cfg, obs_path.as_deref(), parent);
    if let Some(p) = &obs_path {
        // A worker killed mid-write may leave a truncated final line;
        // absorb keeps every complete event before it, and a missing
        // file (worker died before its first event) is simply empty.
        if let Ok(text) = std::fs::read_to_string(p) {
            let _ = memgaze_obs::absorb_jsonl(&text);
        }
    }
    result
}

fn run_worker_subprocess_inner(
    exe: &Path,
    scratch: &Scratch,
    range: &Range<usize>,
    cfg: &FanoutConfig,
    obs_path: Option<&Path>,
    parent: Option<memgaze_obs::SpanCtx>,
) -> Result<PartialReport, String> {
    let mut cmd = Command::new(exe);
    cmd.arg("analyze-shard")
        .arg("--spec")
        .arg(&scratch.spec)
        .arg("--container")
        .arg(&scratch.container)
        .arg("--index")
        .arg(&scratch.index)
        .arg("--frames")
        .arg(format!("{}:{}", range.start, range.end))
        .envs(cfg.worker_env.iter().map(|(k, v)| (k.clone(), v.clone())))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(p) = obs_path {
        // Set after `worker_env` so the coordinator's sink choice wins:
        // the worker must write JSONL to the scratch file (stdout is the
        // MGZW result channel, so a summary sink there would corrupt it).
        for (k, v) in memgaze_obs::worker_env(parent, p) {
            cmd.env(k, v);
        }
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", exe.display()))?;

    // Drain the pipes on their own threads so a chatty worker can't
    // deadlock against a full pipe buffer while we poll for exit.
    let Some(mut stdout_pipe) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("worker stdout pipe was not available".to_string());
    };
    let Some(mut stderr_pipe) = child.stderr.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("worker stderr pipe was not available".to_string());
    };
    let stdout_thread = std::thread::spawn(move || {
        let mut buf = Vec::new();
        let _ = stdout_pipe.read_to_end(&mut buf);
        buf
    });
    // Stderr is drained fully (never let the child block on a full
    // pipe) but only the first `STDERR_KEEP` bytes are retained.
    let stderr_thread = std::thread::spawn(move || {
        let mut kept = Vec::new();
        let mut total = 0usize;
        let mut chunk = [0u8; 8192];
        loop {
            match stderr_pipe.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    total += n;
                    if kept.len() < STDERR_KEEP {
                        let take = n.min(STDERR_KEEP - kept.len());
                        kept.extend_from_slice(&chunk[..take]);
                    }
                }
            }
        }
        (kept, total)
    });

    let deadline = Instant::now() + cfg.timeout;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = stdout_thread.join();
                    let _ = stderr_thread.join();
                    memgaze_obs::mark(
                        "fanout.kill",
                        &[
                            ("range", format!("{}..{}", range.start, range.end)),
                            ("timeout", format!("{:?}", cfg.timeout)),
                        ],
                    );
                    return Err(format!(
                        "worker for frames {}..{} exceeded {:?} timeout and was killed",
                        range.start, range.end, cfg.timeout
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = stdout_thread.join();
                let _ = stderr_thread.join();
                return Err(format!("wait on worker: {e}"));
            }
        }
    };
    let stdout = stdout_thread.join().unwrap_or_default();
    let (stderr, stderr_total) = stderr_thread.join().unwrap_or_default();
    if !status.success() {
        let mut tail = String::from_utf8_lossy(&stderr).trim().to_string();
        if stderr_total > stderr.len() {
            tail.push_str(&format!(
                " … ({} of {} stderr bytes truncated)",
                stderr_total - stderr.len(),
                stderr_total
            ));
        }
        return Err(format!("worker exited with {status}: {tail}"));
    }
    decode_worker_output(&stdout).map_err(|e| e.to_string())
}

/// Parse a worker's framed stdout: `MGZW` + `u64` LE payload length +
/// the encoded [`PartialReport`]. Every malformation — missing magic,
/// truncated header, a framed length that disagrees with the payload —
/// is a typed [`FanoutError::Protocol`]; no slicing here can panic.
fn decode_worker_output(out: &[u8]) -> Result<PartialReport, FanoutError> {
    let protocol = |detail: String| FanoutError::Protocol { detail };
    let (magic, rest) = out
        .split_at_checked(4)
        .ok_or_else(|| protocol(format!("worker output too short ({} bytes)", out.len())))?;
    if magic != WORKER_MAGIC {
        return Err(protocol(format!(
            "bad worker magic {magic:?} ({} bytes total)",
            out.len()
        )));
    }
    let (len_bytes, payload) = rest
        .split_at_checked(8)
        .ok_or_else(|| protocol(format!("worker framing truncated ({} bytes)", out.len())))?;
    let len_arr: [u8; 8] = len_bytes
        .try_into()
        .map_err(|_| protocol("worker length field unreadable".to_string()))?;
    let len = u64::from_le_bytes(len_arr);
    if payload.len() as u64 != len {
        return Err(protocol(format!(
            "worker payload length {} != framed {len}",
            payload.len()
        )));
    }
    Ok(PartialReport::decode(payload)?)
}

/// Arguments of one `analyze-shard` worker invocation.
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// Path to the encoded [`WorkerSpec`].
    pub spec: PathBuf,
    /// Path to the sharded container.
    pub container: PathBuf,
    /// Path to the encoded [`FrameIndex`].
    pub index: PathBuf,
    /// The frame range to analyze.
    pub frames: Range<usize>,
}

/// The `analyze-shard` worker body: load spec + container + index,
/// re-validate the index against the container bytes (a stale sidecar
/// must fail in the worker, not poison the merge), analyze the range,
/// and write the framed partial to `out`.
pub fn worker_main(args: &WorkerArgs, out: &mut impl Write) -> Result<(), FanoutError> {
    maybe_inject_failure(out);
    let spec_bytes = std::fs::read(&args.spec)?;
    let spec = WorkerSpec::decode(&spec_bytes)?;
    let container = std::fs::read(&args.container)?;
    let index_bytes = std::fs::read(&args.index)?;
    let index = FrameIndex::decode(&index_bytes)?;
    index.validate(&container)?;
    if args.frames.end > index.entries.len() || args.frames.start > args.frames.end {
        return Err(FanoutError::Protocol {
            detail: format!(
                "frame range {}..{} out of bounds for {} frames",
                args.frames.start,
                args.frames.end,
                index.entries.len()
            ),
        });
    }
    let partial = analyze_frames(
        &container,
        &index,
        args.frames.clone(),
        &spec.annots,
        &spec.symbols,
        spec.analysis_config(),
        &spec.locality_sizes,
    )?;
    let payload = partial.encode();
    out.write_all(WORKER_MAGIC)?;
    out.write_all(&(payload.len() as u64).to_le_bytes())?;
    out.write_all(&payload)?;
    out.flush()?;
    Ok(())
}

/// Failure injection for crash-path tests; a no-op unless the marker
/// env vars are set (the coordinator only sets them via
/// [`FanoutConfig::worker_env`]).
fn maybe_inject_failure(out: &mut impl Write) {
    if let Ok(marker) = std::env::var(CRASH_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"crashed");
            let _ = out.write_all(b"garbage, not a partial report");
            let _ = out.flush();
            std::process::exit(3);
        }
    }
    if let Ok(marker) = std::env::var(HANG_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"hung");
            std::thread::sleep(Duration::from_secs(600));
        }
    }
    if let Ok(marker) = std::env::var(SHORT_WRITE_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"short-wrote");
            // Valid magic, a length claiming 4096 payload bytes, but
            // only a fragment actually written — then a clean exit, so
            // only framing validation can catch it.
            let _ = out.write_all(WORKER_MAGIC);
            let _ = out.write_all(&4096u64.to_le_bytes());
            let _ = out.write_all(b"truncated");
            let _ = out.flush();
            std::process::exit(0);
        }
    }
    if let Ok(marker) = std::env::var(STDERR_FLOOD_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"flooded");
            // Several MiB of stderr — far past the pipe buffer and the
            // coordinator's STDERR_KEEP cap — then a nonzero exit.
            let mut err = std::io::stderr().lock();
            let line = [b'e'; 8192];
            for _ in 0..512 {
                let _ = err.write_all(&line);
            }
            let _ = err.flush();
            std::process::exit(4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{encode_sharded_indexed, Access, Sample, SampledTrace};

    fn mk_indexed_trace() -> (SampledTrace, Vec<u8>, FrameIndex) {
        let mut t = SampledTrace::new(TraceMeta::new("fanout-core", 1000, 8192));
        for s in 0..10u64 {
            let n = 30 + (s * 7) % 40;
            let acc: Vec<Access> = (0..n)
                .map(|i| {
                    Access::new(
                        0x400 + (i % 4) * 4,
                        ((s * 31 + i * 3) % 512) * 64,
                        s * 1000 + i,
                    )
                })
                .collect();
            t.push_sample(Sample::new(acc, s * 1000 + n)).unwrap();
        }
        t.meta.total_loads = 10_000;
        let (container, index) = encode_sharded_indexed(&t, 2);
        (t, container, index)
    }

    #[test]
    fn in_process_fanout_matches_resident_streaming() {
        let (t, container, index) = mk_indexed_trace();
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let analysis = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let sizes = vec![8u64, 32];
        let resident =
            memgaze_analysis::stream_resident_trace(&t, &annots, &symbols, analysis, &sizes, 2);
        for workers in [1usize, 2, 3, 8] {
            let cfg = FanoutConfig {
                workers,
                locality_sizes: sizes.clone(),
                ..FanoutConfig::default()
            };
            let run = run_fanout(
                &container,
                &index,
                &annots,
                &symbols,
                analysis,
                &cfg,
                &FanoutBackend::InProcess,
            )
            .unwrap();
            assert_eq!(run.meta, t.meta);
            assert_eq!(run.report.decompression, resident.decompression);
            assert_eq!(run.report.function_rows, resident.function_rows);
            assert_eq!(run.report.block_reuse, resident.block_reuse);
            assert_eq!(run.report.reuse_histogram, resident.reuse_histogram);
            assert_eq!(run.report.locality_series, resident.locality_series);
            assert_eq!(run.report.interval_rows(4), resident.interval_rows(4));
            assert_eq!(run.retries, 0);
            assert!(run.failures.is_empty());
        }
    }

    #[test]
    fn stale_index_is_rejected_before_dispatch() {
        let (_, container, _) = mk_indexed_trace();
        let mut t2 = SampledTrace::new(TraceMeta::new("other", 1000, 8192));
        let acc = vec![Access::new(0x400u64, 64, 0)];
        t2.push_sample(Sample::new(acc, 1)).unwrap();
        t2.meta.total_loads = 1000;
        let (_, stale) = encode_sharded_indexed(&t2, 1);
        let err = run_fanout(
            &container,
            &stale,
            &AuxAnnotations::new(),
            &SymbolTable::new(),
            AnalysisConfig::default(),
            &FanoutConfig::default(),
            &FanoutBackend::InProcess,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            FanoutError::Model(ModelError::StaleIndex { .. })
        ));
    }

    #[test]
    fn worker_output_framing_is_validated() {
        assert!(matches!(
            decode_worker_output(b""),
            Err(FanoutError::Protocol { .. })
        ));
        assert!(matches!(
            decode_worker_output(b"garbage, not a partial report"),
            Err(FanoutError::Protocol { .. })
        ));
        let mut framed = WORKER_MAGIC.to_vec();
        framed.extend_from_slice(&99u64.to_le_bytes());
        framed.extend_from_slice(b"short");
        assert!(matches!(
            decode_worker_output(&framed),
            Err(FanoutError::Protocol { .. })
        ));
    }
}
