//! Multi-process fan-out coordinator: partition an indexed sharded
//! container across workers, retry crashed or hung workers, and fold the
//! partial reports in shard order into a [`StreamingReport`] that is
//! bit-identical to the resident analyzer.
//!
//! Two backends share every other moving part:
//!
//! * [`FanoutBackend::InProcess`] runs each range on a coordinator
//!   thread — no serialization, no processes; the reference backend for
//!   tests and the fallback when no worker binary is available;
//! * [`FanoutBackend::Subprocess`] runs ranges on **persistent**
//!   `<exe> analyze-shard --serve` workers held in a [`FanoutPool`]:
//!   one subprocess per slot, spawned once, loading the spec +
//!   container + index a single time and then answering length-prefixed
//!   range requests over stdin (`MGZQ` framing) with framed
//!   [`PartialReport`]s on stdout (`MGZW` framing). A worker that dies,
//!   produces garbage, or exceeds the per-range timeout is killed and
//!   **respawned**, and the range re-run on the fresh worker, up to
//!   [`FanoutConfig::max_attempts`] tries — the same crash/hang retry
//!   semantics the retired one-subprocess-per-range model had, without
//!   paying a process spawn and a container load per range.
//!
//! Crash-path tests inject failures via environment variables passed to
//! workers ([`FanoutConfig::worker_env`]): `MEMGAZE_FANOUT_CRASH_ONCE`
//! names a marker file; the first worker to see it absent creates it,
//! emits garbage, and exits nonzero — so exactly one attempt fails and
//! the retry succeeds. `MEMGAZE_FANOUT_HANG_ONCE` does the same but
//! sleeps past any reasonable timeout instead;
//! `MEMGAZE_FANOUT_SHORT_WRITE_ONCE` frames a payload longer than it
//! writes; `MEMGAZE_FANOUT_STDERR_FLOOD_ONCE` floods stderr before
//! exiting nonzero; and `MEMGAZE_FANOUT_PANIC_ONCE` panics an
//! [`FanoutBackend::InProcess`] worker thread. In serve mode the
//! injections fire while a range is in flight, so they exercise exactly
//! the kill-respawn-retry path.
//!
//! Both backends can also run **store-backed** ([`run_fanout_store`]):
//! instead of mapping scratch `container.bin`/`index.bin` files, workers
//! open a [`TraceStore`] and fetch only their assigned ranges' blobs by
//! content hash (per-frame result cache first). A retried range
//! re-fetches a few blobs rather than re-reading the full shard
//! container, and since the store catalog carries the same per-frame
//! sample counts as the [`FrameIndex`], the partition, merge order, and
//! merged report are identical to the container-backed path.
//!
//! The coordinator never panics on a worker's behalf: mutexes poisoned
//! by a panicking in-process worker are recovered (the protected data
//! is only ever mutated under short, non-panicking critical sections),
//! the panic itself is caught and routed through the same retry path as
//! a crashed subprocess, and malformed worker output is a typed
//! [`FanoutError::Protocol`].
//!
//! With observability on (`MEMGAZE_OBS`), the run records a
//! `fanout.run` span over per-range `fanout.range`/`fanout.attempt`
//! spans plus `fanout.retry`/`fanout.kill` marks and a
//! `fanout.spawn_worker` span per subprocess actually spawned; each
//! persistent worker writes its own JSONL event file into the scratch
//! directory (stitched to the coordinator via the spawn span's remote
//! parent), which the coordinator absorbs when the worker retires.

use memgaze_analysis::{
    analyze_frames, partition_by_samples, partition_frames, AnalysisConfig, PartialError,
    PartialReport, StreamingReport, WorkerSpec,
};
use memgaze_model::{AuxAnnotations, FrameIndex, ModelError, ShardReader, SymbolTable, TraceMeta};
use memgaze_store::{Catalog, StoreConfig, StoreError, TraceStore};
use std::io::{Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Magic framing a worker's stdout responses.
const WORKER_MAGIC: &[u8; 4] = b"MGZW";
/// Magic framing the coordinator's stdin requests to a persistent
/// worker.
const REQUEST_MAGIC: &[u8; 4] = b"MGZQ";
/// Fixed payload of a range request: `lo` and `hi` as `u64` LE.
const REQUEST_PAYLOAD_LEN: u32 = 16;
/// Sanity cap on a framed response payload; a length beyond this is a
/// protocol error, not an allocation request.
const MAX_RESPONSE_BYTES: u64 = 1 << 34;
/// Largest single allocation/read the response reader makes per step;
/// payloads grow chunk by chunk only as bytes actually arrive.
const RESPONSE_READ_CHUNK: u64 = 1 << 20;

/// Crash-injection env var: a marker-file path; first worker to find it
/// absent creates it, writes garbage, and exits nonzero.
pub const CRASH_ONCE_ENV: &str = "MEMGAZE_FANOUT_CRASH_ONCE";
/// Hang-injection env var: like [`CRASH_ONCE_ENV`] but sleeps instead.
pub const HANG_ONCE_ENV: &str = "MEMGAZE_FANOUT_HANG_ONCE";
/// Short-write injection: the worker frames a payload longer than what
/// it actually writes, then exits 0 — exercising framing validation.
pub const SHORT_WRITE_ONCE_ENV: &str = "MEMGAZE_FANOUT_SHORT_WRITE_ONCE";
/// Stderr-flood injection: the worker writes megabytes of stderr before
/// exiting nonzero — exercising the drain cap.
pub const STDERR_FLOOD_ONCE_ENV: &str = "MEMGAZE_FANOUT_STDERR_FLOOD_ONCE";
/// Panic injection for the [`FanoutBackend::InProcess`] backend: the
/// first in-process worker to find the marker absent creates it and
/// panics. Read from [`FanoutConfig::worker_env`], never the process
/// environment, so parallel tests cannot contaminate each other.
pub const PANIC_ONCE_ENV: &str = "MEMGAZE_FANOUT_PANIC_ONCE";

/// Stderr bytes kept per worker; the rest is drained (so the child
/// cannot deadlock on a full pipe) but dropped, and the failure detail
/// notes how much was truncated.
const STDERR_KEEP: usize = 64 * 1024;

/// Recover a possibly-poisoned fan-out mutex. Poisoning here means a
/// worker thread panicked; the coordinator's critical sections only do
/// plain pushes/stores, so the data is still consistent and the run
/// must keep going rather than cascade the panic.
fn lock_live<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fan-out run parameters.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// Worker slots (and the target number of frame ranges).
    pub workers: usize,
    /// Analysis threads inside each worker.
    pub threads_per_worker: usize,
    /// Attempts per range before the run fails.
    pub max_attempts: u32,
    /// Wall-clock budget per range request.
    pub timeout: Duration,
    /// Locality-vs-interval sizes to accumulate.
    pub locality_sizes: Vec<u64>,
    /// Extra environment for spawned workers (failure injection in
    /// tests; empty in production).
    pub worker_env: Vec<(String, String)>,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        FanoutConfig {
            workers: 4,
            threads_per_worker: 1,
            max_attempts: 3,
            timeout: Duration::from_secs(120),
            locality_sizes: Vec::new(),
            worker_env: Vec::new(),
        }
    }
}

/// Where worker ranges execute.
#[derive(Debug, Clone)]
pub enum FanoutBackend {
    /// Coordinator threads calling [`analyze_frames`] directly.
    InProcess,
    /// Persistent `<exe> analyze-shard --serve` subprocesses exchanging
    /// partials over pipes (a transient [`FanoutPool`]).
    Subprocess {
        /// The `memgaze` binary to spawn (usually
        /// `std::env::current_exe()`).
        exe: PathBuf,
    },
}

/// One failed worker attempt (the run may still succeed via retry).
#[derive(Debug, Clone)]
pub struct WorkerFailure {
    /// The frame range the attempt was assigned.
    pub range: (usize, usize),
    /// 1-based attempt number.
    pub attempt: u32,
    /// What went wrong.
    pub detail: String,
}

/// A fan-out run's result: the merged report plus scheduling facts.
#[derive(Debug)]
pub struct FanoutRunReport {
    /// The merged analysis, bit-identical to the resident analyzer.
    pub report: StreamingReport,
    /// Trace metadata with trailer-patched totals.
    pub meta: TraceMeta,
    /// The frame ranges that were dispatched.
    pub ranges: Vec<Range<usize>>,
    /// Worker attempts beyond the first, summed over ranges.
    pub retries: u32,
    /// Every failed attempt, in completion order.
    pub failures: Vec<WorkerFailure>,
    /// Subprocesses spawned *during this run* (0 for the in-process
    /// backend, and 0 for a pooled run fully served by warm workers).
    pub spawns: u32,
}

/// Fan-out failures.
#[derive(Debug)]
pub enum FanoutError {
    /// Container or index rejected by the model layer.
    Model(ModelError),
    /// A partial report failed to decode or merge.
    Partial(PartialError),
    /// A store-backed run failed to read the store.
    Store(StoreError),
    /// Scratch-file or pipe I/O failed.
    Io(std::io::Error),
    /// A frame range failed every attempt.
    RangeFailed {
        /// Range start (frame index).
        lo: usize,
        /// Range end (exclusive).
        hi: usize,
        /// Attempts made.
        attempts: u32,
        /// The last attempt's failure.
        last: String,
    },
    /// A worker spoke the protocol wrong (bad framing, bad arguments).
    Protocol {
        /// What was malformed.
        detail: String,
    },
}

impl std::fmt::Display for FanoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanoutError::Model(e) => write!(f, "fan-out model error: {e}"),
            FanoutError::Partial(e) => write!(f, "fan-out partial-report error: {e}"),
            FanoutError::Store(e) => write!(f, "fan-out store error: {e}"),
            FanoutError::Io(e) => write!(f, "fan-out i/o error: {e}"),
            FanoutError::RangeFailed {
                lo,
                hi,
                attempts,
                last,
            } => write!(
                f,
                "frame range {lo}..{hi} failed all {attempts} attempts; last error: {last}"
            ),
            FanoutError::Protocol { detail } => write!(f, "fan-out protocol error: {detail}"),
        }
    }
}

impl std::error::Error for FanoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FanoutError::Model(e) => Some(e),
            FanoutError::Partial(e) => Some(e),
            FanoutError::Store(e) => Some(e),
            FanoutError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for FanoutError {
    fn from(e: StoreError) -> Self {
        FanoutError::Store(e)
    }
}

impl From<ModelError> for FanoutError {
    fn from(e: ModelError) -> Self {
        FanoutError::Model(e)
    }
}

impl From<PartialError> for FanoutError {
    fn from(e: PartialError) -> Self {
        FanoutError::Partial(e)
    }
}

impl From<std::io::Error> for FanoutError {
    fn from(e: std::io::Error) -> Self {
        FanoutError::Io(e)
    }
}

/// Monotonic scratch-directory discriminator within this process.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Scratch files shared by all workers of one pool; the directory is
/// removed on drop, success or failure. Every pool writes `spec.bin`;
/// resident pools add the container and index files, store-backed pools
/// add nothing (workers read the store directly).
struct Scratch {
    dir: PathBuf,
    spec: PathBuf,
}

impl Scratch {
    fn create(spec: &WorkerSpec) -> std::io::Result<Scratch> {
        let dir = std::env::temp_dir().join(format!(
            "memgaze-fanout-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let s = Scratch {
            spec: dir.join("spec.bin"),
            dir,
        };
        std::fs::write(&s.spec, spec.encode())?;
        Ok(s)
    }

    fn add_file(&self, name: &str, bytes: &[u8]) -> std::io::Result<PathBuf> {
        let path = self.dir.join(name);
        std::fs::write(&path, bytes)?;
        Ok(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A live persistent worker: the child process, its request pipe, and
/// the reader/stderr drain threads.
struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    /// Framed response payloads (or reader-side protocol errors) from
    /// the worker's stdout, one per range request.
    responses: Receiver<Result<Vec<u8>, String>>,
    reader: Option<std::thread::JoinHandle<()>>,
    stderr: Option<std::thread::JoinHandle<(Vec<u8>, usize)>>,
    obs_path: Option<PathBuf>,
}

/// A pool of persistent `analyze-shard --serve` workers over one
/// (container, index, spec) triple. Workers are spawned lazily (or via
/// [`prewarm`](Self::prewarm)), checked out by coordinator slot threads
/// for the duration of a run, and kept warm between
/// [`run`](Self::run) calls — so repeated fan-out analyses of the same
/// container pay the process spawn and container load once, not per
/// range or per run. Dropping the pool closes every worker's stdin
/// (the graceful-shutdown signal) and reaps the processes.
pub struct FanoutPool {
    exe: PathBuf,
    source: PoolSource,
    annots: AuxAnnotations,
    symbols: SymbolTable,
    analysis: AnalysisConfig,
    cfg: FanoutConfig,
    scratch: Scratch,
    idle: Mutex<Vec<WorkerHandle>>,
    spawns: AtomicU64,
    worker_seq: AtomicU64,
}

/// What a pool's workers load: scratch container/index files, or a
/// content-addressed store the workers open themselves (fetching only
/// their assigned ranges' blobs).
enum PoolSource {
    Resident {
        container: Vec<u8>,
        index: FrameIndex,
        container_path: PathBuf,
        index_path: PathBuf,
    },
    Store {
        store: TraceStore,
        catalog: Catalog,
    },
}

impl FanoutPool {
    /// Build a pool for one container + index. Writes the scratch files
    /// every worker maps; no worker is spawned yet (see
    /// [`prewarm`](Self::prewarm)).
    pub fn new(
        exe: &Path,
        container: &[u8],
        index: &FrameIndex,
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
        analysis: AnalysisConfig,
        cfg: FanoutConfig,
    ) -> Result<FanoutPool, FanoutError> {
        index.validate(container)?;
        let spec = pool_spec(annots, symbols, &analysis, &cfg);
        let scratch = Scratch::create(&spec)?;
        let container_path = scratch.add_file("container.bin", container)?;
        let index_path = scratch.add_file("index.bin", &index.encode())?;
        Ok(FanoutPool {
            exe: exe.to_path_buf(),
            source: PoolSource::Resident {
                container: container.to_vec(),
                index: index.clone(),
                container_path,
                index_path,
            },
            annots: annots.clone(),
            symbols: symbols.clone(),
            analysis,
            cfg,
            scratch,
            idle: Mutex::new(Vec::new()),
            spawns: AtomicU64::new(0),
            worker_seq: AtomicU64::new(0),
        })
    }

    /// Build a pool over a stored trace. Workers are spawned with the
    /// store root and trace id instead of container/index paths; each
    /// opens the store once and serves ranges by fetching only the
    /// blobs those ranges reference, result cache first.
    pub fn new_store(
        exe: &Path,
        store_root: &Path,
        trace_id: &str,
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
        analysis: AnalysisConfig,
        cfg: FanoutConfig,
    ) -> Result<FanoutPool, FanoutError> {
        let store = TraceStore::open(StoreConfig::new(store_root))?;
        let catalog = store.catalog(trace_id)?;
        let spec = pool_spec(annots, symbols, &analysis, &cfg);
        let scratch = Scratch::create(&spec)?;
        Ok(FanoutPool {
            exe: exe.to_path_buf(),
            source: PoolSource::Store { store, catalog },
            annots: annots.clone(),
            symbols: symbols.clone(),
            analysis,
            cfg,
            scratch,
            idle: Mutex::new(Vec::new()),
            spawns: AtomicU64::new(0),
            worker_seq: AtomicU64::new(0),
        })
    }

    fn job_source(&self) -> JobSource<'_> {
        match &self.source {
            PoolSource::Resident {
                container, index, ..
            } => JobSource::Resident { container, index },
            PoolSource::Store { store, catalog } => JobSource::Store { store, catalog },
        }
    }

    /// Spawn workers until `workers` slots are warm, so a following
    /// [`run`](Self::run) pays no spawn inside its measured window.
    pub fn prewarm(&self) -> Result<(), FanoutError> {
        let want = self.cfg.workers.max(1);
        loop {
            {
                let idle = lock_live(&self.idle);
                if idle.len() >= want {
                    return Ok(());
                }
            }
            let w = self
                .spawn_worker()
                .map_err(|detail| FanoutError::Protocol { detail })?;
            lock_live(&self.idle).push(w);
        }
    }

    /// Subprocesses spawned over the pool's lifetime (prewarm included).
    pub fn spawn_count(&self) -> u64 {
        self.spawns.load(Ordering::Relaxed)
    }

    /// Run one fan-out analysis on the pool's source, reusing warm
    /// workers. The merged report is bit-identical to the resident
    /// analyzer; see [`run_fanout`].
    pub fn run(&self) -> Result<FanoutRunReport, FanoutError> {
        run_fanout_core(
            &self.job_source(),
            &self.annots,
            &self.symbols,
            self.analysis,
            &self.cfg,
            Some(self),
        )
    }

    /// Check a warm worker out of the pool, spawning if none is idle.
    fn checkout(&self) -> Result<WorkerHandle, String> {
        if let Some(w) = lock_live(&self.idle).pop() {
            return Ok(w);
        }
        self.spawn_worker()
    }

    /// Return a healthy worker for reuse by later ranges and runs.
    fn checkin(&self, worker: WorkerHandle) {
        lock_live(&self.idle).push(worker);
    }

    /// Run one range on the slot's worker (checking one out on first
    /// use). Any failure retires the worker — the retry will respawn —
    /// and comes back as a string detail enriched with the worker's
    /// exit status and stderr tail.
    fn run_range(
        &self,
        slot: &mut Option<WorkerHandle>,
        range: &Range<usize>,
    ) -> Result<PartialReport, String> {
        let mut worker = match slot.take() {
            Some(w) => w,
            None => self.checkout()?,
        };
        match request_range(&mut worker, range, self.cfg.timeout) {
            Ok(payload) => match PartialReport::decode(&payload) {
                Ok(partial) => {
                    *slot = Some(worker);
                    Ok(partial)
                }
                Err(e) => Err(self.retire_dead(worker, &e.to_string())),
            },
            Err(detail) => Err(self.retire_dead(worker, &detail)),
        }
    }

    fn spawn_worker(&self) -> Result<WorkerHandle, String> {
        let mut spawn_span = memgaze_obs::span("fanout.spawn_worker");
        let seq = self.worker_seq.fetch_add(1, Ordering::Relaxed);
        if spawn_span.is_active() {
            spawn_span.set_label(format!("worker #{seq}"));
        }
        let obs_path = memgaze_obs::enabled()
            .then(|| self.scratch.dir.join(format!("obs-worker-{seq}.jsonl")));
        let mut cmd = Command::new(&self.exe);
        cmd.arg("analyze-shard")
            .arg("--spec")
            .arg(&self.scratch.spec);
        match &self.source {
            PoolSource::Resident {
                container_path,
                index_path,
                ..
            } => {
                cmd.arg("--container")
                    .arg(container_path)
                    .arg("--index")
                    .arg(index_path);
            }
            PoolSource::Store { store, catalog } => {
                cmd.arg("--store-root")
                    .arg(store.root())
                    .arg("--trace")
                    .arg(&catalog.trace_id);
            }
        }
        cmd.arg("--serve")
            .arg("1")
            .envs(
                self.cfg
                    .worker_env
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone())),
            )
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(p) = &obs_path {
            // Set after `worker_env` so the coordinator's sink choice
            // wins: the worker must write JSONL to the scratch file
            // (stdout is the MGZW response channel, so a summary sink
            // there would corrupt it).
            for (k, v) in memgaze_obs::worker_env(spawn_span.ctx(), p) {
                cmd.env(k, v);
            }
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", self.exe.display()))?;
        let stdin = child.stdin.take();
        let stdout_pipe = child.stdout.take();
        let stderr_pipe = child.stderr.take();
        let (Some(stdin), Some(mut stdout_pipe), Some(mut stderr_pipe)) =
            (stdin, stdout_pipe, stderr_pipe)
        else {
            let _ = child.kill();
            let _ = child.wait();
            return Err("worker pipes were not available".to_string());
        };
        let (tx, rx): (Sender<Result<Vec<u8>, String>>, _) = std::sync::mpsc::channel();
        // The reader thread owns the stdout pipe and frames responses;
        // on clean EOF it just drops the sender, which the coordinator
        // observes as a disconnect (worker death between responses).
        let reader = std::thread::spawn(move || loop {
            match read_response_frame(&mut stdout_pipe) {
                Ok(Some(payload)) => {
                    if tx.send(Ok(payload)).is_err() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(detail) => {
                    let _ = tx.send(Err(detail));
                    return;
                }
            }
        });
        // Stderr is drained fully (never let the child block on a full
        // pipe) but only the first `STDERR_KEEP` bytes are retained.
        let stderr = std::thread::spawn(move || {
            let mut kept = Vec::new();
            let mut total = 0usize;
            let mut chunk = [0u8; 8192];
            loop {
                match stderr_pipe.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        total += n;
                        if kept.len() < STDERR_KEEP {
                            let take = n.min(STDERR_KEEP - kept.len());
                            kept.extend_from_slice(&chunk[..take]);
                        }
                    }
                }
            }
            (kept, total)
        });
        self.spawns.fetch_add(1, Ordering::Relaxed);
        memgaze_obs::counter!("fanout.spawns").add(1);
        Ok(WorkerHandle {
            child,
            stdin: Some(stdin),
            responses: rx,
            reader: Some(reader),
            stderr: Some(stderr),
            obs_path,
        })
    }

    /// Kill and reap a failed worker, returning the failure detail
    /// enriched with its exit status and bounded stderr tail. The
    /// worker's obs JSONL (if any) is absorbed first — a death
    /// mid-write leaves a truncated final line, which absorption skips.
    fn retire_dead(&self, mut worker: WorkerHandle, base: &str) -> String {
        let _ = worker.child.kill();
        drop(worker.stdin.take());
        let status = worker.child.wait();
        if let Some(t) = worker.reader.take() {
            let _ = t.join();
        }
        let (kept, total) = worker
            .stderr
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default();
        absorb_worker_obs(worker.obs_path.as_deref());
        let mut detail = match status {
            Ok(s) => format!("{base}; worker exited with {s}"),
            Err(e) => format!("{base}; wait on worker: {e}"),
        };
        let tail = String::from_utf8_lossy(&kept).trim().to_string();
        if !tail.is_empty() {
            detail.push_str(": ");
            detail.push_str(&tail);
        }
        if total > kept.len() {
            detail.push_str(&format!(
                " … ({} of {} stderr bytes truncated)",
                total - kept.len(),
                total
            ));
        }
        detail
    }

    /// Shut a healthy worker down: closing stdin is the exit signal; a
    /// worker that ignores it past the grace period is killed.
    fn retire_graceful(&self, mut worker: WorkerHandle) {
        drop(worker.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match worker.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                _ => {
                    let _ = worker.child.kill();
                    let _ = worker.child.wait();
                    break;
                }
            }
        }
        if let Some(t) = worker.reader.take() {
            let _ = t.join();
        }
        if let Some(t) = worker.stderr.take() {
            let _ = t.join();
        }
        absorb_worker_obs(worker.obs_path.as_deref());
    }
}

impl Drop for FanoutPool {
    fn drop(&mut self) {
        let workers = std::mem::take(&mut *lock_live(&self.idle));
        for w in workers {
            self.retire_graceful(w);
        }
    }
}

/// The [`WorkerSpec`] a pool ships to its workers: the analysis knobs
/// that determine results, with the per-worker thread count applied.
fn pool_spec(
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    analysis: &AnalysisConfig,
    cfg: &FanoutConfig,
) -> WorkerSpec {
    WorkerSpec {
        footprint_block: analysis.footprint_block,
        reuse_block: analysis.reuse_block,
        threads: cfg.threads_per_worker.max(1),
        locality_sizes: cfg.locality_sizes.clone(),
        annots: annots.clone(),
        symbols: symbols.clone(),
    }
}

/// Where the frames being fanned out live: resident container bytes +
/// index sidecar, or a content-addressed store catalog. Both expose the
/// same per-frame sample counts, so partitions — and therefore merge
/// order and the merged report — are identical across sources.
enum JobSource<'a> {
    Resident {
        container: &'a [u8],
        index: &'a FrameIndex,
    },
    Store {
        store: &'a TraceStore,
        catalog: &'a Catalog,
    },
}

impl JobSource<'_> {
    /// Reject stale inputs before dispatching anything.
    fn validate(&self) -> Result<(), FanoutError> {
        match self {
            JobSource::Resident { container, index } => Ok(index.validate(container)?),
            // A catalog decode is already FNV-checksummed, and every
            // blob read self-verifies against its content hash.
            JobSource::Store { .. } => Ok(()),
        }
    }

    fn meta(&self) -> Result<TraceMeta, FanoutError> {
        match self {
            JobSource::Resident { container, index } => {
                let mut meta = ShardReader::new(*container)?.meta().clone();
                meta.total_loads = index.total_loads;
                meta.total_instrumented_loads = index.total_instrumented_loads;
                Ok(meta)
            }
            JobSource::Store { catalog, .. } => Ok(catalog.meta()?),
        }
    }

    fn frame_count(&self) -> usize {
        match self {
            JobSource::Resident { index, .. } => index.entries.len(),
            JobSource::Store { catalog, .. } => catalog.frames.len(),
        }
    }

    fn partition(&self, workers: usize) -> Vec<Range<usize>> {
        match self {
            JobSource::Resident { index, .. } => partition_frames(index, workers),
            JobSource::Store { catalog, .. } => {
                partition_by_samples(&catalog.sample_weights(), workers)
            }
        }
    }

    /// One in-process analysis of one range (panic catching is the
    /// caller's job; see [`run_worker_in_process`]).
    fn analyze(
        &self,
        range: &Range<usize>,
        annots: &AuxAnnotations,
        symbols: &SymbolTable,
        worker_cfg: AnalysisConfig,
        locality_sizes: &[u64],
    ) -> Result<PartialReport, String> {
        match self {
            JobSource::Resident { container, index } => analyze_frames(
                container,
                index,
                range.clone(),
                annots,
                symbols,
                worker_cfg,
                locality_sizes,
            )
            .map_err(|e| e.to_string()),
            JobSource::Store { store, catalog } => store
                .analyze_frames(
                    catalog,
                    range.clone(),
                    annots,
                    symbols,
                    worker_cfg,
                    locality_sizes,
                )
                .map(|(partial, _, _)| partial)
                .map_err(|e| e.to_string()),
        }
    }
}

/// Absorb a retired worker's JSONL events into this process's sinks. A
/// missing file (worker died before its first event) is simply empty;
/// torn lines are skipped and counted by the absorber.
fn absorb_worker_obs(path: Option<&Path>) {
    if let Some(p) = path {
        if let Ok(text) = std::fs::read_to_string(p) {
            memgaze_obs::absorb_jsonl(&text);
        }
    }
}

/// Send one range request to a worker and wait for its framed response
/// payload, bounded by `timeout`.
fn request_range(
    worker: &mut WorkerHandle,
    range: &Range<usize>,
    timeout: Duration,
) -> Result<Vec<u8>, String> {
    let stdin = worker
        .stdin
        .as_mut()
        .ok_or_else(|| "worker stdin already closed".to_string())?;
    let mut req = [0u8; 24];
    encode_request(&mut req, range);
    stdin
        .write_all(&req)
        .and_then(|()| stdin.flush())
        .map_err(|e| format!("write range request: {e}"))?;
    match worker.responses.recv_timeout(timeout) {
        Ok(Ok(payload)) => Ok(payload),
        Ok(Err(detail)) => Err(detail),
        Err(RecvTimeoutError::Timeout) => {
            memgaze_obs::mark(
                "fanout.kill",
                &[
                    ("range", format!("{}..{}", range.start, range.end)),
                    ("timeout", format!("{timeout:?}")),
                ],
            );
            Err(format!(
                "worker for frames {}..{} exceeded {timeout:?} timeout and was killed",
                range.start, range.end
            ))
        }
        Err(RecvTimeoutError::Disconnected) => Err(format!(
            "worker for frames {}..{} died before responding",
            range.start, range.end
        )),
    }
}

/// Encode a range request in place: magic, payload length, lo, hi.
fn encode_request(buf: &mut [u8; 24], range: &Range<usize>) {
    buf[..4].copy_from_slice(REQUEST_MAGIC);
    buf[4..8].copy_from_slice(&REQUEST_PAYLOAD_LEN.to_le_bytes());
    buf[8..16].copy_from_slice(&(range.start as u64).to_le_bytes());
    buf[16..24].copy_from_slice(&(range.end as u64).to_le_bytes());
}

/// Read until `buf` is full or EOF; returns the bytes actually read.
fn read_full(src: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut got = 0usize;
    while got < buf.len() {
        match src.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Parse one framed worker response: `MGZW` + `u64` LE payload length +
/// the encoded [`PartialReport`] payload. `Ok(None)` is a clean EOF at
/// a frame boundary (worker shut down); every malformation — bad magic,
/// truncated header, a framed length that disagrees with the bytes that
/// follow — is a string detail routed through the retry path.
fn read_response_frame(src: &mut impl Read) -> Result<Option<Vec<u8>>, String> {
    let mut magic = [0u8; 4];
    let got = read_full(src, &mut magic).map_err(|e| format!("read worker response: {e}"))?;
    if got == 0 {
        return Ok(None);
    }
    if got < magic.len() {
        return Err(format!("worker framing truncated ({got} bytes)"));
    }
    if &magic != WORKER_MAGIC {
        return Err(format!("bad worker magic {magic:?}"));
    }
    let mut len_bytes = [0u8; 8];
    let got = read_full(src, &mut len_bytes).map_err(|e| format!("read worker framing: {e}"))?;
    if got < len_bytes.len() {
        return Err("worker framing truncated (length field)".to_string());
    }
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_RESPONSE_BYTES {
        return Err(format!("worker framed an implausible {len}-byte payload"));
    }
    // The framed length is untrusted until the bytes actually arrive:
    // allocate in bounded chunks as data is read (the `model::io`
    // validate-before-allocate discipline), so a hostile header framing
    // gigabytes against a short stream costs one chunk, not `len`.
    let mut payload = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(RESPONSE_READ_CHUNK) as usize;
        let start = payload.len();
        payload.resize(start + take, 0);
        let got = read_full(src, &mut payload[start..])
            .map_err(|e| format!("read worker payload: {e}"))?;
        if got < take {
            return Err(format!(
                "worker payload length {} != framed {len}",
                start + got
            ));
        }
        remaining -= take as u64;
    }
    Ok(Some(payload))
}

/// Saturating `u64 → u32` narrowing for report counters. A plain
/// `as u32` wraps — `(1 << 32) + 5` would report as 5 retries — so
/// counters beyond `u32::MAX` pin at the ceiling instead of lying low.
fn saturate_u32(n: u64) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Analyze an indexed container by fanning its frame ranges out across
/// workers. The partials are merged **in shard order**, so the returned
/// report is bit-identical to the resident [`StreamingAnalyzer`]
/// (`memgaze_analysis::StreamingAnalyzer`) — and hence to the resident
/// `Analyzer` — for every worker count and shard size.
///
/// The subprocess backend builds a transient [`FanoutPool`] for the
/// run; callers analyzing the same container repeatedly should hold a
/// pool themselves and call [`FanoutPool::run`] to keep workers warm.
pub fn run_fanout(
    container: &[u8],
    index: &FrameIndex,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    analysis: AnalysisConfig,
    cfg: &FanoutConfig,
    backend: &FanoutBackend,
) -> Result<FanoutRunReport, FanoutError> {
    match backend {
        FanoutBackend::InProcess => run_fanout_core(
            &JobSource::Resident { container, index },
            annots,
            symbols,
            analysis,
            cfg,
            None,
        ),
        FanoutBackend::Subprocess { exe } => {
            let pool = FanoutPool::new(
                exe,
                container,
                index,
                annots,
                symbols,
                analysis,
                cfg.clone(),
            )?;
            pool.run()
        }
    }
}

/// [`run_fanout`] over a trace in a [`TraceStore`]: ranges are analyzed
/// from the catalog + content-addressed blobs (per-frame result cache
/// first), so a worker — and crucially, a *retried* range — fetches
/// only the blobs its range references instead of re-reading the whole
/// shard container. The catalog carries the same per-frame sample
/// counts as the [`FrameIndex`], so the partition, merge order, and
/// merged report are identical to the container-backed path.
pub fn run_fanout_store(
    store: &TraceStore,
    trace_id: &str,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    analysis: AnalysisConfig,
    cfg: &FanoutConfig,
    backend: &FanoutBackend,
) -> Result<FanoutRunReport, FanoutError> {
    match backend {
        FanoutBackend::InProcess => {
            let catalog = store.catalog(trace_id)?;
            run_fanout_core(
                &JobSource::Store {
                    store,
                    catalog: &catalog,
                },
                annots,
                symbols,
                analysis,
                cfg,
                None,
            )
        }
        FanoutBackend::Subprocess { exe } => {
            let pool = FanoutPool::new_store(
                exe,
                store.root(),
                trace_id,
                annots,
                symbols,
                analysis,
                cfg.clone(),
            )?;
            pool.run()
        }
    }
}

fn run_fanout_core(
    source: &JobSource<'_>,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    analysis: AnalysisConfig,
    cfg: &FanoutConfig,
    pool: Option<&FanoutPool>,
) -> Result<FanoutRunReport, FanoutError> {
    // Reject a stale index before dispatching anything: every downstream
    // read depends on it describing exactly these bytes.
    source.validate()?;
    let meta = source.meta()?;

    let worker_cfg = AnalysisConfig {
        threads: cfg.threads_per_worker.max(1),
        ..analysis
    };
    let ranges = source.partition(cfg.workers);

    let queue: Mutex<Vec<Range<usize>>> = Mutex::new(ranges.clone());
    let results: Mutex<Vec<Option<PartialReport>>> = Mutex::new(vec![None; ranges.len()]);
    let failures: Mutex<Vec<WorkerFailure>> = Mutex::new(Vec::new());
    let retries = AtomicU64::new(0);
    let fatal: Mutex<Option<FanoutError>> = Mutex::new(None);
    let slots = cfg.workers.clamp(1, ranges.len().max(1));
    let spawns_before = pool.map(|p| p.spawn_count()).unwrap_or(0);

    let mut run_span = memgaze_obs::span("fanout.run");
    if run_span.is_active() {
        run_span.set_label(format!(
            "{} frames, {} ranges, {} slots",
            source.frame_count(),
            ranges.len(),
            slots
        ));
    }
    let run_ctx = run_span.ctx();

    // Each slot drains ranges off the shared queue with a persistent
    // worker, checked out on first use and reused for every range the
    // slot serves.
    let slot_loop = || {
        // The slot's persistent worker, checked out on first use
        // and reused for every range this slot serves.
        let mut worker: Option<WorkerHandle> = None;
        loop {
            if lock_live(&fatal).is_some() {
                break;
            }
            let Some(range) = lock_live(&queue).pop() else {
                break;
            };
            // A range index is its position in the (contiguous,
            // sorted) partition — recover it from the range starts.
            let Some(idx) = ranges.iter().position(|r| r.start == range.start) else {
                let mut f = lock_live(&fatal);
                if f.is_none() {
                    *f = Some(FanoutError::Protocol {
                        detail: format!(
                            "queued range {}..{} is not in the partition",
                            range.start, range.end
                        ),
                    });
                }
                break;
            };
            let mut range_span = memgaze_obs::span_under("fanout.range", run_ctx);
            if range_span.is_active() {
                range_span.set_label(format!("frames {}..{}", range.start, range.end));
            }
            let mut attempt = 0u32;
            let outcome = loop {
                attempt += 1;
                memgaze_obs::counter!("fanout.attempts").add(1);
                let run = {
                    let _attempt_span = memgaze_obs::span("fanout.attempt");
                    match pool {
                        None => {
                            run_worker_in_process(source, &range, annots, symbols, worker_cfg, cfg)
                        }
                        Some(p) => p.run_range(&mut worker, &range),
                    }
                };
                match run {
                    Ok(p) => break Ok(p),
                    Err(detail) => {
                        lock_live(&failures).push(WorkerFailure {
                            range: (range.start, range.end),
                            attempt,
                            detail: detail.clone(),
                        });
                        if attempt >= cfg.max_attempts.max(1) {
                            break Err(detail);
                        }
                        memgaze_obs::mark(
                            "fanout.retry",
                            &[
                                ("range", format!("{}..{}", range.start, range.end)),
                                ("attempt", attempt.to_string()),
                                ("detail", truncate_detail(&detail)),
                            ],
                        );
                        retries.fetch_add(1, Ordering::Relaxed);
                    }
                }
            };
            match outcome {
                Ok(p) => {
                    lock_live(&results)[idx] = Some(p);
                }
                Err(last) => {
                    let mut f = lock_live(&fatal);
                    if f.is_none() {
                        *f = Some(FanoutError::RangeFailed {
                            lo: range.start,
                            hi: range.end,
                            attempts: attempt,
                            last,
                        });
                    }
                    break;
                }
            }
        }
        // Keep the worker warm for the next run.
        if let (Some(p), Some(w)) = (pool, worker.take()) {
            p.checkin(w);
        }
    };
    if slots == 1 {
        // Single slot: run inline — a scoped thread would only add a
        // spawn/join and an extra wakeup hop to every run.
        slot_loop();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..slots {
                scope.spawn(slot_loop);
            }
        });
    }

    if let Some(err) = fatal.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(err);
    }
    let mut merged = PartialReport::empty(
        worker_cfg.footprint_block,
        worker_cfg.reuse_block,
        &cfg.locality_sizes,
    );
    for (i, slot) in results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .enumerate()
    {
        let partial = slot.ok_or_else(|| FanoutError::Protocol {
            detail: format!("range {i} produced no partial report"),
        })?;
        merged.merge(partial)?;
    }
    let report = merged.finish(&meta);
    Ok(FanoutRunReport {
        report,
        meta,
        ranges,
        retries: saturate_u32(retries.into_inner()),
        failures: failures.into_inner().unwrap_or_else(|e| e.into_inner()),
        spawns: pool
            .map(|p| saturate_u32(p.spawn_count() - spawns_before))
            .unwrap_or(0),
    })
}

/// Clamp a failure detail for span marks: event payloads stay bounded
/// even when a worker dumps a long stderr tail into the detail string.
fn truncate_detail(detail: &str) -> String {
    const MAX: usize = 200;
    if detail.len() <= MAX {
        return detail.to_string();
    }
    let mut cut = MAX;
    while !detail.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}… ({} bytes)", &detail[..cut], detail.len())
}

/// Extract a panic payload's message, if it carries one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// One in-process attempt over one frame range. A panicking worker
/// (analysis bug, injected via [`PANIC_ONCE_ENV`]) is caught here and
/// routed through the same string-error retry path as a crashed
/// subprocess — `std::thread::scope` would otherwise re-raise the panic
/// at join and take the whole coordinator down.
fn run_worker_in_process(
    source: &JobSource<'_>,
    range: &Range<usize>,
    annots: &AuxAnnotations,
    symbols: &SymbolTable,
    worker_cfg: AnalysisConfig,
    cfg: &FanoutConfig,
) -> Result<PartialReport, String> {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        maybe_inject_inprocess_panic(&cfg.worker_env);
        source.analyze(range, annots, symbols, worker_cfg, &cfg.locality_sizes)
    }));
    match caught {
        Ok(run) => run,
        Err(payload) => Err(format!(
            "in-process worker for frames {}..{} panicked: {}",
            range.start,
            range.end,
            panic_message(payload.as_ref())
        )),
    }
}

/// [`PANIC_ONCE_ENV`] injection for the in-process backend. The marker
/// path comes from `worker_env` (the per-run config), not the process
/// environment, so concurrent tests in one process cannot trip each
/// other's injections.
fn maybe_inject_inprocess_panic(worker_env: &[(String, String)]) {
    let Some((_, marker)) = worker_env.iter().find(|(k, _)| k == PANIC_ONCE_ENV) else {
        return;
    };
    let path = Path::new(marker);
    if !path.exists() {
        let _ = std::fs::write(path, b"panicked");
        panic!("injected in-process worker panic");
    }
}

/// Arguments of one one-shot `analyze-shard` worker invocation.
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// Path to the encoded [`WorkerSpec`].
    pub spec: PathBuf,
    /// Path to the sharded container.
    pub container: PathBuf,
    /// Path to the encoded [`FrameIndex`].
    pub index: PathBuf,
    /// The frame range to analyze.
    pub frames: Range<usize>,
}

/// Arguments of a persistent `analyze-shard --serve` worker: the same
/// spec/container/index triple, loaded once; ranges arrive over stdin.
#[derive(Debug, Clone)]
pub struct WorkerServeArgs {
    /// Path to the encoded [`WorkerSpec`].
    pub spec: PathBuf,
    /// Path to the sharded container.
    pub container: PathBuf,
    /// Path to the encoded [`FrameIndex`].
    pub index: PathBuf,
}

/// Arguments of a persistent store-backed `analyze-shard --serve`
/// worker: the spec plus a [`TraceStore`] root and trace id. The worker
/// opens the store and loads the catalog once, then serves each range
/// by fetching only the blobs that range references — through the
/// per-frame result cache, so warmed frames never decode a sample.
#[derive(Debug, Clone)]
pub struct WorkerStoreServeArgs {
    /// Path to the encoded [`WorkerSpec`].
    pub spec: PathBuf,
    /// Root directory of the [`TraceStore`].
    pub store_root: PathBuf,
    /// Trace id within the store.
    pub trace_id: String,
}

/// Spec + container + index, loaded and cross-validated once per worker
/// process (a stale sidecar must fail in the worker, not poison the
/// merge).
struct WorkerState {
    spec: WorkerSpec,
    container: Vec<u8>,
    index: FrameIndex,
}

impl WorkerState {
    fn load(spec: &Path, container: &Path, index: &Path) -> Result<WorkerState, FanoutError> {
        let spec_bytes = std::fs::read(spec)?;
        let spec = WorkerSpec::decode(&spec_bytes)?;
        let container = std::fs::read(container)?;
        let index_bytes = std::fs::read(index)?;
        let index = FrameIndex::decode(&index_bytes)?;
        index.validate(&container)?;
        Ok(WorkerState {
            spec,
            container,
            index,
        })
    }

    fn analyze(&self, frames: Range<usize>) -> Result<PartialReport, FanoutError> {
        if frames.end > self.index.entries.len() || frames.start > frames.end {
            return Err(FanoutError::Protocol {
                detail: format!(
                    "frame range {}..{} out of bounds for {} frames",
                    frames.start,
                    frames.end,
                    self.index.entries.len()
                ),
            });
        }
        Ok(analyze_frames(
            &self.container,
            &self.index,
            frames,
            &self.spec.annots,
            &self.spec.symbols,
            self.spec.analysis_config(),
            &self.spec.locality_sizes,
        )?)
    }
}

/// Spec + store handle + catalog, loaded once per store-backed worker
/// process. Each range request fetches only its blobs (result cache
/// first); a missing or corrupt object is a typed error the coordinator
/// retries, never a panic.
struct StoreWorkerState {
    spec: WorkerSpec,
    store: TraceStore,
    catalog: Catalog,
}

impl StoreWorkerState {
    fn load(args: &WorkerStoreServeArgs) -> Result<StoreWorkerState, FanoutError> {
        let spec_bytes = std::fs::read(&args.spec)?;
        let spec = WorkerSpec::decode(&spec_bytes)?;
        let store = TraceStore::open(StoreConfig::new(&args.store_root))?;
        let catalog = store.catalog(&args.trace_id)?;
        Ok(StoreWorkerState {
            spec,
            store,
            catalog,
        })
    }

    fn analyze(&self, frames: Range<usize>) -> Result<PartialReport, FanoutError> {
        if frames.end > self.catalog.frames.len() || frames.start > frames.end {
            return Err(FanoutError::Protocol {
                detail: format!(
                    "frame range {}..{} out of bounds for {} cataloged frames",
                    frames.start,
                    frames.end,
                    self.catalog.frames.len()
                ),
            });
        }
        let (partial, _, _) = self.store.analyze_frames(
            &self.catalog,
            frames,
            &self.spec.annots,
            &self.spec.symbols,
            self.spec.analysis_config(),
            &self.spec.locality_sizes,
        )?;
        Ok(partial)
    }
}

/// Frame an encoded partial into `buf` (cleared first): magic, length,
/// payload — assembled in one reusable buffer so each response is a
/// single `write_all`, with no per-range allocation once the buffer
/// has grown to the working size.
fn frame_partial_into(partial: &PartialReport, buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(WORKER_MAGIC);
    buf.extend_from_slice(&[0u8; 8]);
    partial.encode_into(buf);
    let len = (buf.len() - 12) as u64;
    buf[4..12].copy_from_slice(&len.to_le_bytes());
}

/// The one-shot `analyze-shard` worker body: load spec + container +
/// index, analyze the range, and write the framed partial to `out` in
/// one buffered write.
pub fn worker_main(args: &WorkerArgs, out: &mut impl Write) -> Result<(), FanoutError> {
    maybe_inject_failure(out);
    let state = WorkerState::load(&args.spec, &args.container, &args.index)?;
    let partial = state.analyze(args.frames.clone())?;
    let mut frame = Vec::new();
    frame_partial_into(&partial, &mut frame);
    out.write_all(&frame)?;
    out.flush()?;
    Ok(())
}

/// Parse one coordinator request off the worker's stdin: `MGZQ` + `u32`
/// LE payload length (16) + lo/hi as `u64` LE. `Ok(None)` is a clean
/// EOF at a frame boundary — the coordinator closed our stdin, which is
/// the shutdown signal.
fn read_request(input: &mut impl Read) -> Result<Option<Range<usize>>, FanoutError> {
    let mut magic = [0u8; 4];
    let got = read_full(input, &mut magic)?;
    if got == 0 {
        return Ok(None);
    }
    let protocol = |detail: String| FanoutError::Protocol { detail };
    if got < magic.len() {
        return Err(protocol(format!("request magic truncated ({got} bytes)")));
    }
    if &magic != REQUEST_MAGIC {
        return Err(protocol(format!("bad request magic {magic:?}")));
    }
    let mut head = [0u8; 4];
    input.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head);
    if len != REQUEST_PAYLOAD_LEN {
        return Err(protocol(format!(
            "request payload length {len} != {REQUEST_PAYLOAD_LEN}"
        )));
    }
    let mut body = [0u8; 16];
    input.read_exact(&mut body)?;
    let lo = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let hi = u64::from_le_bytes(body[8..].try_into().expect("8 bytes"));
    Ok(Some(lo as usize..hi as usize))
}

/// The persistent `analyze-shard --serve` worker body: load and
/// validate the spec + container + index **once**, then answer framed
/// range requests from stdin until it reaches EOF. Each response is
/// framed into one pooled buffer and issued as a single write. Failure
/// injections fire per request, so an injected death happens with a
/// range in flight — exactly what the coordinator's respawn path must
/// recover from.
pub fn worker_serve(
    args: &WorkerServeArgs,
    input: &mut impl Read,
    out: &mut impl Write,
) -> Result<(), FanoutError> {
    let state = WorkerState::load(&args.spec, &args.container, &args.index)?;
    serve_loop(input, out, |frames| state.analyze(frames))
}

/// The store-backed [`worker_serve`]: open the [`TraceStore`] and load
/// the catalog **once**, then answer framed range requests from stdin
/// until EOF, fetching only each requested range's blobs.
pub fn worker_serve_store(
    args: &WorkerStoreServeArgs,
    input: &mut impl Read,
    out: &mut impl Write,
) -> Result<(), FanoutError> {
    let state = StoreWorkerState::load(args)?;
    serve_loop(input, out, |frames| state.analyze(frames))
}

/// The request-response loop both serve modes share: read a framed
/// range, analyze it, write the framed partial, flush.
fn serve_loop(
    input: &mut impl Read,
    out: &mut impl Write,
    analyze: impl Fn(Range<usize>) -> Result<PartialReport, FanoutError>,
) -> Result<(), FanoutError> {
    let mut frame = Vec::new();
    while let Some(frames) = read_request(input)? {
        maybe_inject_failure(out);
        let partial = analyze(frames)?;
        frame_partial_into(&partial, &mut frame);
        out.write_all(&frame)?;
        out.flush()?;
        memgaze_obs::flush();
    }
    Ok(())
}

/// Failure injection for crash-path tests; a no-op unless the marker
/// env vars are set (the coordinator only sets them via
/// [`FanoutConfig::worker_env`]).
fn maybe_inject_failure(out: &mut impl Write) {
    if let Ok(marker) = std::env::var(CRASH_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"crashed");
            let _ = out.write_all(b"garbage, not a partial report");
            let _ = out.flush();
            std::process::exit(3);
        }
    }
    if let Ok(marker) = std::env::var(HANG_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"hung");
            std::thread::sleep(Duration::from_secs(600));
        }
    }
    if let Ok(marker) = std::env::var(SHORT_WRITE_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"short-wrote");
            // Valid magic, a length claiming 4096 payload bytes, but
            // only a fragment actually written — then a clean exit, so
            // only framing validation can catch it.
            let _ = out.write_all(WORKER_MAGIC);
            let _ = out.write_all(&4096u64.to_le_bytes());
            let _ = out.write_all(b"truncated");
            let _ = out.flush();
            std::process::exit(0);
        }
    }
    if let Ok(marker) = std::env::var(STDERR_FLOOD_ONCE_ENV) {
        let path = Path::new(&marker);
        if !path.exists() {
            let _ = std::fs::write(path, b"flooded");
            // Several MiB of stderr — far past the pipe buffer and the
            // coordinator's STDERR_KEEP cap — then a nonzero exit.
            let mut err = std::io::stderr().lock();
            let line = [b'e'; 8192];
            for _ in 0..512 {
                let _ = err.write_all(&line);
            }
            let _ = err.flush();
            std::process::exit(4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::{encode_sharded_indexed, Access, Sample, SampledTrace};

    fn mk_indexed_trace() -> (SampledTrace, Vec<u8>, FrameIndex) {
        let mut t = SampledTrace::new(TraceMeta::new("fanout-core", 1000, 8192));
        for s in 0..10u64 {
            let n = 30 + (s * 7) % 40;
            let acc: Vec<Access> = (0..n)
                .map(|i| {
                    Access::new(
                        0x400 + (i % 4) * 4,
                        ((s * 31 + i * 3) % 512) * 64,
                        s * 1000 + i,
                    )
                })
                .collect();
            t.push_sample(Sample::new(acc, s * 1000 + n)).unwrap();
        }
        t.meta.total_loads = 10_000;
        let (container, index) = encode_sharded_indexed(&t, 2);
        (t, container, index)
    }

    /// A reader that serves a fixed prefix then EOF, recording the
    /// largest single `read` request it ever sees — the observable that
    /// separates chunked reading from allocate-up-front.
    struct HostileStream {
        data: Vec<u8>,
        pos: usize,
        max_request: usize,
    }

    impl Read for HostileStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.max_request = self.max_request.max(buf.len());
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn hostile_frame_length_is_read_in_bounded_chunks() {
        // A hostile header frames an 8 GiB payload (under the protocol
        // cap) against a stream that carries 16 bytes. The reader must
        // fail with a truncation error without ever requesting — or
        // allocating — more than one chunk at a time.
        let framed_len: u64 = 8 << 30;
        let mut data = Vec::new();
        data.extend_from_slice(WORKER_MAGIC);
        data.extend_from_slice(&framed_len.to_le_bytes());
        data.extend_from_slice(&[0xAB; 16]);
        let mut src = HostileStream {
            data,
            pos: 0,
            max_request: 0,
        };
        let err = read_response_frame(&mut src).expect_err("truncated payload must error");
        assert!(err.contains("framed"), "unexpected detail: {err}");
        assert!(
            src.max_request as u64 <= RESPONSE_READ_CHUNK,
            "reader requested {} bytes at once for an untrusted length",
            src.max_request
        );
    }

    #[test]
    fn honest_frames_roundtrip_through_chunked_reader() {
        // Payloads both below and above one chunk decode intact.
        for len in [0usize, 5, (RESPONSE_READ_CHUNK + 123) as usize] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut data = Vec::new();
            data.extend_from_slice(WORKER_MAGIC);
            data.extend_from_slice(&(len as u64).to_le_bytes());
            data.extend_from_slice(&payload);
            let mut src = HostileStream {
                data,
                pos: 0,
                max_request: 0,
            };
            let got = read_response_frame(&mut src).unwrap().unwrap();
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn counter_narrowing_saturates_instead_of_wrapping() {
        // `(1 << 32) + 5 as u32` wraps to 5 — the pre-fix lie. The
        // saturating conversion pins at the ceiling.
        assert_eq!(saturate_u32(0), 0);
        assert_eq!(saturate_u32(41), 41);
        assert_eq!(saturate_u32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(saturate_u32((1 << 32) + 5), u32::MAX);
        assert_eq!(saturate_u32(u64::MAX), u32::MAX);
    }

    #[test]
    fn in_process_fanout_matches_resident_streaming() {
        let (t, container, index) = mk_indexed_trace();
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let analysis = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let sizes = vec![8u64, 32];
        let resident =
            memgaze_analysis::stream_resident_trace(&t, &annots, &symbols, analysis, &sizes, 2);
        for workers in [1usize, 2, 3, 8] {
            let cfg = FanoutConfig {
                workers,
                locality_sizes: sizes.clone(),
                ..FanoutConfig::default()
            };
            let run = run_fanout(
                &container,
                &index,
                &annots,
                &symbols,
                analysis,
                &cfg,
                &FanoutBackend::InProcess,
            )
            .unwrap();
            assert_eq!(run.meta, t.meta);
            assert_eq!(run.report.decompression, resident.decompression);
            assert_eq!(run.report.function_rows, resident.function_rows);
            assert_eq!(run.report.block_reuse, resident.block_reuse);
            assert_eq!(run.report.reuse_histogram, resident.reuse_histogram);
            assert_eq!(run.report.locality_series, resident.locality_series);
            assert_eq!(run.report.interval_rows(4), resident.interval_rows(4));
            assert_eq!(run.retries, 0);
            assert_eq!(run.spawns, 0, "in-process runs spawn nothing");
            assert!(run.failures.is_empty());
        }
    }

    #[test]
    fn store_backed_fanout_matches_container_backed() {
        let (t, container, index) = mk_indexed_trace();
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let analysis = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let sizes = vec![8u64, 32];
        let root = std::env::temp_dir().join(format!(
            "memgaze-fanout-store-unit-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        store.put("fan", &container, &index, &symbols).unwrap();
        let resident =
            memgaze_analysis::stream_resident_trace(&t, &annots, &symbols, analysis, &sizes, 2);
        for workers in [1usize, 3, 8] {
            let cfg = FanoutConfig {
                workers,
                locality_sizes: sizes.clone(),
                ..FanoutConfig::default()
            };
            let container_run = run_fanout(
                &container,
                &index,
                &annots,
                &symbols,
                analysis,
                &cfg,
                &FanoutBackend::InProcess,
            )
            .unwrap();
            let store_run = run_fanout_store(
                &store,
                "fan",
                &annots,
                &symbols,
                analysis,
                &cfg,
                &FanoutBackend::InProcess,
            )
            .unwrap();
            // Identical partition and a report bit-identical to both
            // the container-backed fan-out and the resident analyzer.
            assert_eq!(store_run.ranges, container_run.ranges);
            assert_eq!(store_run.meta, t.meta);
            assert_eq!(store_run.report, container_run.report);
            assert_eq!(store_run.report, resident);
            assert_eq!(store_run.retries, 0);
        }
        // A missing trace is a typed store error, not a panic.
        let err = run_fanout_store(
            &store,
            "absent",
            &annots,
            &symbols,
            analysis,
            &FanoutConfig::default(),
            &FanoutBackend::InProcess,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            FanoutError::Store(memgaze_store::StoreError::MissingTrace { .. })
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn store_backed_fanout_recovers_from_panicking_worker() {
        let (t, container, index) = mk_indexed_trace();
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let analysis = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let root = std::env::temp_dir().join(format!(
            "memgaze-fanout-store-panic-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = TraceStore::open(StoreConfig::new(&root)).unwrap();
        store.put("fan", &container, &index, &symbols).unwrap();
        let marker = root.join("panic-marker");
        let cfg = FanoutConfig {
            workers: 2,
            worker_env: vec![(
                PANIC_ONCE_ENV.to_string(),
                marker.to_string_lossy().into_owned(),
            )],
            ..FanoutConfig::default()
        };
        let run = run_fanout_store(
            &store,
            "fan",
            &annots,
            &symbols,
            analysis,
            &cfg,
            &FanoutBackend::InProcess,
        )
        .unwrap();
        // The injected panic costs one retry; the retried range only
        // re-reads its own blobs, and the merged report still matches
        // the resident analyzer.
        assert_eq!(run.retries, 1);
        assert_eq!(run.failures.len(), 1);
        assert!(run.failures[0].detail.contains("panicked"));
        let resident = memgaze_analysis::stream_resident_trace(
            &t,
            &annots,
            &symbols,
            analysis,
            &cfg.locality_sizes,
            2,
        );
        assert_eq!(run.report, resident);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_index_is_rejected_before_dispatch() {
        let (_, container, _) = mk_indexed_trace();
        let mut t2 = SampledTrace::new(TraceMeta::new("other", 1000, 8192));
        let acc = vec![Access::new(0x400u64, 64, 0)];
        t2.push_sample(Sample::new(acc, 1)).unwrap();
        t2.meta.total_loads = 1000;
        let (_, stale) = encode_sharded_indexed(&t2, 1);
        let err = run_fanout(
            &container,
            &stale,
            &AuxAnnotations::new(),
            &SymbolTable::new(),
            AnalysisConfig::default(),
            &FanoutConfig::default(),
            &FanoutBackend::InProcess,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            FanoutError::Model(ModelError::StaleIndex { .. })
        ));
    }

    #[test]
    fn worker_response_framing_is_validated() {
        use std::io::Cursor;
        // Clean EOF at a frame boundary is a shutdown, not an error.
        assert!(matches!(
            read_response_frame(&mut Cursor::new(&b""[..])),
            Ok(None)
        ));
        let err = read_response_frame(&mut Cursor::new(&b"garbage, not a partial report"[..]))
            .unwrap_err();
        assert!(err.contains("bad worker magic"), "{err}");
        // A framed length that exceeds what was written (the short-write
        // injection) must be caught by payload-length validation.
        let mut framed = WORKER_MAGIC.to_vec();
        framed.extend_from_slice(&99u64.to_le_bytes());
        framed.extend_from_slice(b"short");
        let err = read_response_frame(&mut Cursor::new(framed.as_slice())).unwrap_err();
        assert!(err.contains("payload length"), "{err}");
        // An implausible framed length is rejected before allocation.
        let mut huge = WORKER_MAGIC.to_vec();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_response_frame(&mut Cursor::new(huge.as_slice())).unwrap_err();
        assert!(err.contains("implausible"), "{err}");
    }

    #[test]
    fn pooled_response_framing_is_byte_identical_and_roundtrips() {
        let (_, container, index) = mk_indexed_trace();
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let cfg = AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        };
        let a = analyze_frames(&container, &index, 0..2, &annots, &symbols, cfg, &[8]).unwrap();
        let b = analyze_frames(
            &container,
            &index,
            2..index.entries.len(),
            &annots,
            &symbols,
            cfg,
            &[8],
        )
        .unwrap();
        let mut fresh_a = Vec::new();
        frame_partial_into(&a, &mut fresh_a);
        let mut fresh_b = Vec::new();
        frame_partial_into(&b, &mut fresh_b);
        // One pooled buffer serving consecutive ranges — dirty seed
        // contents, then reuse — frames the exact same bytes.
        let mut pooled = vec![0xAA; 37];
        frame_partial_into(&a, &mut pooled);
        assert_eq!(pooled, fresh_a);
        frame_partial_into(&b, &mut pooled);
        assert_eq!(pooled, fresh_b);
        // The framed response round-trips through the coordinator's
        // reader back to the exact encoded partial.
        let payload = read_response_frame(&mut std::io::Cursor::new(fresh_a.as_slice()))
            .unwrap()
            .expect("one frame");
        assert_eq!(payload, a.encode());
        assert_eq!(
            PartialReport::decode(&payload).unwrap().encode(),
            a.encode()
        );
    }

    #[test]
    fn request_framing_roundtrips_and_eof_is_shutdown() {
        let mut req = [0u8; 24];
        encode_request(&mut req, &(3..9));
        let mut feed = req.to_vec();
        encode_request(&mut req, &(0..usize::MAX & 0xffff));
        feed.extend_from_slice(&req);
        let mut cur = std::io::Cursor::new(feed.as_slice());
        assert_eq!(read_request(&mut cur).unwrap(), Some(3..9));
        assert_eq!(read_request(&mut cur).unwrap(), Some(0..0xffff));
        assert_eq!(read_request(&mut cur).unwrap(), None, "EOF is shutdown");
        let err = read_request(&mut std::io::Cursor::new(&b"MGZX"[..])).unwrap_err();
        assert!(matches!(err, FanoutError::Protocol { .. }));
    }
}
