//! Hotspot analysis and the region of interest (paper §II).
//!
//! "To help focus results, one may optionally perform standard hotspot
//! analysis based on time or memory loads. This result defines a region
//! of interest (set of functions) that are used to limit tracing" — by
//! either *selective instrumentation* (only the ROI gets `ptwrite`s) or
//! *Processor Tracing's hardware guards* (everything is instrumented,
//! but the hardware only emits packets inside the ROI, so the region can
//! change without re-instrumentation).

use crate::pipeline::{MemGaze, MicroReport};
use memgaze_instrument::Instrumenter;
use memgaze_isa::interp::{EventSink, Machine};
use memgaze_isa::LoadModule;
use memgaze_model::{Ip, SymbolTable};
use memgaze_ptsim::IpGuards;
use memgaze_workloads::ubench::MicroBench;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-function load counts from a cheap profiling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotReport {
    /// `(function, loads)` pairs, hottest first.
    pub functions: Vec<(String, u64)>,
    /// Total loads profiled.
    pub total_loads: u64,
}

impl HotspotReport {
    /// The names of the `k` hottest functions.
    pub fn top(&self, k: usize) -> Vec<String> {
        self.functions
            .iter()
            .take(k)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Fraction of all loads covered by the `k` hottest functions.
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total_loads == 0 {
            return 0.0;
        }
        let hot: u64 = self.functions.iter().take(k).map(|(_, l)| l).sum();
        hot as f64 / self.total_loads as f64
    }
}

/// Counting sink: loads per function.
struct CountSink<'s> {
    symbols: &'s SymbolTable,
    counts: HashMap<u32, u64>,
    total: u64,
}

impl EventSink for CountSink<'_> {
    fn on_load(&mut self, ip: Ip, _addr: u64, _t: u64) {
        self.total += 1;
        if let Some(f) = self.symbols.lookup(ip) {
            *self.counts.entry(f.id.0).or_insert(0) += 1;
        }
    }
}

/// Profile a module's per-function load counts (the paper's "standard
/// hotspot analysis based on … memory loads").
pub fn profile_hotspots(
    module: &LoadModule,
    entry: memgaze_isa::ProcId,
) -> Result<HotspotReport, memgaze_isa::interp::ExecError> {
    let symbols = module.symbol_table();
    let mut mach = Machine::new(
        module,
        CountSink {
            symbols: &symbols,
            counts: HashMap::new(),
            total: 0,
        },
    );
    mach.run(entry, crate::pipeline::MAX_INSTRS)?;
    let sink = mach.into_sink();
    let mut functions: Vec<(String, u64)> = sink
        .counts
        .into_iter()
        .filter_map(|(id, loads)| {
            symbols
                .function(memgaze_model::FunctionId(id))
                .map(|f| (f.name.clone(), loads))
        })
        .collect();
    functions.sort_by_key(|(_, l)| std::cmp::Reverse(*l));
    Ok(HotspotReport {
        functions,
        total_loads: sink.total,
    })
}

impl MemGaze {
    /// Hotspot-profile a microbenchmark on its original module.
    pub fn microbench_hotspots(
        &self,
        bench: &MicroBench,
    ) -> Result<HotspotReport, Box<dyn std::error::Error>> {
        let module = bench.module();
        let main = module.find_proc("main").ok_or("no main")?;
        Ok(profile_hotspots(&module, main)?)
    }

    /// Run with the ROI enforced by *selective instrumentation*: only the
    /// `top_k` hottest functions receive `ptwrite`s (Step 1 of Fig. 1).
    pub fn run_microbench_roi(
        &self,
        bench: &MicroBench,
        top_k: usize,
    ) -> Result<MicroReport, Box<dyn std::error::Error>> {
        let hot = self.microbench_hotspots(bench)?;
        let roi = hot.top(top_k);
        let module = bench.module();
        let mut icfg = self.config().instrument.clone();
        icfg.roi = Some(roi.into_iter().collect());
        let inst = Instrumenter::new(icfg).instrument(&module);
        let main = inst.module.find_proc("main").ok_or("no main")?;
        let (trace, run, _outcome) = memgaze_ptsim::collect_sampled(
            &inst,
            main,
            self.config().sampler.clone(),
            &bench.name(),
        )?;
        Ok(MicroReport {
            trace,
            instrumented: inst,
            run,
        })
    }

    /// Run with the ROI enforced by *hardware guards*: the whole module
    /// is instrumented, but PT only emits packets inside the `top_k`
    /// hottest functions (Step 2 of Fig. 1 — "the region of interest can
    /// change without re-instrumentation").
    pub fn run_microbench_guarded(
        &self,
        bench: &MicroBench,
        top_k: usize,
    ) -> Result<MicroReport, Box<dyn std::error::Error>> {
        let hot = self.microbench_hotspots(bench)?;
        let roi = hot.top(top_k);
        let module = bench.module();
        let inst = Instrumenter::new(self.config().instrument.clone()).instrument(&module);
        // Guards filter on *instrumented-module* ptwrite addresses.
        let symbols = inst.module.symbol_table();
        let mut cfg = self.config().sampler.clone();
        cfg.guards = IpGuards::from_functions(&symbols, roi.iter().map(String::as_str));
        let main = inst.module.find_proc("main").ok_or("no main")?;
        let (trace, run, _outcome) =
            memgaze_ptsim::collect_sampled(&inst, main, cfg, &bench.name())?;
        Ok(MicroReport {
            trace,
            instrumented: inst,
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use memgaze_workloads::ubench::OptLevel;

    fn setup() -> (MemGaze, MicroBench) {
        let mut cfg = PipelineConfig::microbench();
        cfg.sampler.period = 1_000;
        (
            MemGaze::new(cfg),
            MicroBench::parse("str1|irr", 1024, 10, OptLevel::O3).unwrap(),
        )
    }

    #[test]
    fn hotspot_profile_finds_kernel() {
        let (mg, bench) = setup();
        let hot = mg.microbench_hotspots(&bench).unwrap();
        assert_eq!(hot.functions[0].0, "kernel");
        assert!(hot.coverage(1) > 0.95, "{:?}", hot);
        assert!(hot.total_loads > 0);
    }

    #[test]
    fn roi_and_guards_limit_trace_to_hot_functions() {
        let (mg, bench) = setup();
        for report in [
            mg.run_microbench_roi(&bench, 1).unwrap(),
            mg.run_microbench_guarded(&bench, 1).unwrap(),
        ] {
            assert!(report.trace.observed_accesses() > 0);
            let symbols = &report.instrumented.orig_symbols;
            for a in report.trace.accesses() {
                let f = symbols.lookup(a.ip).expect("attributed");
                assert_eq!(f.name, "kernel", "access outside ROI at {}", a.ip);
            }
        }
    }

    #[test]
    fn guards_change_roi_without_reinstrumentation() {
        // The same fully instrumented module serves different regions of
        // interest purely through the hardware guards.
        let (mg, bench) = setup();
        let narrow = mg.run_microbench_guarded(&bench, 1).unwrap();
        let wide = mg.run_microbench_guarded(&bench, 16).unwrap();
        // Identical static instrumentation…
        assert_eq!(
            narrow.instrumented.stats.ptwrites_inserted,
            wide.instrumented.stats.ptwrites_inserted
        );
        assert_eq!(
            narrow.instrumented.stats.instrumented_loads,
            wide.instrumented.stats.instrumented_loads
        );
        // …and the traces still agree because main executes no loads of
        // its own — the ROI mechanism is purely dynamic.
        assert!(narrow.trace.observed_accesses() > 0);
        assert!(wide.trace.observed_accesses() >= narrow.trace.observed_accesses());
        // ROI selective instrumentation, by contrast, removes ptwrites.
        let roi = mg.run_microbench_roi(&bench, 1).unwrap();
        assert!(
            roi.instrumented.stats.ptwrites_inserted <= narrow.instrumented.stats.ptwrites_inserted
        );
    }
}
