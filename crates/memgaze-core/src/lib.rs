//! The MemGaze pipeline (paper Fig. 1): static analysis + selective
//! instrumentation → Processor-Tracing collection of sampled address
//! traces → multi-resolution analysis.
//!
//! Two front-ends feed the same trace model:
//!
//! * the **IR path** ([`MemGaze::run_microbench`]) generates a
//!   microbenchmark module, instruments it with real `ptwrite` insertion,
//!   executes it on the interpreter, collects raw PT packets, and decodes
//!   them back to effective addresses;
//! * the **workload path** ([`trace_workload`]) runs a native Rust
//!   workload against a traced address space whose loads stream through
//!   the identical buffer/trigger/drop machinery.
//!
//! Both yield a [`memgaze_model::SampledTrace`] plus annotations and
//! symbols, which [`memgaze_analysis::Analyzer`] consumes.

pub mod fanout;
pub mod hotspot;
pub mod overheads;
pub mod pipeline;
pub mod recorders;
pub mod watch;

pub use fanout::{
    run_fanout, run_fanout_store, worker_main, worker_serve, worker_serve_store, FanoutBackend,
    FanoutConfig, FanoutError, FanoutPool, FanoutRunReport, WorkerArgs, WorkerFailure,
    WorkerServeArgs, WorkerStoreServeArgs,
};
pub use hotspot::{profile_hotspots, HotspotReport};
pub use overheads::{phase_profiles, PhaseOverhead};
pub use pipeline::{
    analyze_shard_container, full_trace_workload, trace_workload, trace_workload_streaming,
    FullWorkloadReport, MemGaze, MicroReport, PipelineConfig, PipelineError,
    StreamingWorkloadReport, WorkloadReport,
};
pub use recorders::{FullRecorder, SamplerRecorder, StreamingRecorder, TeeRecorder};
pub use watch::{
    phase_shift_steps, smoke_run, watch_smoke, watch_workload, Controller, ControllerConfig,
    ControllerMode, GuardAction, Retune, WatchConfig, WatchReport,
};
