//! Disassembly: human-readable listings of load modules.
//!
//! Used to inspect what the instrumentor did — the listing shows each
//! instruction with its address, so a rewritten module's inserted
//! `ptwrite`s and shifted layout are directly visible.

use crate::instr::{BinOp, Instr, Terminator};
use crate::module::LoadModule;
use crate::proc::ProcId;
use std::fmt::Write as _;

fn op_mnemonic(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Rem => "rem",
    }
}

/// Render one instruction.
pub fn disasm_instr(i: &Instr) -> String {
    match i {
        Instr::Load { dst, addr } => format!("load    {dst} <- {addr}"),
        Instr::Store { src, addr } => format!("store   {addr} <- {src}"),
        Instr::MovImm { dst, imm } => format!("mov     {dst}, {imm:#x}"),
        Instr::Mov { dst, src } => format!("mov     {dst}, {src}"),
        Instr::Bin { op, dst, rhs } => format!("{:<7} {dst}, {rhs}", op_mnemonic(*op)),
        Instr::Lea { dst, addr } => format!("lea     {dst}, {addr}"),
        Instr::Call { proc } => format!("call    {proc}"),
        Instr::Ptwrite { src } => format!("ptwrite {src}"),
        Instr::Nop => "nop".to_string(),
    }
}

/// Render a terminator.
pub fn disasm_term(t: &Terminator) -> String {
    match t {
        Terminator::Jmp(b) => format!("jmp     {b}"),
        Terminator::Br {
            lhs,
            op,
            rhs,
            taken,
            not_taken,
        } => {
            let pred = match op {
                crate::instr::CmpOp::Eq => "eq",
                crate::instr::CmpOp::Ne => "ne",
                crate::instr::CmpOp::Lt => "lt",
                crate::instr::CmpOp::Le => "le",
                crate::instr::CmpOp::Gt => "gt",
                crate::instr::CmpOp::Ge => "ge",
            };
            format!("br.{pred}   {lhs}, {rhs} -> {taken} | {not_taken}")
        }
        Terminator::Ret => "ret".to_string(),
    }
}

/// Render one procedure with instruction addresses.
pub fn disasm_proc(module: &LoadModule, proc: ProcId) -> String {
    let layout = module.layout();
    let p = module.proc(proc);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} <{}> [{}..{}):",
        p.name,
        p.src_file,
        layout.proc_base(proc),
        layout.proc_end(proc)
    );
    for b in &p.blocks {
        let _ = writeln!(out, "  {}:  ; line {}", b.id, b.src_line);
        for (idx, ins) in b.instrs.iter().enumerate() {
            let ip = layout.ip_of(proc, b.id, idx);
            let _ = writeln!(
                out,
                "    {:>10}  {}",
                format!("{:#x}", ip.raw()),
                disasm_instr(ins)
            );
        }
        let term_ip = layout.ip_of(proc, b.id, b.instrs.len());
        let _ = writeln!(
            out,
            "    {:>10}  {}",
            format!("{:#x}", term_ip.raw()),
            disasm_term(&b.term)
        );
    }
    out
}

/// Render the whole module.
pub fn disasm_module(module: &LoadModule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; module {} — {} procs, {} instrs, {} loads, {} B",
        module.name,
        module.procs.len(),
        module.num_instrs(),
        module.num_loads(),
        module.binary_size_bytes()
    );
    for d in &module.data {
        let _ = writeln!(
            out,
            "; data {:>10}  {} ({} words)",
            format!("{:#x}", d.base),
            d.label,
            d.words.len()
        );
    }
    for p in &module.procs {
        out.push('\n');
        out.push_str(&disasm_proc(module, p.id));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, ProcBuilder};
    use crate::instr::{AddrMode, CmpOp, Operand};
    use crate::reg::Reg;

    fn demo_module() -> LoadModule {
        let mut mb = ModuleBuilder::new("demo");
        let a = mb.alloc_global("A", 8);
        let (i, b, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let mut pb = ProcBuilder::new("loop", "demo.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.at_line(3).mov_imm(i, 0).mov_imm(b, a as i64);
        pb.jmp(body);
        pb.switch_to(body);
        pb.at_line(4)
            .load(x, AddrMode::base_index(b, i, 8, 0))
            .add_imm(i, 1);
        pb.br(i, CmpOp::Lt, Operand::Imm(8), body, exit);
        pb.switch_to(exit);
        pb.ret();
        mb.add(pb);
        mb.finish()
    }

    #[test]
    fn listing_contains_addresses_and_mnemonics() {
        let m = demo_module();
        let s = disasm_module(&m);
        assert!(s.contains("module demo"));
        assert!(s.contains("loop <demo.c>"));
        assert!(s.contains("load    r2 <- [r1 + r0*8]"));
        assert!(s.contains("br.lt"));
        assert!(s.contains("ret"));
        assert!(s.contains("0x400000"), "base address visible:\n{s}");
        assert!(s.contains("; data"));
    }

    #[test]
    fn instrumented_listing_shows_ptwrites_before_loads() {
        // Insert ptwrites before the load by hand to confirm listing
        // order (the real instrumentor lives in another crate; this test
        // only checks rendering).
        let mut m = demo_module();
        let body = &mut m.procs[0].blocks[1];
        let load_pos = body.load_positions().next().unwrap();
        body.instrs
            .insert(load_pos, Instr::Ptwrite { src: Reg::gp(1) });
        body.instrs
            .insert(load_pos + 1, Instr::Ptwrite { src: Reg::gp(0) });
        let s = disasm_proc(&m, ProcId(0));
        let ptw = s.find("ptwrite r1").expect("first ptwrite rendered");
        let ptw2 = s.find("ptwrite r0").expect("second ptwrite rendered");
        let load = s.find("load    r2").expect("load rendered");
        assert!(
            ptw < ptw2 && ptw2 < load,
            "ptwrites precede their load:\n{s}"
        );
    }

    #[test]
    fn every_instruction_kind_renders() {
        let cases = [
            (
                Instr::Store {
                    src: Reg::gp(1),
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                "store",
            ),
            (
                Instr::Mov {
                    dst: Reg::gp(1),
                    src: Reg::gp(2),
                },
                "mov",
            ),
            (
                Instr::Lea {
                    dst: Reg::gp(1),
                    addr: AddrMode::global(0x60),
                },
                "lea",
            ),
            (Instr::Call { proc: ProcId(3) }, "call    proc3"),
            (Instr::Nop, "nop"),
            (
                Instr::Bin {
                    op: BinOp::Rem,
                    dst: Reg::gp(5),
                    rhs: Operand::Imm(100),
                },
                "rem",
            ),
        ];
        for (ins, want) in cases {
            assert!(
                disasm_instr(&ins).contains(want),
                "{ins:?} → {}",
                disasm_instr(&ins)
            );
        }
    }
}
