//! Microbenchmark code generation (paper §VI, "Benchmarks").
//!
//! The paper's microbenchmarks "simulate accesses to both dense and sparse
//! data structures and vary access patterns, data reuse, access sparsity,
//! and access likelihood", are repeated 100 times, and are named by their
//! access patterns: `str<k>` (strided with stride step `k`) and `irr`
//! (irregular), composed conditionally (`/`) or in series (`|`).
//!
//! Kernels are generated at two optimization levels. `O0` keeps values in
//! the stack frame, producing roughly one Constant (frame) load per
//! pattern load (compression κ ≈ 2, paper §VI-C); `O3` unrolls ×4 and
//! keeps state in registers (κ ≈ 1.2).

use crate::builder::{ModuleBuilder, ProcBuilder};
use crate::instr::{AddrMode, BinOp, CmpOp, Operand};
use crate::module::LoadModule;

use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// One primitive access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// `A[i·step]` — strided with stride `step` elements.
    Strided {
        /// Stride in 8-byte elements.
        step: u32,
    },
    /// `A[P[i]]` — gather through an index array (index load is strided,
    /// data load is irregular).
    Irregular,
}

impl Pattern {
    /// Strided pattern with the given element step.
    pub fn strided(step: u32) -> Pattern {
        assert!(step > 0, "stride step must be positive");
        Pattern::Strided { step }
    }

    /// Paper-style mnemonic: `str<k>` or `irr`.
    pub fn mnemonic(&self) -> String {
        match self {
            Pattern::Strided { step } => format!("str{step}"),
            Pattern::Irregular => "irr".to_string(),
        }
    }
}

/// How patterns are combined, mirroring the paper's naming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Compose {
    /// A single pattern.
    Single(Pattern),
    /// Patterns executed one loop after another (`a|b`).
    Serial(Vec<Pattern>),
    /// Two patterns chosen per iteration by a data-dependent condition
    /// (`a/b`); `likelihood` is the percentage of iterations taking the
    /// first pattern.
    Conditional {
        /// Pattern taken with probability `likelihood`%.
        first: Pattern,
        /// Pattern taken otherwise.
        second: Pattern,
        /// Probability of `first`, in percent (0–100).
        likelihood: u8,
    },
}

impl Compose {
    /// Paper-style composed name, e.g. `"str2|irr"` or `"str1/irr"`.
    pub fn name(&self) -> String {
        match self {
            Compose::Single(p) => p.mnemonic(),
            Compose::Serial(ps) => ps
                .iter()
                .map(Pattern::mnemonic)
                .collect::<Vec<_>>()
                .join("|"),
            Compose::Conditional { first, second, .. } => {
                format!("{}/{}", first.mnemonic(), second.mnemonic())
            }
        }
    }
}

/// Codegen optimization level (paper varies O0 vs. O3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// Unoptimized: per-iteration frame spills and reloads.
    O0,
    /// Optimized: ×4 unrolled, register-resident state.
    O3,
}

impl OptLevel {
    /// Suffix used in benchmark names ("-O0" / "-O3").
    pub fn suffix(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O3 => "O3",
        }
    }
}

/// Specification of one microbenchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UKernelSpec {
    /// Pattern composition.
    pub compose: Compose,
    /// Data-array length in 8-byte elements.
    pub elems: u32,
    /// Outer repetitions (100 in the paper: "repeated 100 times").
    pub reps: u32,
    /// Optimization level.
    pub opt: OptLevel,
}

impl UKernelSpec {
    /// Benchmark name, e.g. `"str2|irr-O3"`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.compose.name(), self.opt.suffix())
    }
}

/// Registers used by generated kernels (fixed allocation).
struct KRegs {
    /// Loop index.
    i: Reg,
    /// Data-array base.
    a: Reg,
    /// Index-array base.
    p: Reg,
    /// Loaded index / condition value.
    idx: Reg,
    /// Loaded data value.
    x: Reg,
    /// Scratch (Rem computation, frame traffic).
    t: Reg,
    /// Loop bound.
    n: Reg,
}

const KR: KRegs = KRegs {
    i: Reg(0),
    a: Reg(1),
    p: Reg(2),
    idx: Reg(3),
    x: Reg(4),
    t: Reg(5),
    n: Reg(6),
};

/// Deterministic pseudo-permutation of `0..n` (no `rand` dependency): a
/// multiplicative walk with an odd multiplier, fixed up to stay in range.
fn pseudo_perm(n: u32) -> Vec<u64> {
    let mult: u64 = 2_654_435_761; // Knuth's multiplicative constant (odd).
    (0..n as u64)
        .map(|i| (i.wrapping_mul(mult)) % n as u64)
        .collect()
}

/// Emit one inner loop that runs `pattern` for `iters` iterations.
///
/// `unroll` replicates the body loads (O3); `frame_traffic` adds one
/// Constant frame load per pattern load (O0).
#[allow(clippy::too_many_arguments)]
fn emit_pattern_loop(
    pb: &mut ProcBuilder,
    pattern: Pattern,
    a_base: u64,
    p_base: u64,
    elems: u32,
    unroll: u32,
    frame_traffic: bool,
    line: u32,
) {
    let body = pb.new_block();
    let exit = pb.new_block();
    pb.at_line(line);
    pb.mov_imm(KR.i, 0);
    pb.mov_imm(KR.a, a_base as i64);
    pb.mov_imm(KR.p, p_base as i64);
    // Keep the loop bound in the frame so O0 can reload it.
    pb.mov_imm(KR.n, i64::from(elems));
    if frame_traffic {
        pb.store(KR.n, AddrMode::base_disp(Reg::FP, -16));
    }
    pb.jmp(body);
    pb.switch_to(body);
    pb.at_line(line + 1);

    let (_step, iters) = match pattern {
        Pattern::Strided { step } => (step, elems / step.max(1)),
        Pattern::Irregular => (1, elems),
    };

    for u in 0..unroll {
        match pattern {
            Pattern::Strided { step } => {
                // A[(i + u)·step] — same induction variable, distinct
                // displacement per unrolled copy: all Strided.
                pb.load(
                    KR.x,
                    AddrMode {
                        base: Some(KR.a),
                        index: Some(KR.i),
                        scale: 8,
                        disp: i64::from(u) * i64::from(step) * 8,
                    },
                );
            }
            Pattern::Irregular => {
                // idx = P[i + u] (strided); x = A[idx] (irregular).
                pb.load(
                    KR.idx,
                    AddrMode {
                        base: Some(KR.p),
                        index: Some(KR.i),
                        scale: 8,
                        disp: i64::from(u) * 8,
                    },
                );
                pb.load(KR.x, AddrMode::base_index(KR.a, KR.idx, 8, 0));
            }
        }
        if frame_traffic {
            // O0-style spill/reload of the accumulator: one Constant load
            // per pattern load.
            pb.store(KR.x, AddrMode::base_disp(Reg::FP, -8));
            pb.load(KR.t, AddrMode::base_disp(Reg::FP, -8));
            if matches!(pattern, Pattern::Irregular) {
                // The gather also reloads the bound: two Constant loads
                // for its two pattern loads.
                pb.load(KR.t, AddrMode::base_disp(Reg::FP, -16));
            }
        }
    }

    // Advance the induction variable by unroll·(1 for irr, step for str).
    let iv_step = i64::from(unroll)
        * match pattern {
            Pattern::Strided { step } => i64::from(step),
            Pattern::Irregular => 1,
        };
    pb.add_imm(KR.i, iv_step);
    let bound = i64::from(iters)
        * match pattern {
            Pattern::Strided { step } => i64::from(step),
            Pattern::Irregular => 1,
        };
    pb.br(KR.i, CmpOp::Lt, Operand::Imm(bound), body, exit);
    pb.switch_to(exit);
}

/// Emit a conditional (`a/b`) loop: the choice is data-dependent on `P[i]`.
#[allow(clippy::too_many_arguments)]
fn emit_conditional_loop(
    pb: &mut ProcBuilder,
    first: Pattern,
    second: Pattern,
    a_base: u64,
    p_base: u64,
    elems: u32,
    likelihood: u8,
    frame_traffic: bool,
    line: u32,
) {
    let head = pb.new_block();
    let then_b = pb.new_block();
    let else_b = pb.new_block();
    let latch = pb.new_block();
    let exit = pb.new_block();

    pb.at_line(line);
    pb.mov_imm(KR.i, 0);
    pb.mov_imm(KR.a, a_base as i64);
    pb.mov_imm(KR.p, p_base as i64);
    pb.jmp(head);

    pb.switch_to(head);
    pb.at_line(line + 1);
    // c = P[i]; t = c % 100 — data-dependent condition ("access likelihood").
    pb.load(KR.idx, AddrMode::base_index(KR.p, KR.i, 8, 0));
    pb.mov(KR.t, KR.idx);
    pb.bin(BinOp::Rem, KR.t, Operand::Imm(100));
    pb.br(
        KR.t,
        CmpOp::Lt,
        Operand::Imm(i64::from(likelihood)),
        then_b,
        else_b,
    );

    for (blk, pat, l) in [(then_b, first, line + 2), (else_b, second, line + 3)] {
        pb.switch_to(blk);
        pb.at_line(l);
        match pat {
            Pattern::Strided { step } => {
                // Strided walk keyed to the loop index.
                pb.load(
                    KR.x,
                    AddrMode {
                        base: Some(KR.a),
                        index: Some(KR.i),
                        scale: 8,
                        disp: i64::from(step) * 8,
                    },
                );
            }
            Pattern::Irregular => {
                // Gather through the already-loaded index value.
                pb.load(KR.x, AddrMode::base_index(KR.a, KR.idx, 8, 0));
            }
        }
        if frame_traffic {
            pb.store(KR.x, AddrMode::base_disp(Reg::FP, -8));
            pb.load(KR.t, AddrMode::base_disp(Reg::FP, -8));
        }
        pb.jmp(latch);
    }

    pb.switch_to(latch);
    pb.add_imm(KR.i, 1);
    pb.br(KR.i, CmpOp::Lt, Operand::Imm(i64::from(elems)), head, exit);
    pb.switch_to(exit);
}

/// Generate a complete module for one microbenchmark: a `kernel`
/// procedure with the pattern loops and a `main` procedure repeating it
/// `spec.reps` times.
pub fn generate(spec: &UKernelSpec) -> LoadModule {
    let mut mb = ModuleBuilder::new(spec.name());
    let a_base = mb.alloc_global("A", spec.elems as usize);
    let p_base = mb.alloc_global("P", spec.elems as usize);
    mb.init_global(p_base, &pseudo_perm(spec.elems));

    let frame_traffic = spec.opt == OptLevel::O0;
    let unroll = match spec.opt {
        OptLevel::O0 => 1,
        OptLevel::O3 => 4,
    };

    let mut kb = ProcBuilder::new("kernel", "ubench.c");
    match &spec.compose {
        Compose::Single(p) => {
            emit_pattern_loop(
                &mut kb,
                *p,
                a_base,
                p_base,
                spec.elems,
                unroll,
                frame_traffic,
                10,
            );
        }
        Compose::Serial(ps) => {
            for (k, p) in ps.iter().enumerate() {
                emit_pattern_loop(
                    &mut kb,
                    *p,
                    a_base,
                    p_base,
                    spec.elems,
                    unroll,
                    frame_traffic,
                    10 + 10 * k as u32,
                );
            }
        }
        Compose::Conditional {
            first,
            second,
            likelihood,
        } => {
            emit_conditional_loop(
                &mut kb,
                *first,
                *second,
                a_base,
                p_base,
                spec.elems,
                *likelihood,
                frame_traffic,
                10,
            );
        }
    }
    kb.ret();
    let kernel = mb.add(kb);

    // main: repeat the kernel `reps` times (short-lived hotspots).
    let r = Reg(7);
    let mut main = ProcBuilder::new("main", "ubench.c");
    let body = main.new_block();
    let exit = main.new_block();
    main.at_line(1).mov_imm(r, 0);
    main.jmp(body);
    main.switch_to(body);
    main.call(kernel);
    main.add_imm(r, 1);
    main.br(r, CmpOp::Lt, Operand::Imm(i64::from(spec.reps)), body, exit);
    main.switch_to(exit);
    main.ret();
    mb.add(main);

    mb.finish()
}

/// The standard microbenchmark suite used throughout the evaluation:
/// single patterns, serial (`|`) and conditional (`/`) compositions.
pub fn standard_suite(opt: OptLevel, elems: u32, reps: u32) -> Vec<UKernelSpec> {
    let mk = |compose| UKernelSpec {
        compose,
        elems,
        reps,
        opt,
    };
    vec![
        mk(Compose::Single(Pattern::strided(1))),
        mk(Compose::Single(Pattern::strided(2))),
        mk(Compose::Single(Pattern::strided(8))),
        mk(Compose::Single(Pattern::Irregular)),
        mk(Compose::Serial(vec![
            Pattern::strided(1),
            Pattern::Irregular,
        ])),
        mk(Compose::Serial(vec![
            Pattern::strided(4),
            Pattern::strided(1),
        ])),
        mk(Compose::Conditional {
            first: Pattern::strided(1),
            second: Pattern::Irregular,
            likelihood: 50,
        }),
        mk(Compose::Conditional {
            first: Pattern::strided(2),
            second: Pattern::Irregular,
            likelihood: 90,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::DataflowAnalysis;
    use crate::interp::{Machine, VecSink};

    fn run(spec: &UKernelSpec) -> (LoadModule, crate::interp::ExecStats, VecSink) {
        let m = generate(spec);
        let main = m.find_proc("main").unwrap();
        let mut mach = Machine::new(&m, VecSink::default());
        let stats = mach.run(main, 50_000_000).unwrap();
        let sink = mach.into_sink();
        (m, stats, sink)
    }

    #[test]
    fn names_follow_paper_convention() {
        let s = UKernelSpec {
            compose: Compose::Serial(vec![Pattern::strided(2), Pattern::Irregular]),
            elems: 64,
            reps: 1,
            opt: OptLevel::O3,
        };
        assert_eq!(s.name(), "str2|irr-O3");
        let c = UKernelSpec {
            compose: Compose::Conditional {
                first: Pattern::strided(1),
                second: Pattern::Irregular,
                likelihood: 50,
            },
            elems: 64,
            reps: 1,
            opt: OptLevel::O0,
        };
        assert_eq!(c.name(), "str1/irr-O0");
    }

    #[test]
    fn strided_o3_loads_expected_count() {
        let spec = UKernelSpec {
            compose: Compose::Single(Pattern::strided(2)),
            elems: 256,
            reps: 3,
            opt: OptLevel::O3,
        };
        let (_, stats, sink) = run(&spec);
        // 256/2 = 128 accesses per rep × 3 reps.
        assert_eq!(stats.loads, 128 * 3);
        // Strided addresses step by 16 bytes within a rep.
        let step = sink.loads[1].1 as i64 - sink.loads[0].1 as i64;
        assert_eq!(step, 16);
    }

    #[test]
    fn irregular_hits_whole_array() {
        let spec = UKernelSpec {
            compose: Compose::Single(Pattern::Irregular),
            elems: 128,
            reps: 1,
            opt: OptLevel::O3,
        };
        let (m, stats, sink) = run(&spec);
        // Per element: one index load + one data load.
        assert_eq!(stats.loads, 2 * 128);
        // All data-load addresses fall within A.
        let a = m.data.iter().find(|d| d.label == "A").unwrap();
        let hi = a.base + a.words.len() as u64 * 8;
        let data_loads: Vec<u64> = sink
            .loads
            .iter()
            .map(|l| l.1)
            .filter(|&ad| ad >= a.base && ad < hi)
            .collect();
        assert_eq!(data_loads.len(), 128);
    }

    #[test]
    fn o0_adds_constant_frame_loads() {
        let spec = UKernelSpec {
            compose: Compose::Single(Pattern::strided(1)),
            elems: 64,
            reps: 1,
            opt: OptLevel::O0,
        };
        let (m, stats, _) = run(&spec);
        // One pattern load + one frame reload per iteration → 2×.
        assert_eq!(stats.loads, 2 * 64);
        // The classifier sees both classes.
        let kernel = m.find_proc("kernel").unwrap();
        let df = DataflowAnalysis::analyze(m.proc(kernel));
        let c = df.class_counts();
        assert!(c.constant >= 1, "O0 kernel must contain constant loads");
        assert!(c.strided >= 1);
    }

    #[test]
    fn classifier_agrees_with_generated_patterns() {
        for (compose, want_str, want_irr) in [
            (Compose::Single(Pattern::strided(2)), true, false),
            (Compose::Single(Pattern::Irregular), true, true), // index load is strided
        ] {
            let spec = UKernelSpec {
                compose,
                elems: 64,
                reps: 1,
                opt: OptLevel::O3,
            };
            let m = generate(&spec);
            let kernel = m.find_proc("kernel").unwrap();
            let df = DataflowAnalysis::analyze(m.proc(kernel));
            let c = df.class_counts();
            assert_eq!(c.strided > 0, want_str, "{}", spec.name());
            assert_eq!(c.irregular > 0, want_irr, "{}", spec.name());
        }
    }

    #[test]
    fn conditional_splits_by_likelihood() {
        let spec = UKernelSpec {
            compose: Compose::Conditional {
                first: Pattern::strided(1),
                second: Pattern::Irregular,
                likelihood: 50,
            },
            elems: 1000,
            reps: 1,
            opt: OptLevel::O3,
        };
        let (m, stats, sink) = run(&spec);
        // One condition load per iteration plus one pattern load.
        assert_eq!(stats.loads, 2 * 1000);
        // Roughly half the pattern loads are gathers into A via idx: count
        // loads whose ip belongs to the else block. We approximate by
        // checking both branch blocks executed.
        let kernel = m.find_proc("kernel").unwrap();
        let layout = m.layout();
        let mut per_block = std::collections::HashMap::new();
        for (ip, _, _) in &sink.loads {
            if let Some((p, b, _)) = layout.locate(*ip) {
                if p == kernel {
                    *per_block.entry(b).or_insert(0u64) += 1;
                }
            }
        }
        assert!(per_block.len() >= 3, "head + both branches must load");
    }

    #[test]
    fn serial_composition_runs_both_phases() {
        let spec = UKernelSpec {
            compose: Compose::Serial(vec![Pattern::strided(1), Pattern::Irregular]),
            elems: 64,
            reps: 2,
            opt: OptLevel::O3,
        };
        let (_, stats, _) = run(&spec);
        // Per rep: 64 strided + 2·64 gather loads.
        assert_eq!(stats.loads, 2 * (64 + 128));
    }

    #[test]
    fn standard_suite_all_run() {
        for spec in standard_suite(OptLevel::O3, 128, 2) {
            let (_, stats, _) = run(&spec);
            assert!(stats.loads > 0, "{} executed no loads", spec.name());
        }
    }

    #[test]
    fn pseudo_perm_in_range() {
        let p = pseudo_perm(97);
        assert!(p.iter().all(|&v| v < 97));
        // Spread: at least half the values distinct.
        let distinct: std::collections::HashSet<_> = p.iter().collect();
        assert!(distinct.len() > 48);
    }
}
