//! A compact x64-like ISA with the static structure MemGaze's binary
//! instrumentation needs.
//!
//! The paper's instrumentor (DynInst-based) analyzes each procedure's
//! object code — addressing modes, basic blocks, and data dependencies —
//! to classify loads and select instrumentation points (paper §III). This
//! crate models exactly that information: registers and addressing modes
//! (`[base + index*scale + disp]`), basic blocks and procedures
//! ([`proc`]), load modules with instruction addresses ([`module`]),
//! control-flow analysis (dominators and natural loops, [`cfg`] and
//! [`loops`]), induction-variable/data-dependence analysis ([`dataflow`]),
//! an IR [`builder`], microbenchmark code generation at O0/O3 ([`codegen`]),
//! an interpreter that executes modules and streams load/`ptwrite` events
//! ([`interp`]), a multi-pass IR verifier with typed diagnostics
//! ([`verify`]), and an abstract-interpretation stride domain that serves
//! as a second classification oracle ([`absint`]).

pub mod absint;
pub mod builder;
pub mod cfg;
pub mod codegen;
pub mod dataflow;
pub mod disasm;
pub mod instr;
pub mod interp;
pub mod loops;
pub mod module;
pub mod proc;
pub mod ranges;
pub mod reg;
pub mod summary;
pub mod verify;

pub use absint::{AbsInterp, AbsResult, ModuleAbsInterp};
pub use builder::{ModuleBuilder, ProcBuilder};
pub use cfg::Cfg;
pub use dataflow::{AddrKind, DataflowAnalysis};
pub use instr::{AddrMode, BinOp, CmpOp, Instr, Operand, Terminator};
pub use interp::{EventSink, ExecStats, Machine, NullSink};
pub use loops::{Loop, LoopForest};
pub use module::{DataInit, LoadModule};
pub use proc::{BasicBlock, BlockId, ProcId, Procedure};
pub use ranges::{Interval, RangeAnalysis};
pub use reg::Reg;
pub use summary::{ProcSummaries, ProcSummary};
pub use verify::{verify_module, Diagnostic, LintId, Severity, Site, VerifyError};
