//! Instructions, addressing modes, and block terminators.
//!
//! The two addressing-mode shapes the paper's instrumentor distinguishes
//! (§III-A) are both expressible by [`AddrMode`]:
//!
//! ```text
//! load r_d ← [r_s] + o                 (base + displacement)
//! load r_d ← [r_s1 + r_s2·k] + o       (base + scaled index + displacement)
//! ```
//!
//! `ptwrite`s are inserted for *source registers* (dynamic information);
//! the literals `k` and `o` go to the auxiliary annotation file.

use crate::proc::{BlockId, ProcId};
use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// A memory addressing mode: `[base + index*scale] + disp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrMode {
    /// Base register, if any. Absolute (global) addressing has none.
    pub base: Option<Reg>,
    /// Scaled index register, if any.
    pub index: Option<Reg>,
    /// Scale factor applied to the index register (1, 2, 4, or 8).
    pub scale: u8,
    /// Literal displacement.
    pub disp: i64,
}

impl AddrMode {
    /// `[base] + disp`
    pub fn base_disp(base: Reg, disp: i64) -> AddrMode {
        AddrMode {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[base + index*scale] + disp`
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i64) -> AddrMode {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        AddrMode {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// Absolute addressing of a global: `[disp]`.
    pub fn global(disp: i64) -> AddrMode {
        AddrMode {
            base: None,
            index: None,
            scale: 1,
            disp,
        }
    }

    /// Registers this mode reads (the `ptwrite` sources).
    pub fn source_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Number of source registers (1-source loads cost one `ptwrite`,
    /// 2-source loads two — paper §III-A and Table III).
    pub fn num_sources(&self) -> usize {
        self.base.is_some() as usize + self.index.is_some() as usize
    }

    /// Whether this is scalar frame or global addressing — the *structural*
    /// precondition of the Constant class (paper §III-B): offset-only
    /// addressing relative to the frame pointer or to a global section.
    pub fn is_scalar_frame_or_global(&self) -> bool {
        match (self.base, self.index) {
            (Some(b), None) => b.is_fp() || b.is_sp(),
            (None, None) => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for AddrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                f.write_str(" + ")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 || first {
            if !first {
                f.write_str(" + ")?;
            }
            write!(f, "{:#x}", self.disp)?;
        }
        f.write_str("]")
    }
}

/// A register-or-immediate operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register source.
    Reg(Reg),
    /// An immediate literal.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate, if this operand is one.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(i),
            Operand::Reg(_) => None,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i:#x}"),
        }
    }
}

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Unsigned remainder (0 divisor yields 0, keeping the interpreter total).
    Rem,
}

/// Comparison predicates for compare-and-branch terminators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the predicate on unsigned operands.
    #[inline]
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// A straight-line (non-terminator) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `dst ← [addr]` — a memory load (8-byte word).
    Load {
        /// Destination register.
        dst: Reg,
        /// Effective-address expression.
        addr: AddrMode,
    },
    /// `[addr] ← src` — a memory store (8-byte word).
    Store {
        /// Source register.
        src: Reg,
        /// Effective-address expression.
        addr: AddrMode,
    },
    /// `dst ← imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst ← src` register move.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← dst op rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination (and left) register.
        dst: Reg,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst ← effective_address(addr)` without touching memory.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address expression whose value is computed.
        addr: AddrMode,
    },
    /// Call a procedure (arguments/results pass through registers by
    /// convention).
    Call {
        /// Callee.
        proc: ProcId,
    },
    /// `ptwrite src` — emit the register value as a Processor Tracing
    /// packet. Inserted by the instrumentor; a single instruction with no
    /// architectural side effects, so hardware can mask it entirely.
    Ptwrite {
        /// Register whose value is written to the trace buffer.
        src: Reg,
    },
    /// No operation (padding from rewriting).
    Nop,
}

impl Instr {
    /// The memory addressing mode, if this instruction has one.
    pub fn addr_mode(&self) -> Option<&AddrMode> {
        match self {
            Instr::Load { addr, .. } | Instr::Store { addr, .. } | Instr::Lea { addr, .. } => {
                Some(addr)
            }
            _ => None,
        }
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. })
    }

    /// Whether this is a `ptwrite`.
    pub fn is_ptwrite(&self) -> bool {
        matches!(self, Instr::Ptwrite { .. })
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Load { addr, .. } => addr.source_regs().collect(),
            Instr::Store { src, addr } => {
                let mut v: Vec<Reg> = addr.source_regs().collect();
                v.push(*src);
                v
            }
            Instr::MovImm { .. } => vec![],
            Instr::Mov { src, .. } => vec![*src],
            Instr::Bin { dst, rhs, .. } => {
                let mut v = vec![*dst];
                if let Operand::Reg(r) = rhs {
                    v.push(*r);
                }
                v
            }
            Instr::Lea { addr, .. } => addr.source_regs().collect(),
            Instr::Call { .. } => vec![],
            Instr::Ptwrite { src } => vec![*src],
            Instr::Nop => vec![],
        }
    }

    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Load { dst, .. }
            | Instr::MovImm { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Lea { dst, .. } => Some(*dst),
            _ => None,
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Compare-and-branch: `if lhs op rhs goto taken else goto not_taken`.
    Br {
        /// Left comparison operand (register).
        lhs: Reg,
        /// Predicate.
        op: CmpOp,
        /// Right comparison operand.
        rhs: Operand,
        /// Target when the predicate holds.
        taken: BlockId,
        /// Target otherwise.
        not_taken: BlockId,
    },
    /// Return from the procedure.
    Ret,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(b) => vec![*b],
            Terminator::Br {
                taken, not_taken, ..
            } => {
                if taken == not_taken {
                    vec![*taken]
                } else {
                    vec![*taken, *not_taken]
                }
            }
            Terminator::Ret => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_mode_sources() {
        let m = AddrMode::base_index(Reg::gp(1), Reg::gp(2), 8, 16);
        assert_eq!(m.num_sources(), 2);
        let srcs: Vec<Reg> = m.source_regs().collect();
        assert_eq!(srcs, vec![Reg::gp(1), Reg::gp(2)]);
        assert!(!m.is_scalar_frame_or_global());

        assert!(AddrMode::base_disp(Reg::FP, -8).is_scalar_frame_or_global());
        assert!(AddrMode::global(0x6000).is_scalar_frame_or_global());
        assert!(!AddrMode::base_disp(Reg::gp(0), 0).is_scalar_frame_or_global());
        assert_eq!(AddrMode::global(0x6000).num_sources(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn bad_scale_rejected() {
        AddrMode::base_index(Reg::gp(0), Reg::gp(1), 3, 0);
    }

    #[test]
    fn instr_use_def() {
        let ld = Instr::Load {
            dst: Reg::gp(0),
            addr: AddrMode::base_disp(Reg::gp(1), 0),
        };
        assert_eq!(ld.def(), Some(Reg::gp(0)));
        assert_eq!(ld.uses(), vec![Reg::gp(1)]);
        assert!(ld.is_load());

        let bin = Instr::Bin {
            op: BinOp::Add,
            dst: Reg::gp(2),
            rhs: Operand::Reg(Reg::gp(3)),
        };
        assert_eq!(bin.def(), Some(Reg::gp(2)));
        assert_eq!(bin.uses(), vec![Reg::gp(2), Reg::gp(3)]);

        let ptw = Instr::Ptwrite { src: Reg::gp(5) };
        assert!(ptw.is_ptwrite());
        assert_eq!(ptw.def(), None);
        assert_eq!(ptw.uses(), vec![Reg::gp(5)]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jmp(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(Terminator::Ret.successors(), vec![]);
        let br = Terminator::Br {
            lhs: Reg::gp(0),
            op: CmpOp::Lt,
            rhs: Operand::Imm(10),
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        let self_br = Terminator::Br {
            lhs: Reg::gp(0),
            op: CmpOp::Lt,
            rhs: Operand::Imm(10),
            taken: BlockId(1),
            not_taken: BlockId(1),
        };
        assert_eq!(self_br.successors(), vec![BlockId(1)]);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Eq.eval(7, 7));
        assert!(CmpOp::Ne.eval(7, 8));
    }

    #[test]
    fn display_addr_mode() {
        let m = AddrMode::base_index(Reg::gp(1), Reg::gp(2), 8, 16);
        assert_eq!(m.to_string(), "[r1 + r2*8 + 0x10]");
        assert_eq!(AddrMode::global(0x60).to_string(), "[0x60]");
        assert_eq!(AddrMode::base_disp(Reg::FP, 0).to_string(), "[fp]");
    }
}
