//! Interpreter for load modules.
//!
//! Executes a module on a small machine — 16 registers, sparse paged
//! memory, an implicit call stack — and streams events to an
//! [`EventSink`]: one event per executed load (ip, effective address,
//! load-counter time) and one per executed `ptwrite` (ip, register
//! payload). The Processor-Tracing model consumes the `ptwrite` stream;
//! full-trace validation baselines consume the load stream.

use crate::instr::{AddrMode, BinOp, Instr, Operand, Terminator};
use crate::module::LoadModule;
use crate::proc::{BlockId, ProcId};
use crate::reg::{Reg, NUM_REGS};
use memgaze_model::Ip;
use std::collections::HashMap;

const PAGE_BYTES: u64 = 4096;
const STACK_TOP: u64 = 0x7fff_ffff_f000;
const FRAME_BYTES: u64 = 256;

/// Observer of the executed instruction stream.
pub trait EventSink {
    /// An executed load: instruction address, effective data address, and
    /// the zero-based index of this load in the executed load stream.
    fn on_load(&mut self, ip: Ip, addr: u64, load_time: u64) {
        let _ = (ip, addr, load_time);
    }
    /// An executed `ptwrite`: instruction address, register payload, and
    /// the current load-counter time (loads executed so far).
    fn on_ptwrite(&mut self, ip: Ip, payload: u64, load_time: u64) {
        let _ = (ip, payload, load_time);
    }
    /// An executed store (counted, never traced — MemGaze is load-level).
    fn on_store(&mut self, ip: Ip, addr: u64, load_time: u64) {
        let _ = (ip, addr, load_time);
    }
}

/// Sink that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;
impl EventSink for NullSink {}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed (terminators included).
    pub instrs: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// `ptwrite`s executed.
    pub ptwrites: u64,
}

impl ExecStats {
    /// Ratio of executed `ptwrite`s to non-`ptwrite` instructions — the
    /// overhead predictor of paper Fig. 7 (fourth series).
    pub fn ptwrite_ratio(&self) -> f64 {
        let non_ptw = self.instrs.saturating_sub(self.ptwrites);
        if non_ptw == 0 {
            0.0
        } else {
            self.ptwrites as f64 / non_ptw as f64
        }
    }
}

/// Sparse paged memory.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES as usize]>>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES as usize] {
        self.pages
            .entry(addr / PAGE_BYTES)
            .or_insert_with(|| Box::new([0; PAGE_BYTES as usize]))
    }

    /// Read one byte (unmapped memory reads as zero).
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_BYTES)) {
            Some(p) => p[(addr % PAGE_BYTES) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.page_mut(addr)[(addr % PAGE_BYTES) as usize] = v;
    }

    /// Read a little-endian u64 (byte-wise; alignment not required).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..8 {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        for i in 0..8 {
            self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// Number of resident pages (for memory accounting in tests).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// One call-stack frame: the return continuation.
#[derive(Debug, Clone, Copy)]
struct Frame {
    proc: ProcId,
    block: BlockId,
    /// Index of the *next* instruction to execute on return.
    idx: usize,
    saved_fp: u64,
    saved_sp: u64,
}

/// The interpreter.
pub struct Machine<'m, S: EventSink> {
    module: &'m LoadModule,
    layout: crate::module::ModuleLayout,
    /// Architectural registers.
    pub regs: [u64; NUM_REGS],
    /// Data memory.
    pub mem: Memory,
    sink: S,
    stats: ExecStats,
    call_stack: Vec<Frame>,
}

/// Error from a bounded run.
#[derive(Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget was exhausted before the entry procedure returned.
    StepBudgetExhausted {
        /// Instructions executed when the budget ran out.
        executed: u64,
    },
    /// Call stack exceeded the depth limit.
    StackOverflow,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StepBudgetExhausted { executed } => {
                write!(f, "step budget exhausted after {executed} instructions")
            }
            ExecError::StackOverflow => f.write_str("call stack overflow"),
        }
    }
}

impl std::error::Error for ExecError {}

const MAX_CALL_DEPTH: usize = 1024;

impl<'m, S: EventSink> Machine<'m, S> {
    /// A machine over `module`, with the data image loaded and the stack
    /// set up.
    pub fn new(module: &'m LoadModule, sink: S) -> Machine<'m, S> {
        let mut mem = Memory::new();
        for d in &module.data {
            for (i, w) in d.words.iter().enumerate() {
                if *w != 0 {
                    mem.write_u64(d.base + i as u64 * 8, *w);
                }
            }
        }
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::SP.index()] = STACK_TOP;
        regs[Reg::FP.index()] = STACK_TOP;
        Machine {
            layout: module.layout(),
            module,
            regs,
            mem,
            sink,
            stats: ExecStats::default(),
            call_stack: Vec::new(),
        }
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Consume the machine, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    #[inline]
    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    #[inline]
    fn operand(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(i) => i as u64,
        }
    }

    #[inline]
    fn effective_addr(&self, m: &AddrMode) -> u64 {
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.reg(b));
        }
        if let Some(i) = m.index {
            a = a.wrapping_add(self.reg(i).wrapping_mul(m.scale as u64));
        }
        a
    }

    fn enter_proc(&mut self, proc: ProcId) {
        let sp = self.reg(Reg::SP);
        let new_sp = sp - FRAME_BYTES;
        self.set_reg(Reg::FP, sp);
        self.set_reg(Reg::SP, new_sp);
        let _ = proc;
    }

    /// Run `entry` to completion (its `Ret` at depth 0) under a step
    /// budget.
    pub fn run(&mut self, entry: ProcId, max_instrs: u64) -> Result<ExecStats, ExecError> {
        let mut proc = entry;
        let mut block = self.module.proc(proc).entry;
        let mut idx = 0usize;
        let outer_fp = self.reg(Reg::FP);
        let outer_sp = self.reg(Reg::SP);
        self.enter_proc(proc);

        loop {
            if self.stats.instrs >= max_instrs {
                return Err(ExecError::StepBudgetExhausted {
                    executed: self.stats.instrs,
                });
            }
            let blk = &self.module.procs[proc.index()].blocks[block.index()];
            if idx < blk.instrs.len() {
                let ins = blk.instrs[idx];
                let ip = self.layout.ip_of(proc, block, idx);
                self.stats.instrs += 1;
                match ins {
                    Instr::Load { dst, addr } => {
                        let ea = self.effective_addr(&addr);
                        let t = self.stats.loads;
                        self.sink.on_load(ip, ea, t);
                        self.stats.loads += 1;
                        let v = self.mem.read_u64(ea);
                        self.set_reg(dst, v);
                    }
                    Instr::Store { src, addr } => {
                        let ea = self.effective_addr(&addr);
                        self.sink.on_store(ip, ea, self.stats.loads);
                        self.stats.stores += 1;
                        let v = self.reg(src);
                        self.mem.write_u64(ea, v);
                    }
                    Instr::MovImm { dst, imm } => self.set_reg(dst, imm as u64),
                    Instr::Mov { dst, src } => {
                        let v = self.reg(src);
                        self.set_reg(dst, v)
                    }
                    Instr::Bin { op, dst, rhs } => {
                        let a = self.reg(dst);
                        let b = self.operand(rhs);
                        let v = match op {
                            BinOp::Add => a.wrapping_add(b),
                            BinOp::Sub => a.wrapping_sub(b),
                            BinOp::Mul => a.wrapping_mul(b),
                            BinOp::And => a & b,
                            BinOp::Or => a | b,
                            BinOp::Xor => a ^ b,
                            BinOp::Shl => a.wrapping_shl(b as u32),
                            BinOp::Shr => a.wrapping_shr(b as u32),
                            BinOp::Rem => {
                                if b == 0 {
                                    0
                                } else {
                                    a % b
                                }
                            }
                        };
                        self.set_reg(dst, v);
                    }
                    Instr::Lea { dst, addr } => {
                        let ea = self.effective_addr(&addr);
                        self.set_reg(dst, ea);
                    }
                    Instr::Call { proc: callee } => {
                        if self.call_stack.len() >= MAX_CALL_DEPTH {
                            return Err(ExecError::StackOverflow);
                        }
                        self.call_stack.push(Frame {
                            proc,
                            block,
                            idx: idx + 1,
                            saved_fp: self.reg(Reg::FP),
                            saved_sp: self.reg(Reg::SP),
                        });
                        self.enter_proc(callee);
                        proc = callee;
                        block = self.module.proc(callee).entry;
                        idx = 0;
                        continue;
                    }
                    Instr::Ptwrite { src } => {
                        let v = self.reg(src);
                        self.stats.ptwrites += 1;
                        self.sink.on_ptwrite(ip, v, self.stats.loads);
                    }
                    Instr::Nop => {}
                }
                idx += 1;
            } else {
                // Terminator.
                self.stats.instrs += 1;
                match blk.term {
                    Terminator::Jmp(t) => {
                        block = t;
                        idx = 0;
                    }
                    Terminator::Br {
                        lhs,
                        op,
                        rhs,
                        taken,
                        not_taken,
                    } => {
                        let l = self.reg(lhs);
                        let r = self.operand(rhs);
                        block = if op.eval(l, r) { taken } else { not_taken };
                        idx = 0;
                    }
                    Terminator::Ret => match self.call_stack.pop() {
                        Some(f) => {
                            self.set_reg(Reg::FP, f.saved_fp);
                            self.set_reg(Reg::SP, f.saved_sp);
                            proc = f.proc;
                            block = f.block;
                            idx = f.idx;
                        }
                        None => {
                            self.set_reg(Reg::FP, outer_fp);
                            self.set_reg(Reg::SP, outer_sp);
                            return Ok(self.stats);
                        }
                    },
                }
            }
        }
    }
}

/// Sink recording every load (used by tests and the full-trace baseline).
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Recorded `(ip, effective address, load time)` triples.
    pub loads: Vec<(Ip, u64, u64)>,
    /// Recorded `(ip, payload, load time)` ptwrite triples.
    pub ptwrites: Vec<(Ip, u64, u64)>,
}

impl EventSink for VecSink {
    fn on_load(&mut self, ip: Ip, addr: u64, load_time: u64) {
        self.loads.push((ip, addr, load_time));
    }
    fn on_ptwrite(&mut self, ip: Ip, payload: u64, load_time: u64) {
        self.ptwrites.push((ip, payload, load_time));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, ProcBuilder};
    use crate::instr::{AddrMode, CmpOp, Operand};

    /// sum = Σ A[i] for i in 0..n; returns module and the A base.
    fn sum_module(n: i64) -> (LoadModule, u64) {
        let mut mb = ModuleBuilder::new("sum");
        let a = mb.alloc_global("A", n as usize);
        mb.init_global(a, &(1..=n as u64).collect::<Vec<_>>());

        let (i, base, x, acc) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let mut pb = ProcBuilder::new("sum", "sum.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.mov_imm(i, 0).mov_imm(base, a as i64).mov_imm(acc, 0);
        pb.jmp(body);
        pb.switch_to(body);
        pb.load(x, AddrMode::base_index(base, i, 8, 0));
        pb.bin(BinOp::Add, acc, Operand::Reg(x));
        pb.add_imm(i, 1);
        pb.br(i, CmpOp::Lt, Operand::Imm(n), body, exit);
        pb.switch_to(exit);
        pb.ret();
        mb.add(pb);
        (mb.finish(), a)
    }

    #[test]
    fn sums_an_array() {
        let (m, _a) = sum_module(10);
        let mut mach = Machine::new(&m, VecSink::default());
        let stats = mach.run(ProcId(0), 10_000).unwrap();
        assert_eq!(mach.regs[Reg::gp(3).index()], 55);
        assert_eq!(stats.loads, 10);
        let sink = mach.into_sink();
        assert_eq!(sink.loads.len(), 10);
        // Load times are 0..10 and addresses are strided by 8.
        for (k, (_, addr, t)) in sink.loads.iter().enumerate() {
            assert_eq!(*t, k as u64);
            if k > 0 {
                assert_eq!(addr - sink.loads[k - 1].1, 8);
            }
        }
    }

    #[test]
    fn step_budget_enforced() {
        let (m, _) = sum_module(1000);
        let mut mach = Machine::new(&m, NullSink);
        let err = mach.run(ProcId(0), 100).unwrap_err();
        assert!(matches!(err, ExecError::StepBudgetExhausted { .. }));
    }

    #[test]
    fn calls_and_frames() {
        // leaf: writes fp-8 then reads it back (a Constant load).
        let mut mb = ModuleBuilder::new("calls");
        let v = Reg::gp(0);
        let mut leaf = ProcBuilder::new("leaf", "c.c");
        leaf.mov_imm(v, 7);
        leaf.store(v, AddrMode::base_disp(Reg::FP, -8));
        leaf.load(v, AddrMode::base_disp(Reg::FP, -8));
        leaf.ret();
        let leaf_id = mb.add(leaf);

        let mut main = ProcBuilder::new("main", "c.c");
        main.call(leaf_id);
        main.call(leaf_id);
        main.ret();
        let main_id = mb.add(main);

        let m = mb.finish();
        let mut mach = Machine::new(&m, VecSink::default());
        let stats = mach.run(main_id, 1000).unwrap();
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.stores, 2);
        assert_eq!(mach.regs[Reg::gp(0).index()], 7);
        // FP restored after calls.
        assert_eq!(mach.regs[Reg::FP.index()], STACK_TOP);
        // Both frame accesses hit the same frame slot (same fp both calls).
        let sink = mach.into_sink();
        assert_eq!(sink.loads[0].1, sink.loads[1].1);
    }

    #[test]
    fn ptwrite_events_carry_register_payload() {
        let mut mb = ModuleBuilder::new("ptw");
        let r = Reg::gp(0);
        let mut pb = ProcBuilder::new("f", "f.c");
        pb.mov_imm(r, 0xabcd);
        pb.ptwrite(r);
        pb.ret();
        let id = mb.add(pb);
        let m = mb.finish();
        let mut mach = Machine::new(&m, VecSink::default());
        let stats = mach.run(id, 100).unwrap();
        assert_eq!(stats.ptwrites, 1);
        let sink = mach.into_sink();
        assert_eq!(sink.ptwrites.len(), 1);
        assert_eq!(sink.ptwrites[0].1, 0xabcd);
    }

    #[test]
    fn memory_read_write_roundtrip() {
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 0xdead_beef_cafe_babe);
        assert_eq!(mem.read_u64(0x1000), 0xdead_beef_cafe_babe);
        // Unaligned, page-crossing access.
        mem.write_u64(0x1ffd, 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u64(0x1ffd), 0x0123_4567_89ab_cdef);
        // Unmapped reads as zero.
        assert_eq!(mem.read_u64(0x99_0000), 0);
        assert!(mem.resident_pages() >= 2);
    }

    #[test]
    fn ptwrite_ratio() {
        let s = ExecStats {
            instrs: 110,
            loads: 50,
            stores: 0,
            ptwrites: 10,
        };
        assert!((s.ptwrite_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(ExecStats::default().ptwrite_ratio(), 0.0);
    }
}
