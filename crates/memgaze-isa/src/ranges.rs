//! Value-range (interval) analysis over procedure registers.
//!
//! A whole-procedure forward dataflow pass that tracks, per register, a
//! signed interval `[lo, hi]` guaranteed to contain the register's
//! concrete value at every execution reaching that program point. The
//! intervals power three consumers in the abstract interpreter
//! (DESIGN.md §16):
//!
//! * **masking identities** — `and r, m` / `rem r, n` leave an affine
//!   value unchanged when the proven range already fits the mask, so
//!   wrapped index arithmetic stops decaying to ⊤;
//! * **constant-address instantiation** — a loop-invariant address whose
//!   contributing registers all have point ranges at the loop header can
//!   be resolved to a concrete data address (`const_addr`);
//! * **procedure argument facts** — [`crate::summary::ProcSummaries`]
//!   joins point ranges of `r0..r5` across call sites to seed callee
//!   entry states.
//!
//! Soundness under wrapping arithmetic: the [`Machine`](crate::interp)
//! wraps on overflow, while naive interval arithmetic assumes unbounded
//! integers. Every arithmetic transfer therefore uses *checked* bound
//! computation and widens to ⊤ the moment any bound would overflow — if
//! the interval endpoints stay representable, no in-range concrete value
//! can wrap, so the wrapping execution agrees with the mathematical one.
//!
//! Branch refinement is the other subtlety: [`CmpOp`] evaluates
//! **unsigned** (over `u64`), so an edge constraint like `x <u c` only
//! translates to the signed interval `[0, c-1]` when `c >= 0` — unsigned
//! `<` of a non-negative bound pins the value below `2^63`. Constraints
//! whose unsigned solution set is not a signed interval (e.g. `x >u c`,
//! which includes every negative value) refine nothing.

use crate::cfg::Cfg;
use crate::instr::{BinOp, CmpOp, Instr, Operand, Terminator};
use crate::proc::{BlockId, Procedure};
use crate::reg::{Reg, NUM_REGS};
use crate::summary::ProcSummaries;

/// A signed interval `[lo, hi]`, never empty; `TOP` is `[i64::MIN, i64::MAX]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: i64,
    pub hi: i64,
}

impl Interval {
    /// The full range — no information.
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The single-value interval `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `Some(v)` iff this interval holds exactly one value.
    pub fn as_point(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `self` is entirely contained in `[lo, hi]`.
    pub fn within(self, lo: i64, hi: i64) -> bool {
        self.lo >= lo && self.hi <= hi
    }

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widen `self` toward `next`: any bound that moved jumps to ±∞.
    fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    /// Intersection; `None` if the result would be empty (dead edge).
    fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Checked addition: ⊤ on any bound overflow (wrapping safety).
    fn add(self, other: Interval) -> Interval {
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    fn sub(self, other: Interval) -> Interval {
        match (self.lo.checked_sub(other.hi), self.hi.checked_sub(other.lo)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Checked multiplication via the four corner products.
    fn mul(self, other: Interval) -> Interval {
        let corners = [
            self.lo.checked_mul(other.lo),
            self.lo.checked_mul(other.hi),
            self.hi.checked_mul(other.lo),
            self.hi.checked_mul(other.hi),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for c in corners {
            match c {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => return Interval::TOP,
            }
        }
        Interval { lo, hi }
    }

    /// Refine by the branch constraint `x op c` (unsigned compare) being
    /// `taken`. Returns the constraint interval to meet with, or `None`
    /// when the unsigned solution set is not a signed interval.
    fn constraint(op: CmpOp, c: i64, taken: bool) -> Option<Interval> {
        match (op, taken) {
            // x ==u c — exact either way round.
            (CmpOp::Eq, true) | (CmpOp::Ne, false) => Some(Interval::point(c)),
            // x <u c with c >= 0: unsigned-below a non-negative bound
            // means the value is in [0, c-1] as a signed integer too.
            (CmpOp::Lt, true) | (CmpOp::Ge, false) if c > 0 => Some(Interval { lo: 0, hi: c - 1 }),
            // x <=u c, c >= 0.
            (CmpOp::Le, true) | (CmpOp::Gt, false) if c >= 0 => Some(Interval { lo: 0, hi: c }),
            // x >u c / x >=u c include every negative signed value
            // (top-bit-set u64s), so they refine nothing. Likewise
            // `!=` on the taken side.
            _ => None,
        }
    }
}

/// Per-register intervals at one program point.
pub type RegRanges = [Interval; NUM_REGS];

/// All-⊤ entry state (nothing known about any register).
pub fn top_ranges() -> RegRanges {
    [Interval::TOP; NUM_REGS]
}

fn join_ranges(a: &RegRanges, b: &RegRanges) -> RegRanges {
    let mut out = *a;
    for (o, r) in out.iter_mut().zip(b.iter()) {
        *o = o.join(*r);
    }
    out
}

/// Number of joins a block absorbs before its state is widened.
const WIDEN_AFTER: u32 = 2;

/// Whole-procedure interval analysis results (block-entry states).
pub struct RangeAnalysis {
    ins: Vec<RegRanges>,
}

impl RangeAnalysis {
    /// Run the analysis. `entry` seeds the procedure entry block (use
    /// [`top_ranges`] or summary-derived argument facts); `summaries`,
    /// when present, limits `Call` clobber to the callee's proven
    /// clobber set instead of the conventional `r0..r5`.
    pub fn analyze(
        proc: &Procedure,
        cfg: &Cfg,
        entry: RegRanges,
        summaries: Option<&ProcSummaries>,
    ) -> RangeAnalysis {
        let n = proc.blocks.len();
        let mut ins: Vec<RegRanges> = vec![top_ranges(); n];
        let mut outs: Vec<Option<RegRanges>> = vec![None; n];
        let mut joins: Vec<u32> = vec![0; n];
        ins[cfg.entry().index()] = entry;

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                let bi = b.index();
                let mut inn: Option<RegRanges> = if b == cfg.entry() { Some(entry) } else { None };
                for &p in cfg.preds(b) {
                    let Some(out) = &outs[p.index()] else {
                        continue;
                    };
                    let refined = refine_edge(out, &proc.block(p).term, b);
                    inn = Some(match inn {
                        Some(cur) => join_ranges(&cur, &refined),
                        None => refined,
                    });
                }
                let mut inn = inn.unwrap_or_else(top_ranges);
                if inn != ins[bi] {
                    joins[bi] += 1;
                    if joins[bi] > WIDEN_AFTER {
                        for (cur, prev) in inn.iter_mut().zip(ins[bi].iter()) {
                            *cur = prev.widen(*cur);
                        }
                    }
                    // Widening may have landed back on the stored state;
                    // only a real move re-arms the fixpoint.
                    if inn != ins[bi] {
                        ins[bi] = inn;
                        changed = true;
                    } else {
                        inn = ins[bi];
                    }
                }
                let mut st = inn;
                for instr in &proc.block(b).instrs {
                    step(instr, &mut st, summaries);
                }
                if outs[bi].as_ref() != Some(&st) {
                    outs[bi] = Some(st);
                    changed = true;
                }
            }
        }

        // One descending (narrowing) sweep: recompute each block entry
        // from the stabilized predecessor outs without widening. Every
        // equation still over-approximates the concrete states, so this
        // only sharpens bounds that widening overshot.
        for &b in cfg.rpo() {
            if b == cfg.entry() {
                continue;
            }
            let bi = b.index();
            let mut inn: Option<RegRanges> = None;
            for &p in cfg.preds(b) {
                let Some(out) = &outs[p.index()] else {
                    continue;
                };
                let refined = refine_edge(out, &proc.block(p).term, b);
                inn = Some(match inn {
                    Some(cur) => join_ranges(&cur, &refined),
                    None => refined,
                });
            }
            if let Some(inn) = inn {
                ins[bi] = inn;
                let mut st = inn;
                for instr in &proc.block(b).instrs {
                    step(instr, &mut st, summaries);
                }
                outs[bi] = Some(st);
            }
        }

        RangeAnalysis { ins }
    }

    /// Block-entry intervals for `b`.
    pub fn block_entry(&self, b: BlockId) -> &RegRanges {
        &self.ins[b.index()]
    }
}

/// Apply the edge constraint of `term` (from a predecessor) for the
/// edge landing on `target`.
fn refine_edge(out: &RegRanges, term: &Terminator, target: BlockId) -> RegRanges {
    let mut st = *out;
    if let Terminator::Br {
        lhs,
        op,
        rhs: Operand::Imm(c),
        taken,
        not_taken,
    } = *term
    {
        // Both edges to the same block: the condition proves nothing.
        if taken == not_taken {
            return st;
        }
        let constraint = if target == taken {
            Interval::constraint(op, c, true)
        } else if target == not_taken {
            Interval::constraint(op, c, false)
        } else {
            None
        };
        if let Some(con) = constraint {
            let r = lhs.index();
            // An empty meet means the edge is dead; keep the
            // unrefined state rather than inventing ⊥.
            if let Some(m) = st[r].meet(con) {
                st[r] = m;
            }
        }
    }
    st
}

/// One-instruction transfer; public so the abstract interpreter can walk
/// a block in lockstep with its affine state.
pub fn step(instr: &Instr, st: &mut RegRanges, summaries: Option<&ProcSummaries>) {
    let val = |st: &RegRanges, op: Operand| match op {
        Operand::Reg(r) => st[r.index()],
        Operand::Imm(v) => Interval::point(v),
    };
    match *instr {
        Instr::Load { dst, .. } => st[dst.index()] = Interval::TOP,
        Instr::MovImm { dst, imm } => st[dst.index()] = Interval::point(imm),
        Instr::Mov { dst, src } => st[dst.index()] = st[src.index()],
        Instr::Lea { dst, addr } => {
            let mut v = Interval::point(addr.disp);
            if let Some(b) = addr.base {
                v = v.add(st[b.index()]);
            }
            if let Some(ix) = addr.index {
                v = v.add(st[ix.index()].mul(Interval::point(i64::from(addr.scale))));
            }
            st[dst.index()] = v;
        }
        Instr::Bin { op, dst, rhs } => {
            let l = st[dst.index()];
            let r = val(st, rhs);
            st[dst.index()] = match op {
                BinOp::Add => l.add(r),
                BinOp::Sub => l.sub(r),
                BinOp::Mul => l.mul(r),
                BinOp::And => match rhs {
                    // x & m with m >= 0 lands in [0, m]; if x is already
                    // non-negative the result cannot exceed x either.
                    Operand::Imm(m) if m >= 0 => {
                        let hi = if l.lo >= 0 { m.min(l.hi) } else { m };
                        Interval { lo: 0, hi }
                    }
                    _ => Interval::TOP,
                },
                BinOp::Shl => match r.as_point() {
                    // 1 << 63 is not representable as a positive i64, so
                    // only shifts up to 62 become checked multiplies.
                    Some(k) if (0..=62).contains(&k) => l.mul(Interval::point(1i64 << k)),
                    _ => Interval::TOP,
                },
                BinOp::Shr => match r.as_point() {
                    // Logical shift of a non-negative value matches the
                    // arithmetic shift on its signed bounds.
                    Some(k) if (0..64).contains(&k) && l.lo >= 0 => Interval {
                        lo: l.lo >> k,
                        hi: l.hi >> k,
                    },
                    Some(k) if k >= 64 => Interval::point(0),
                    _ => Interval::TOP,
                },
                BinOp::Rem => match r.as_point() {
                    // Machine semantics: rem by 0 yields 0; the compare
                    // is unsigned, so a positive divisor bounds the
                    // result in [0, n-1] for every operand value.
                    Some(0) => Interval::point(0),
                    Some(n) if n > 0 => {
                        if l.within(0, n - 1) {
                            l
                        } else {
                            Interval { lo: 0, hi: n - 1 }
                        }
                    }
                    _ => Interval::TOP,
                },
                BinOp::Or | BinOp::Xor => Interval::TOP,
            };
        }
        Instr::Call { proc } => {
            let clobbers = summaries.map_or(!0u16, |s| s.get(proc).clobbers);
            for (r, iv) in st.iter_mut().enumerate().take(14) {
                if clobbers & (1 << r) != 0 {
                    *iv = Interval::TOP;
                }
            }
        }
        Instr::Store { .. } | Instr::Ptwrite { .. } | Instr::Nop => {}
    }
    // FP/SP hold machine frame addresses we never bound.
    st[Reg::FP.index()] = Interval::TOP;
    st[Reg::SP.index()] = Interval::TOP;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcBuilder;
    use crate::proc::ProcId;

    fn counted_loop() -> Procedure {
        // r0 = 0; do { r1 = r0 & 7; r0 += 1 } while (r0 < 100)
        let mut pb = ProcBuilder::new("p", "t.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.mov_imm(Reg::gp(0), 0);
        pb.jmp(body);
        pb.switch_to(body);
        pb.mov(Reg::gp(1), Reg::gp(0));
        pb.bin(BinOp::And, Reg::gp(1), Operand::Imm(7));
        pb.add_imm(Reg::gp(0), 1);
        pb.br(Reg::gp(0), CmpOp::Lt, Operand::Imm(100), body, exit);
        pb.switch_to(exit);
        pb.ret();
        pb.finish(ProcId(0))
    }

    #[test]
    fn loop_counter_is_bounded_by_branch_refinement() {
        let p = counted_loop();
        let cfg = Cfg::build(&p);
        let ra = RangeAnalysis::analyze(&p, &cfg, top_ranges(), None);
        let body = ra.block_entry(crate::proc::BlockId(1));
        // Entry to the body: either 0 (preheader) or a back edge where
        // r0 < 100 held, so r0 in [0, 99].
        assert!(body[0].within(0, 99), "r0 at body entry: {:?}", body[0]);
    }

    #[test]
    fn and_mask_bounds_result() {
        let p = counted_loop();
        let cfg = Cfg::build(&p);
        let ra = RangeAnalysis::analyze(&p, &cfg, top_ranges(), None);
        let exit = ra.block_entry(crate::proc::BlockId(2));
        // r1 = r0 & 7 in the body.
        assert!(exit[1].within(0, 7), "r1 at exit: {:?}", exit[1]);
    }

    #[test]
    fn unsigned_greater_refines_nothing() {
        // r0 unconstrained; br r0 > 5 — the taken side includes huge
        // unsigned values that are negative signed, so no refinement.
        let mut pb = ProcBuilder::new("p", "t.c");
        let yes = pb.new_block();
        let no = pb.new_block();
        pb.mov(Reg::gp(1), Reg::gp(0));
        pb.br(Reg::gp(0), CmpOp::Gt, Operand::Imm(5), yes, no);
        pb.switch_to(yes);
        pb.ret();
        pb.switch_to(no);
        pb.ret();
        let p = pb.finish(ProcId(0));
        let cfg = Cfg::build(&p);
        let ra = RangeAnalysis::analyze(&p, &cfg, top_ranges(), None);
        assert_eq!(ra.block_entry(BlockId(1))[0], Interval::TOP);
        // The not-taken side (r0 <=u 5) is a clean signed interval.
        assert!(ra.block_entry(BlockId(2))[0].within(0, 5));
    }

    #[test]
    fn overflowing_add_widens_to_top() {
        let mut pb = ProcBuilder::new("p", "t.c");
        pb.mov_imm(Reg::gp(0), i64::MAX - 1);
        pb.add_imm(Reg::gp(0), 5);
        pb.ret();
        let p = pb.finish(ProcId(0));
        let cfg = Cfg::build(&p);
        let ra = RangeAnalysis::analyze(&p, &cfg, top_ranges(), None);
        let mut st = *ra.block_entry(BlockId(0));
        for i in &p.block(BlockId(0)).instrs {
            step(i, &mut st, None);
        }
        assert_eq!(st[0], Interval::TOP);
    }
}
