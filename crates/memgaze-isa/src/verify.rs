//! IR/module verifier with structured diagnostics.
//!
//! The trace-compression story (paper §III-B, κ in Table III) hinges on
//! the *correctness* of static load classification and rewriting: a load
//! misclassified as Constant is silently dropped from the trace and
//! corrupts every downstream metric. This module is the independent
//! correctness layer: a set of verification passes over [`LoadModule`]s
//! producing typed [`Diagnostic`]s instead of stringly errors —
//!
//! * **structural** — proc/block id density, entry range, terminator and
//!   call targets (the old `validate()` checks, now typed);
//! * **CFG well-formedness** — succ/pred symmetry of the built [`Cfg`],
//!   entry reachability (orphan blocks);
//! * **def-before-use** — a forward must-be-defined dataflow pass over
//!   registers (arguments `r0..r5`, `fp`, and `sp` are defined at entry);
//! * **layout** — `ip_of`↔`locate` round-trip for every instruction,
//!   rejection of inter-procedure padding-gap and unaligned addresses;
//! * **data/symbols** — data-region overlap, code/data range overlap,
//!   `data_break` consistency, symbol-range sanity.
//!
//! The instrumentation-plan and differential-classification lints build on
//! these ids from `memgaze-instrument::lint`.

use crate::cfg::Cfg;
use crate::instr::Instr;
use crate::module::{LoadModule, INSTR_BYTES, PROC_ALIGN};
use crate::proc::{BlockId, ProcId, Procedure};
use crate::reg::{Reg, NUM_REGS};
use memgaze_model::Ip;
use serde::{Deserialize, Serialize};

/// Every lint the verifier, differential pass, and plan checker can emit.
///
/// Ids are stable: mutation tests and CI gates key on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintId {
    // --- structural (V0xx) ---
    /// A procedure's id does not equal its index in the module.
    ProcIdMismatch,
    /// A block's id does not equal its index in the procedure.
    BlockIdMismatch,
    /// The entry block id is out of range.
    EntryOutOfRange,
    /// A terminator targets a block id out of range.
    TermTargetOutOfRange,
    /// A call names a procedure the module does not contain.
    CallTargetMissing,
    // --- CFG (C1xx) ---
    /// A block is unreachable from the procedure entry.
    UnreachableBlock,
    /// Successor/predecessor lists of the built CFG disagree.
    CfgAsymmetry,
    /// A register is read on a path where it was never written.
    UseBeforeDef,
    // --- layout (L2xx) ---
    /// `locate(ip_of(site))` did not return the site.
    LocateRoundTrip,
    /// `locate` resolved an inter-procedure padding-gap address.
    GapAttribution,
    /// `locate` resolved an address not aligned to an instruction.
    UnalignedResolved,
    /// A procedure base is not aligned to `PROC_ALIGN`.
    ProcBaseUnaligned,
    // --- data/symbols (D3xx) ---
    /// Two initialized data regions overlap.
    DataOverlap,
    /// A data region overlaps the module's code address range.
    CodeDataOverlap,
    /// `data_break` lies below the end of an allocated region.
    DataBreakBehind,
    /// Symbol ranges overlap or fail to cover their procedure.
    SymbolRangeBad,
    // --- differential classification (A4xx) ---
    /// Classified Constant, but abstract interpretation proves a nonzero
    /// per-iteration address stride (unsound compression).
    UnsoundConstant,
    /// Classified Strided, but abstract interpretation proves the address
    /// does not follow that class (unsound classification).
    UnsoundStrided,
    /// Both oracles prove a definite stride and the values disagree.
    StrideMismatch,
    /// Abstract interpretation proves a strictly more regular class than
    /// the classifier assigned (lost compression).
    LostCompression,
    // --- instrumentation plan / rewrite (P5xx) ---
    /// A planned load has fewer `ptwrite`s than its source-register count.
    MissingPtwrite,
    /// A load has more `ptwrite`s than its source-register count, or a
    /// non-instrumented load has any.
    DuplicatePtwrite,
    /// A `ptw_map` entry does not point at a `ptwrite` instruction, or a
    /// `ptwrite` instruction has no `ptw_map` entry.
    OrphanPtwrite,
    /// A `ptwrite` group has a bad Base/Index order or `last` marking.
    PtwriteGroupOrder,
    /// Two new instructions map back to the same original instruction.
    RemapNotInjective,
    /// Original-address order is not preserved by the rewrite mapping.
    RemapOrderViolation,
    /// A new instruction has no source-map entry.
    SourceMapMissing,
    /// A source-map entry points at an address outside the original module.
    SourceMapDangling,
    /// Per-block implied-Constant accounting does not reconcile with the
    /// block's load count.
    ImpliedCountMismatch,
    /// An annotation is missing or disagrees with the classification.
    AnnotationMismatch,
    /// `InstrStats` counters disagree with the classification or plan.
    StatsMismatch,
}

impl LintId {
    /// Stable short code, grouped by pass family.
    pub fn code(self) -> &'static str {
        match self {
            LintId::ProcIdMismatch => "V001",
            LintId::BlockIdMismatch => "V002",
            LintId::EntryOutOfRange => "V003",
            LintId::TermTargetOutOfRange => "V004",
            LintId::CallTargetMissing => "V005",
            LintId::UnreachableBlock => "C101",
            LintId::CfgAsymmetry => "C102",
            LintId::UseBeforeDef => "C103",
            LintId::LocateRoundTrip => "L201",
            LintId::GapAttribution => "L202",
            LintId::UnalignedResolved => "L203",
            LintId::ProcBaseUnaligned => "L204",
            LintId::DataOverlap => "D301",
            LintId::CodeDataOverlap => "D302",
            LintId::DataBreakBehind => "D303",
            LintId::SymbolRangeBad => "D304",
            LintId::UnsoundConstant => "A401",
            LintId::UnsoundStrided => "A402",
            LintId::StrideMismatch => "A403",
            LintId::LostCompression => "A404",
            LintId::MissingPtwrite => "P501",
            LintId::DuplicatePtwrite => "P502",
            LintId::OrphanPtwrite => "P503",
            LintId::PtwriteGroupOrder => "P504",
            LintId::RemapNotInjective => "P505",
            LintId::RemapOrderViolation => "P506",
            LintId::SourceMapMissing => "P507",
            LintId::SourceMapDangling => "P508",
            LintId::ImpliedCountMismatch => "P509",
            LintId::AnnotationMismatch => "P510",
            LintId::StatsMismatch => "P511",
        }
    }
}

impl std::fmt::Display for LintId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Diagnostic severity. Errors fail the lint gate; warnings do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory: suspicious but not correctness-breaking.
    Warning,
    /// Correctness violation.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a diagnostic points: module plus optional proc/block/instr/ip.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    /// Module name.
    pub module: String,
    /// Procedure, when the diagnostic is proc-scoped.
    pub proc: Option<ProcId>,
    /// Basic block within the procedure.
    pub block: Option<BlockId>,
    /// Instruction index within the block body.
    pub instr: Option<usize>,
    /// Instruction address, when one is known.
    pub ip: Option<Ip>,
}

impl Site {
    /// A module-scoped site.
    pub fn module(name: &str) -> Site {
        Site {
            module: name.to_string(),
            ..Site::default()
        }
    }

    /// A procedure-scoped site.
    pub fn proc(name: &str, proc: ProcId) -> Site {
        Site {
            proc: Some(proc),
            ..Site::module(name)
        }
    }

    /// An instruction-scoped site.
    pub fn instr(name: &str, proc: ProcId, block: BlockId, instr: usize, ip: Option<Ip>) -> Site {
        Site {
            proc: Some(proc),
            block: Some(block),
            instr: Some(instr),
            ip,
            ..Site::module(name)
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.module)?;
        if let Some(p) = self.proc {
            write!(f, ":{p}")?;
        }
        if let Some(b) = self.block {
            write!(f, ":{b}")?;
        }
        if let Some(i) = self.instr {
            write!(f, "#{i}")?;
        }
        if let Some(ip) = self.ip {
            write!(f, "@{ip}")?;
        }
        Ok(())
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: LintId,
    /// Error or warning.
    pub severity: Severity,
    /// Where.
    pub site: Site,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(lint: LintId, site: Site, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            severity: Severity::Error,
            site,
            message: message.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(lint: LintId, site: Site, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            severity: Severity::Warning,
            site,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.lint, self.site, self.message
        )
    }
}

/// Typed verification failure: the first error-severity diagnostic found.
///
/// Replaces the old `Result<(), String>` contract of
/// [`LoadModule::validate`] / [`Procedure::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifyError(pub Diagnostic);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for VerifyError {}

/// Run the structural pass only and fail on the first error — the typed
/// successor of the old `validate()`.
pub fn check_structure(module: &LoadModule) -> Result<(), VerifyError> {
    let mut diags = Vec::new();
    structural_pass(module, &mut diags);
    match diags.into_iter().find(|d| d.severity == Severity::Error) {
        Some(d) => Err(VerifyError(d)),
        None => Ok(()),
    }
}

/// Structural pass for one procedure (used by [`Procedure::validate`]).
pub fn check_procedure(proc: &Procedure, module_name: &str) -> Result<(), VerifyError> {
    let mut diags = Vec::new();
    proc_structural_pass(proc, module_name, &mut diags);
    match diags.into_iter().find(|d| d.severity == Severity::Error) {
        Some(d) => Err(VerifyError(d)),
        None => Ok(()),
    }
}

/// Run every verifier pass over `module` and collect all diagnostics.
///
/// Structural errors make later passes unsafe (indices may be out of
/// range), so when any structural error is present only the structural
/// diagnostics are returned.
pub fn verify_module(module: &LoadModule) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    structural_pass(module, &mut diags);
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return diags;
    }
    cfg_pass(module, &mut diags);
    def_before_use_pass(module, &mut diags);
    layout_pass(module, &mut diags);
    data_pass(module, &mut diags);
    diags
}

fn proc_structural_pass(p: &Procedure, module: &str, out: &mut Vec<Diagnostic>) {
    if p.entry.index() >= p.blocks.len() {
        out.push(Diagnostic::error(
            LintId::EntryOutOfRange,
            Site::proc(module, p.id),
            format!("{}: entry {} out of range", p.name, p.entry),
        ));
    }
    for (i, b) in p.blocks.iter().enumerate() {
        if b.id.index() != i {
            out.push(Diagnostic::error(
                LintId::BlockIdMismatch,
                Site::proc(module, p.id),
                format!("{}: block {i} has id {}", p.name, b.id),
            ));
        }
        for s in b.term.successors() {
            if s.index() >= p.blocks.len() {
                out.push(Diagnostic::error(
                    LintId::TermTargetOutOfRange,
                    Site::instr(module, p.id, b.id, b.instrs.len(), None),
                    format!("{}: {} targets missing {}", p.name, b.id, s),
                ));
            }
        }
    }
}

fn structural_pass(module: &LoadModule, out: &mut Vec<Diagnostic>) {
    for (i, p) in module.procs.iter().enumerate() {
        if p.id.index() != i {
            out.push(Diagnostic::error(
                LintId::ProcIdMismatch,
                Site::module(&module.name),
                format!("proc {i} has id {}", p.id),
            ));
        }
        proc_structural_pass(p, &module.name, out);
        for b in &p.blocks {
            for (idx, ins) in b.instrs.iter().enumerate() {
                if let Instr::Call { proc } = ins {
                    if proc.index() >= module.procs.len() {
                        out.push(Diagnostic::error(
                            LintId::CallTargetMissing,
                            Site::instr(&module.name, p.id, b.id, idx, None),
                            format!("{}: call to missing {proc}", p.name),
                        ));
                    }
                }
            }
        }
    }
}

fn cfg_pass(module: &LoadModule, out: &mut Vec<Diagnostic>) {
    for p in &module.procs {
        let cfg = Cfg::build(p);
        for b in &p.blocks {
            if !cfg.is_reachable(b.id) {
                out.push(Diagnostic::warning(
                    LintId::UnreachableBlock,
                    Site::proc(&module.name, p.id),
                    format!("{}: {} is unreachable from {}", p.name, b.id, p.entry),
                ));
            }
            // Succ/pred symmetry: every successor edge must appear as the
            // mirror predecessor edge and vice versa. The CFG derives
            // preds from succs, so this is defense in depth against
            // future CFG refactors.
            for &s in cfg.succs(b.id) {
                if !cfg.preds(s).contains(&b.id) {
                    out.push(Diagnostic::error(
                        LintId::CfgAsymmetry,
                        Site::proc(&module.name, p.id),
                        format!("{}: edge {} → {s} missing from preds", p.name, b.id),
                    ));
                }
            }
            for &pr in cfg.preds(b.id) {
                if !cfg.succs(pr).contains(&b.id) {
                    out.push(Diagnostic::error(
                        LintId::CfgAsymmetry,
                        Site::proc(&module.name, p.id),
                        format!("{}: edge {pr} → {} missing from succs", p.name, b.id),
                    ));
                }
            }
        }
    }
}

/// Registers defined at procedure entry: argument/scratch `r0..r5` plus
/// the frame and stack pointers (the calling convention the interpreter
/// and `dataflow.rs` assume).
fn entry_defined() -> u32 {
    let mut set = 0u32;
    for r in 0..6u8 {
        set |= 1 << r;
    }
    set |= 1 << Reg::FP.0;
    set |= 1 << Reg::SP.0;
    set
}

fn def_before_use_pass(module: &LoadModule, out: &mut Vec<Diagnostic>) {
    let layout = module.layout();
    for p in &module.procs {
        let cfg = Cfg::build(p);
        let n = p.blocks.len();
        // Forward must-be-defined analysis: bitset per block of registers
        // definitely written on every path from entry to block entry.
        let all: u32 = if NUM_REGS == 32 {
            u32::MAX
        } else {
            (1u32 << NUM_REGS) - 1
        };
        let mut in_set = vec![all; n];
        let mut out_set = vec![all; n];
        in_set[p.entry.index()] = entry_defined();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                let mut inn = if b == p.entry {
                    entry_defined()
                } else {
                    let mut acc = all;
                    for &pr in cfg.preds(b) {
                        if cfg.is_reachable(pr) {
                            acc &= out_set[pr.index()];
                        }
                    }
                    acc
                };
                if inn != in_set[b.index()] {
                    in_set[b.index()] = inn;
                    changed = true;
                }
                for ins in &p.blocks[b.index()].instrs {
                    if let Some(d) = ins.def() {
                        inn |= 1 << d.0;
                    }
                    if matches!(ins, Instr::Call { .. }) {
                        // Calls define the scratch/result registers.
                        for r in 0..6u8 {
                            inn |= 1 << r;
                        }
                    }
                }
                if inn != out_set[b.index()] {
                    out_set[b.index()] = inn;
                    changed = true;
                }
            }
        }
        // Report uses not covered by a definition.
        for b in &p.blocks {
            if !cfg.is_reachable(b.id) {
                continue;
            }
            let mut defined = in_set[b.id.index()];
            for (idx, ins) in b.instrs.iter().enumerate() {
                for u in ins.uses() {
                    if defined & (1 << u.0) == 0 {
                        out.push(Diagnostic::warning(
                            LintId::UseBeforeDef,
                            Site::instr(
                                &module.name,
                                p.id,
                                b.id,
                                idx,
                                Some(layout.ip_of(p.id, b.id, idx)),
                            ),
                            format!("{}: {u} read before any write reaches it", p.name),
                        ));
                    }
                }
                if let Some(d) = ins.def() {
                    defined |= 1 << d.0;
                }
                if matches!(ins, Instr::Call { .. }) {
                    for r in 0..6u8 {
                        defined |= 1 << r;
                    }
                }
            }
            if let crate::instr::Terminator::Br { lhs, rhs, .. } = b.term {
                let mut regs = vec![lhs];
                if let crate::instr::Operand::Reg(r) = rhs {
                    regs.push(r);
                }
                for u in regs {
                    if defined & (1 << u.0) == 0 {
                        out.push(Diagnostic::warning(
                            LintId::UseBeforeDef,
                            Site::instr(
                                &module.name,
                                p.id,
                                b.id,
                                b.instrs.len(),
                                Some(layout.ip_of(p.id, b.id, b.instrs.len())),
                            ),
                            format!("{}: {u} read by terminator before any write", p.name),
                        ));
                    }
                }
            }
        }
    }
}

fn layout_pass(module: &LoadModule, out: &mut Vec<Diagnostic>) {
    let layout = module.layout();
    for p in &module.procs {
        let base = layout.proc_base(p.id).raw();
        if !base.is_multiple_of(PROC_ALIGN) {
            out.push(Diagnostic::error(
                LintId::ProcBaseUnaligned,
                Site::proc(&module.name, p.id),
                format!("{}: base {base:#x} not {PROC_ALIGN}-byte aligned", p.name),
            ));
        }
        for b in &p.blocks {
            for idx in 0..b.len() {
                let ip = layout.ip_of(p.id, b.id, idx);
                let located = layout.locate(ip);
                if located != Some((p.id, b.id, idx)) {
                    out.push(Diagnostic::error(
                        LintId::LocateRoundTrip,
                        Site::instr(&module.name, p.id, b.id, idx, Some(ip)),
                        format!(
                            "{}: locate({ip}) = {located:?}, expected ({}, {}, {idx})",
                            p.name, p.id, b.id
                        ),
                    ));
                }
                // Off-by-one-byte addresses must not resolve.
                let off = Ip(ip.raw() + 1);
                if layout.locate(off).is_some() {
                    out.push(Diagnostic::error(
                        LintId::UnalignedResolved,
                        Site::instr(&module.name, p.id, b.id, idx, Some(off)),
                        format!("{}: unaligned {off} resolved", p.name),
                    ));
                }
            }
        }
        // Padding-gap addresses between this proc's code end and the next
        // proc's base must resolve to nothing.
        let code_end = layout.proc_end(p.id).raw();
        let next_base = if p.id.index() + 1 < module.procs.len() {
            layout.proc_base(ProcId(p.id.0 + 1)).raw()
        } else {
            code_end
        };
        let mut gap = code_end;
        while gap < next_base {
            if let Some(hit) = layout.locate(Ip(gap)) {
                out.push(Diagnostic::error(
                    LintId::GapAttribution,
                    Site::proc(&module.name, p.id),
                    format!(
                        "padding address {:#x} after {} attributed to {hit:?}",
                        gap, p.name
                    ),
                ));
            }
            gap += INSTR_BYTES;
        }
    }
}

fn data_pass(module: &LoadModule, out: &mut Vec<Diagnostic>) {
    let layout = module.layout();
    let code_lo = module.base_ip;
    let code_hi = code_lo + layout.code_bytes();
    // Sort regions by base to find overlaps in one sweep.
    let mut regions: Vec<(u64, u64, &str)> = module
        .data
        .iter()
        .map(|d| (d.base, d.base + d.words.len() as u64 * 8, d.label.as_str()))
        .collect();
    regions.sort_by_key(|r| r.0);
    for w in regions.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if a.1 > b.0 {
            out.push(Diagnostic::error(
                LintId::DataOverlap,
                Site::module(&module.name),
                format!(
                    "data region '{}' [{:#x},{:#x}) overlaps '{}' [{:#x},{:#x})",
                    a.2, a.0, a.1, b.2, b.0, b.1
                ),
            ));
        }
    }
    for (lo, hi, label) in &regions {
        if *lo < code_hi && code_lo < *hi {
            out.push(Diagnostic::error(
                LintId::CodeDataOverlap,
                Site::module(&module.name),
                format!(
                    "data region '{label}' [{lo:#x},{hi:#x}) overlaps code [{code_lo:#x},{code_hi:#x})"
                ),
            ));
        }
        if *hi > module.data_break {
            out.push(Diagnostic::error(
                LintId::DataBreakBehind,
                Site::module(&module.name),
                format!(
                    "data_break {:#x} below end {hi:#x} of region '{label}'",
                    module.data_break
                ),
            ));
        }
    }
    // Symbol ranges: procedure code ranges must be non-empty, sorted, and
    // mutually disjoint (this is what SymbolTable::add_function asserts;
    // the verifier reports instead of panicking).
    let mut prev_hi = 0u64;
    for p in &module.procs {
        let lo = layout.proc_base(p.id).raw();
        let hi = layout.proc_end(p.id).raw();
        if lo >= hi {
            out.push(Diagnostic::error(
                LintId::SymbolRangeBad,
                Site::proc(&module.name, p.id),
                format!("{}: empty code range [{lo:#x},{hi:#x})", p.name),
            ));
        } else if lo < prev_hi {
            out.push(Diagnostic::error(
                LintId::SymbolRangeBad,
                Site::proc(&module.name, p.id),
                format!("{}: range [{lo:#x},{hi:#x}) overlaps previous", p.name),
            ));
        }
        prev_hi = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, ProcBuilder};
    use crate::instr::{AddrMode, CmpOp, Operand, Terminator};
    use crate::module::DataInit;

    fn clean_module() -> LoadModule {
        let mut mb = ModuleBuilder::new("m");
        let mut pb = ProcBuilder::new("f", "f.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        let (i, x) = (Reg::gp(6), Reg::gp(7));
        pb.mov_imm(i, 0);
        pb.jmp(body);
        pb.switch_to(body);
        pb.load(x, AddrMode::base_disp(Reg::FP, -8));
        pb.add_imm(i, 1);
        pb.br(i, CmpOp::Lt, Operand::Imm(4), body, exit);
        pb.switch_to(exit);
        pb.ret();
        mb.add(pb);
        mb.finish()
    }

    #[test]
    fn clean_module_verifies() {
        let m = clean_module();
        let diags = verify_module(&m);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(check_structure(&m).is_ok());
    }

    #[test]
    fn unreachable_block_is_warned() {
        let mut m = clean_module();
        let p = &mut m.procs[0];
        let orphan = BlockId(p.blocks.len() as u32);
        p.blocks.push(crate::proc::BasicBlock {
            id: orphan,
            instrs: vec![],
            term: Terminator::Ret,
            src_line: 9,
        });
        let diags = verify_module(&m);
        assert!(diags
            .iter()
            .any(|d| d.lint == LintId::UnreachableBlock && d.severity == Severity::Warning));
        // Warnings alone keep the structural contract intact.
        assert!(check_structure(&m).is_ok());
    }

    #[test]
    fn use_before_def_is_flagged() {
        let mut m = clean_module();
        // Read a callee-saved register nothing ever writes.
        m.procs[0].blocks[0].instrs.insert(
            0,
            Instr::Load {
                dst: Reg::gp(8),
                addr: AddrMode::base_disp(Reg::gp(13), 0),
            },
        );
        let diags = verify_module(&m);
        let hit = diags.iter().find(|d| d.lint == LintId::UseBeforeDef);
        assert!(hit.is_some(), "{diags:?}");
        assert!(hit.unwrap().message.contains("r13"));
    }

    #[test]
    fn args_are_defined_at_entry() {
        // Reading r0..r5 at entry models argument passing and is clean.
        let mut mb = ModuleBuilder::new("m");
        let mut pb = ProcBuilder::new("f", "f.c");
        pb.load(Reg::gp(6), AddrMode::base_disp(Reg::gp(0), 0));
        pb.ret();
        mb.add(pb);
        let m = mb.finish();
        assert!(verify_module(&m)
            .iter()
            .all(|d| d.lint != LintId::UseBeforeDef));
    }

    #[test]
    fn data_overlap_detected() {
        let mut m = clean_module();
        m.data.push(DataInit {
            label: "a".into(),
            base: 0x10_0000_0000,
            words: vec![0; 8],
        });
        m.data.push(DataInit {
            label: "b".into(),
            base: 0x10_0000_0020,
            words: vec![0; 8],
        });
        m.data_break = 0x10_0000_1000;
        let diags = verify_module(&m);
        assert!(diags.iter().any(|d| d.lint == LintId::DataOverlap));
    }

    #[test]
    fn code_data_overlap_detected() {
        let mut m = clean_module();
        m.data.push(DataInit {
            label: "bad".into(),
            base: m.base_ip,
            words: vec![0; 2],
        });
        m.data_break = m.base_ip + 0x1000;
        let diags = verify_module(&m);
        assert!(diags.iter().any(|d| d.lint == LintId::CodeDataOverlap));
    }

    #[test]
    fn typed_error_renders() {
        let mut m = clean_module();
        m.procs[0].entry = BlockId(99);
        let err = check_structure(&m).unwrap_err();
        assert_eq!(err.0.lint, LintId::EntryOutOfRange);
        let s = err.to_string();
        assert!(s.contains("V003") && s.contains("entry"), "{s}");
    }
}
