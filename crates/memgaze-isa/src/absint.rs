//! Abstract interpretation of register values: an affine stride domain
//! used as a second, independent classification oracle.
//!
//! [`crate::dataflow`] classifies loads by pattern-matching induction
//! variables (single def site `r ← r ± imm`, one level of derivation).
//! This module proves the same facts a different way: each register is
//! tracked as an **affine form** over the symbolic register values at
//! loop-header entry,
//!
//! ```text
//! v  =  Σ_r  coef[r] · r_H  +  konst
//! ```
//!
//! or ⊤ ("no proof"). A fixpoint over the loop body yields, at each
//! latch, every register's end-of-iteration value in terms of its
//! header-entry value; a register `r` has a **proven per-iteration
//! delta** `d` iff every latch ends with `r = r_H + d` (the unit-coef
//! self-recurrence). A load's address is affine in header values with
//! coefficients `a`, so its per-iteration stride is `Σ_r a_r · d_r` —
//! *proven* exactly when every register with `a_r ≠ 0` has a proven
//! delta.
//!
//! Soundness: ⊤ is contagious (any unmodeled operation, memory load,
//! or call-clobbered scratch register produces ⊤), joins of unequal
//! forms go to ⊤, body blocks entered from outside the loop are
//! pessimized to ⊤, and all arithmetic is wrapping (mod 2⁶⁴), matching
//! the interpreter. The domain therefore never *claims* a stride it
//! cannot prove; disagreements with `dataflow` where this oracle has a
//! proof are real classification bugs (see `memgaze-instrument::lint`).

use crate::cfg::Cfg;
use crate::instr::{AddrMode, BinOp, Instr, Operand};
use crate::loops::{Loop, LoopForest};
use crate::proc::{BlockId, Procedure};
use crate::reg::{Reg, NUM_REGS};
use serde::{Deserialize, Serialize};

/// An abstract register value: affine over loop-header register values,
/// or ⊤ (unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// `Σ coef[r] · r_header + konst`, all arithmetic wrapping.
    Affine {
        /// Coefficient per register.
        coef: [i64; NUM_REGS],
        /// Constant term.
        konst: i64,
    },
    /// No information.
    Top,
}

impl AbsVal {
    fn konst(k: i64) -> AbsVal {
        AbsVal::Affine {
            coef: [0; NUM_REGS],
            konst: k,
        }
    }

    /// The symbolic header-entry value of `r`.
    fn ident(r: Reg) -> AbsVal {
        let mut coef = [0i64; NUM_REGS];
        coef[r.index()] = 1;
        AbsVal::Affine { coef, konst: 0 }
    }

    fn add(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (
                AbsVal::Affine { coef: a, konst: x },
                AbsVal::Affine {
                    coef: mut b,
                    konst: y,
                },
            ) => {
                for (bi, ai) in b.iter_mut().zip(a.iter()) {
                    *bi = bi.wrapping_add(*ai);
                }
                AbsVal::Affine {
                    coef: b,
                    konst: x.wrapping_add(y),
                }
            }
            _ => AbsVal::Top,
        }
    }

    fn scale(self, k: i64) -> AbsVal {
        match self {
            AbsVal::Affine { mut coef, konst } => {
                for c in coef.iter_mut() {
                    *c = c.wrapping_mul(k);
                }
                AbsVal::Affine {
                    coef,
                    konst: konst.wrapping_mul(k),
                }
            }
            AbsVal::Top => AbsVal::Top,
        }
    }

    fn neg(self) -> AbsVal {
        self.scale(-1)
    }

    /// Constant term of a coefficient-free form, if this is one.
    fn as_const(self) -> Option<i64> {
        match self {
            AbsVal::Affine { coef, konst } if coef.iter().all(|&c| c == 0) => Some(konst),
            _ => None,
        }
    }

    /// Flat-lattice join: equal forms survive, anything else is ⊤.
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Top
        }
    }
}

/// Abstract machine state: one value per register.
type State = [AbsVal; NUM_REGS];

fn identity_state() -> State {
    std::array::from_fn(|i| AbsVal::ident(Reg(i as u8)))
}

fn top_state() -> State {
    [AbsVal::Top; NUM_REGS]
}

fn join_states(a: &State, b: &State) -> State {
    std::array::from_fn(|i| a[i].join(b[i]))
}

/// Evaluate an address expression in a state.
fn eval_addr(addr: &AddrMode, st: &State) -> AbsVal {
    let mut v = AbsVal::konst(addr.disp);
    if let Some(b) = addr.base {
        v = v.add(st[b.index()]);
    }
    if let Some(i) = addr.index {
        v = v.add(st[i.index()].scale(addr.scale as i64));
    }
    v
}

/// Transfer one instruction.
fn transfer(ins: &Instr, st: &mut State) {
    match ins {
        Instr::Load { dst, .. } => st[dst.index()] = AbsVal::Top,
        Instr::Store { .. } | Instr::Ptwrite { .. } | Instr::Nop => {}
        Instr::MovImm { dst, imm } => st[dst.index()] = AbsVal::konst(*imm),
        Instr::Mov { dst, src } => st[dst.index()] = st[src.index()],
        Instr::Lea { dst, addr } => st[dst.index()] = eval_addr(addr, st),
        Instr::Bin { op, dst, rhs } => {
            let lhs = st[dst.index()];
            let rhs_val = match rhs {
                Operand::Imm(i) => AbsVal::konst(*i),
                Operand::Reg(r) => st[r.index()],
            };
            st[dst.index()] = match op {
                BinOp::Add => lhs.add(rhs_val),
                BinOp::Sub => lhs.add(rhs_val.neg()),
                BinOp::Mul => match (lhs.as_const(), rhs_val.as_const()) {
                    (_, Some(k)) => lhs.scale(k),
                    (Some(k), _) => rhs_val.scale(k),
                    _ => AbsVal::Top,
                },
                BinOp::Shl => match rhs_val.as_const() {
                    Some(k) if (0..64).contains(&k) => lhs.scale(1i64.wrapping_shl(k as u32)),
                    _ => AbsVal::Top,
                },
                // Bitwise/shift-right/remainder: foldable only when both
                // sides are literal constants; otherwise no affine form.
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shr | BinOp::Rem => {
                    match (lhs.as_const(), rhs_val.as_const()) {
                        (Some(a), Some(b)) => {
                            let (a, b) = (a as u64, b as u64);
                            let v = match op {
                                BinOp::And => a & b,
                                BinOp::Or => a | b,
                                BinOp::Xor => a ^ b,
                                BinOp::Shr => {
                                    if b < 64 {
                                        a >> b
                                    } else {
                                        0
                                    }
                                }
                                BinOp::Rem => {
                                    if b == 0 {
                                        0
                                    } else {
                                        a % b
                                    }
                                }
                                _ => unreachable!(),
                            };
                            AbsVal::konst(v as i64)
                        }
                        _ => AbsVal::Top,
                    }
                }
            };
        }
        Instr::Call { .. } => {
            // Calls clobber the conventional scratch registers r0–r5.
            for v in st.iter_mut().take(6) {
                *v = AbsVal::Top;
            }
        }
    }
}

/// What the abstract interpreter proves about one load's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbsResult {
    /// The address is affine in proven-recurrence registers: its
    /// per-iteration delta in the innermost enclosing loop is exactly
    /// `stride` bytes (0 means the address repeats every iteration).
    Proven {
        /// Per-iteration address delta in bytes.
        stride: i64,
    },
    /// In a loop, but no proof (some contributing register is ⊤ or has
    /// no self-recurrence).
    Unknown,
    /// Not inside any natural loop.
    NoLoop,
}

/// Per-procedure abstract-interpretation results for every load.
#[derive(Debug, Clone)]
pub struct AbsInterp {
    /// `results[block][instr]` is `Some(result)` iff that instruction is
    /// a load.
    results: Vec<Vec<Option<AbsResult>>>,
}

/// Per-loop analysis: block in-states and proven per-register deltas.
struct LoopStates {
    /// Fixpoint in-state per body block (indexed by block id).
    in_states: Vec<Option<State>>,
    /// Proven per-iteration delta per register (`None` = no proof).
    deltas: [Option<i64>; NUM_REGS],
}

fn analyze_loop(proc: &Procedure, cfg: &Cfg, l: &Loop) -> LoopStates {
    let n = proc.blocks.len();
    let mut in_states: Vec<Option<State>> = vec![None; n];
    in_states[l.header.index()] = Some(identity_state());
    // Body blocks entered from outside the loop (other than the header)
    // get no guarantees.
    for &b in &l.body {
        if b != l.header && cfg.preds(b).iter().any(|p| !l.body.contains(p)) {
            in_states[b.index()] = Some(top_state());
        }
    }
    let order: Vec<BlockId> = cfg
        .rpo()
        .iter()
        .copied()
        .filter(|b| l.contains(*b))
        .collect();
    // Flat lattice (unvisited → affine → ⊤) with monotone transfers:
    // the fixpoint terminates in O(body · NUM_REGS) joins.
    let mut out_states: Vec<Option<State>> = vec![None; n];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let inn = if b == l.header {
                identity_state()
            } else if cfg.preds(b).iter().any(|p| !l.body.contains(p)) {
                top_state()
            } else {
                let mut acc: Option<State> = None;
                for &p in cfg.preds(b) {
                    if let Some(ref o) = out_states[p.index()] {
                        acc = Some(match acc {
                            None => *o,
                            Some(a) => join_states(&a, o),
                        });
                    }
                }
                match acc {
                    Some(a) => a,
                    None => continue, // no pred processed yet
                }
            };
            if in_states[b.index()] != Some(inn) {
                in_states[b.index()] = Some(inn);
                changed = true;
            }
            let mut st = inn;
            for ins in &proc.block(b).instrs {
                transfer(ins, &mut st);
            }
            if out_states[b.index()] != Some(st) {
                out_states[b.index()] = Some(st);
                changed = true;
            }
        }
    }
    // A register's delta is proven iff every latch (body block branching
    // back to the header) ends the iteration with the unit-coefficient
    // self-recurrence `r = r_header + d`, with one `d` across latches.
    let mut deltas: [Option<i64>; NUM_REGS] = [None; NUM_REGS];
    let latches: Vec<BlockId> = l
        .body
        .iter()
        .copied()
        .filter(|&b| cfg.succs(b).contains(&l.header))
        .collect();
    for r in 0..NUM_REGS {
        let mut proven: Option<i64> = None;
        let mut ok = !latches.is_empty();
        for &latch in &latches {
            let d = out_states[latch.index()]
                .as_ref()
                .and_then(|st| match st[r] {
                    AbsVal::Affine { coef, konst } => {
                        let unit = coef
                            .iter()
                            .enumerate()
                            .all(|(i, &c)| c == i64::from(i == r));
                        unit.then_some(konst)
                    }
                    AbsVal::Top => None,
                });
            match (d, proven) {
                (Some(d), None) => proven = Some(d),
                (Some(d), Some(p)) if d == p => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            deltas[r] = proven;
        }
    }
    LoopStates { in_states, deltas }
}

impl AbsInterp {
    /// Analyze a procedure.
    pub fn analyze(proc: &Procedure) -> AbsInterp {
        let cfg = Cfg::build(proc);
        let forest = LoopForest::build(proc, &cfg);
        Self::analyze_with(proc, &cfg, &forest)
    }

    /// Analyze with a precomputed CFG and loop forest.
    pub fn analyze_with(proc: &Procedure, cfg: &Cfg, forest: &LoopForest) -> AbsInterp {
        // One fixpoint per loop that is innermost for at least one block.
        let mut per_loop: Vec<Option<LoopStates>> = (0..forest.loops.len()).map(|_| None).collect();
        for b in &proc.blocks {
            if let Some(l) = forest.innermost(b.id) {
                let li = forest
                    .loops
                    .iter()
                    .position(|x| std::ptr::eq(x, l))
                    .expect("loop from forest");
                if per_loop[li].is_none() {
                    per_loop[li] = Some(analyze_loop(proc, cfg, l));
                }
            }
        }

        let mut results = Vec::with_capacity(proc.blocks.len());
        for blk in &proc.blocks {
            let mut row = Vec::with_capacity(blk.instrs.len());
            let states = forest.innermost(blk.id).and_then(|l| {
                let li = forest.loops.iter().position(|x| std::ptr::eq(x, l))?;
                per_loop[li].as_ref()
            });
            match states {
                None => {
                    for ins in &blk.instrs {
                        row.push(ins.is_load().then_some(AbsResult::NoLoop));
                    }
                }
                Some(ls) => {
                    let mut st = match ls.in_states[blk.id.index()] {
                        Some(s) => s,
                        None => top_state(),
                    };
                    for ins in &blk.instrs {
                        let res = if let Instr::Load { addr, .. } = ins {
                            Some(match eval_addr(addr, &st) {
                                AbsVal::Affine { coef, .. } => {
                                    let mut stride = Some(0i64);
                                    for (r, &c) in coef.iter().enumerate() {
                                        if c == 0 {
                                            continue;
                                        }
                                        stride = match (stride, ls.deltas[r]) {
                                            (Some(s), Some(d)) => {
                                                Some(s.wrapping_add(c.wrapping_mul(d)))
                                            }
                                            _ => None,
                                        };
                                    }
                                    match stride {
                                        Some(s) => AbsResult::Proven { stride: s },
                                        None => AbsResult::Unknown,
                                    }
                                }
                                AbsVal::Top => AbsResult::Unknown,
                            })
                        } else {
                            None
                        };
                        row.push(res);
                        transfer(ins, &mut st);
                    }
                }
            }
            results.push(row);
        }
        AbsInterp { results }
    }

    /// The result for the load at `(block, idx)`, or `None` if that
    /// instruction is not a load.
    pub fn load_result(&self, block: BlockId, idx: usize) -> Option<AbsResult> {
        self.results
            .get(block.index())
            .and_then(|row| row.get(idx))
            .copied()
            .flatten()
    }

    /// Collapse a result to a definite load class, when one is proven.
    ///
    /// Applies the same structural rule as `dataflow`: a zero-stride
    /// (loop-invariant) or loop-free address is Constant only for scalar
    /// frame/global addressing, Irregular otherwise. `Unknown` yields
    /// `None` — the oracle declines to classify rather than guess.
    pub fn proven_class(res: AbsResult, addr: &AddrMode) -> Option<memgaze_model::LoadClass> {
        use memgaze_model::LoadClass;
        match res {
            AbsResult::Proven { stride: 0 } | AbsResult::NoLoop => {
                Some(if addr.is_scalar_frame_or_global() {
                    LoadClass::Constant
                } else {
                    LoadClass::Irregular
                })
            }
            AbsResult::Proven { .. } => Some(LoadClass::Strided),
            AbsResult::Unknown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CmpOp, Terminator};
    use crate::proc::{BasicBlock, ProcId};

    fn loop_proc(body_instrs: Vec<Instr>, latch_reg: Reg) -> Procedure {
        Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![
                        Instr::MovImm {
                            dst: Reg::gp(0),
                            imm: 0,
                        },
                        Instr::MovImm {
                            dst: Reg::gp(1),
                            imm: 0x1000,
                        },
                    ],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                BasicBlock {
                    id: BlockId(1),
                    instrs: body_instrs,
                    term: Terminator::Br {
                        lhs: latch_reg,
                        op: CmpOp::Lt,
                        rhs: Operand::Imm(100),
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 3,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        }
    }

    #[test]
    fn proves_index_iv_stride() {
        let (i, a, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, i, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(
            ai.load_result(BlockId(1), 0),
            Some(AbsResult::Proven { stride: 8 })
        );
    }

    #[test]
    fn proves_through_mov_copy() {
        // j ← mov i; load [a + j*8]; i += 1 — the dataflow analysis
        // handles this via derived IVs, the affine domain natively.
        let (i, a, j, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let p = loop_proc(
            vec![
                Instr::Mov { dst: j, src: i },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, j, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(
            ai.load_result(BlockId(1), 1),
            Some(AbsResult::Proven { stride: 8 })
        );
    }

    #[test]
    fn pointer_chase_is_unknown() {
        // x ← load [x]: the loaded value is ⊤, so no claim is made.
        let (i, x, y) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: y,
                    addr: AddrMode::base_disp(x, 0),
                },
                Instr::Mov { dst: x, src: y },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 0), Some(AbsResult::Unknown));
    }

    #[test]
    fn frame_reload_is_invariant_constant() {
        let (i, s) = (Reg::gp(0), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: s,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        let res = ai.load_result(BlockId(1), 0).unwrap();
        assert_eq!(res, AbsResult::Proven { stride: 0 });
        assert_eq!(
            AbsInterp::proven_class(res, &AddrMode::base_disp(Reg::FP, -8)),
            Some(memgaze_model::LoadClass::Constant)
        );
    }

    #[test]
    fn scaled_pointer_bump_proves_wide_stride() {
        // p += 16 via two +8 increments: still one proven recurrence.
        let (i, p_reg, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_disp(p_reg, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: p_reg,
                    rhs: Operand::Imm(8),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: p_reg,
                    rhs: Operand::Imm(8),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        // Two def sites defeat the dataflow IV pattern; the affine domain
        // composes them into one +16 recurrence.
        assert_eq!(
            ai.load_result(BlockId(1), 0),
            Some(AbsResult::Proven { stride: 16 })
        );
        let df = crate::dataflow::DataflowAnalysis::analyze(&p);
        assert_eq!(
            df.load_kind(BlockId(1), 0),
            Some(crate::dataflow::AddrKind::Irregular)
        );
    }

    #[test]
    fn no_loop_loads_are_flagged_no_loop() {
        let p = Procedure {
            id: ProcId(0),
            name: "s".into(),
            blocks: vec![BasicBlock {
                id: BlockId(0),
                instrs: vec![Instr::Load {
                    dst: Reg::gp(0),
                    addr: AddrMode::base_disp(Reg::FP, -16),
                }],
                term: Terminator::Ret,
                src_line: 1,
            }],
            entry: BlockId(0),
            src_file: "s.c".into(),
        };
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(0), 0), Some(AbsResult::NoLoop));
    }

    #[test]
    fn call_clobbers_scratch() {
        // Load through r0 after a call in the loop: no claim.
        let (i, x) = (Reg::gp(6), Reg::gp(7));
        let p = loop_proc(
            vec![
                Instr::Call { proc: ProcId(0) },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_disp(Reg::gp(0), 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 1), Some(AbsResult::Unknown));
    }

    #[test]
    fn conditional_reset_defeats_invariance_claim() {
        // i is reset to 0 on one path: joins drive it to ⊤, so a load
        // indexed by it makes no claim (a naive "invariant" call here
        // would be unsound).
        let (i, a, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![
                        Instr::MovImm { dst: i, imm: 0 },
                        Instr::MovImm {
                            dst: a,
                            imm: 0x1000,
                        },
                    ],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                // header: branch on x to 2 or 3
                BasicBlock {
                    id: BlockId(1),
                    instrs: vec![Instr::Load {
                        dst: x,
                        addr: AddrMode::base_index(a, i, 8, 0),
                    }],
                    term: Terminator::Br {
                        lhs: x,
                        op: CmpOp::Eq,
                        rhs: Operand::Imm(0),
                        taken: BlockId(2),
                        not_taken: BlockId(3),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![Instr::MovImm { dst: i, imm: 0 }],
                    term: Terminator::Jmp(BlockId(4)),
                    src_line: 3,
                },
                BasicBlock {
                    id: BlockId(3),
                    instrs: vec![Instr::Bin {
                        op: BinOp::Add,
                        dst: i,
                        rhs: Operand::Imm(1),
                    }],
                    term: Terminator::Jmp(BlockId(4)),
                    src_line: 4,
                },
                // latch
                BasicBlock {
                    id: BlockId(4),
                    instrs: vec![],
                    term: Terminator::Br {
                        lhs: i,
                        op: CmpOp::Lt,
                        rhs: Operand::Imm(100),
                        taken: BlockId(1),
                        not_taken: BlockId(5),
                    },
                    src_line: 5,
                },
                BasicBlock {
                    id: BlockId(5),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 6,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        };
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 0), Some(AbsResult::Unknown));
    }
}
