//! Abstract interpretation of register values: a layered affine stride
//! domain used as a second, independent classification oracle.
//!
//! [`crate::dataflow`] classifies loads by pattern-matching induction
//! variables (single def site `r ← r ± imm`, one level of derivation).
//! This module proves the same facts a different way: each register is
//! tracked as an **affine form** over symbolic *dimensions* — the
//! register values at loop-header entry plus the contents of tracked
//! frame slots at loop-header entry,
//!
//! ```text
//! v  =  Σ_d  coef[d] · d_H  +  konst
//! ```
//!
//! a **Loaded** taint (the value came from an in-loop memory load that
//! could not be forwarded), or ⊤ ("no proof"). A fixpoint over the loop
//! body yields, at each latch, every dimension's end-of-iteration value
//! in terms of its header-entry value; a dimension `d` has a **proven
//! per-iteration delta** iff every latch ends with the unit-coefficient
//! self-recurrence `d = d_H + δ`. A load address affine in proven
//! dimensions has stride `Σ coef·δ`; an address tainted `Loaded` is
//! **provably irregular** (see the taint argument below).
//!
//! Four layers sharpen the original PR 3 domain (DESIGN.md §16):
//!
//! * **stack-slot forwarding** — stores to `fp`/`sp`-relative slots are
//!   remembered (keyed on the *semantic* address, base register still at
//!   its header value) and forwarded to later loads, so spilled
//!   induction variables at -O0 keep their recurrence. Slots are killed
//!   conservatively: a store with an unresolvable address, a write that
//!   overlaps the slot's 8-byte window, any cross-base frame store, or a
//!   call whose summary cannot prove `!may_store` wipes the facts.
//! * **loop-nest awareness** — every loop in the
//!   [`LoopForest`](crate::loops) is analyzed, and a load proven in its
//!   innermost loop is re-expressed in the parent loop's dimensions at
//!   the inner-loop entry edge, yielding the per-outer-iteration stride
//!   (`outer_stride`) for multi-level recurrences like
//!   `base + k·s_outer + j·s_inner`.
//! * **procedure summaries** — [`crate::summary`] computes, per
//!   procedure, the registers a call may clobber, whether it may store,
//!   and argument constants agreed by every call site. Calls then
//!   clobber only the proven set, and callee analyses start from
//!   caller-proven entry facts.
//! * **value ranges** — [`crate::ranges`] intervals license the masking
//!   identities (`and r, 2^k−1` / `rem r, n` leave an affine value
//!   unchanged when the proven range already fits) and instantiate
//!   loop-invariant addresses to concrete data addresses
//!   (`const_addr`) when every contributing register has a point range
//!   at the loop header.
//!
//! Soundness of the `Loaded` taint: a register holding a `Loaded` value
//! at some point in the loop necessarily has an in-loop definition that
//! is either a `Load` or an operation over another `Loaded` register
//! (`Bin` is two-address, so derivation chains always redefine their
//! destination). The dataflow oracle's induction patterns — a single
//! `r ← r ± imm` def, or a `Mov`/`Lea` over such — can never produce
//! that shape, so every register the taint reaches is classified
//! `Varying` there, and any address using it is `Irregular` for both
//! oracles. `Loaded` therefore *proves* irregularity instead of
//! abstaining, which is what closes the pointer-chase/gather agreement
//! gap.
//!
//! General soundness: ⊤ is contagious, joins of unequal forms go to ⊤,
//! body blocks entered from outside the loop are pessimized to ⊤, and
//! all arithmetic is wrapping (mod 2⁶⁴), matching the interpreter. The
//! domain never claims a stride it cannot prove; disagreements with
//! `dataflow` where this oracle has a proof are real classification
//! bugs (see `memgaze-instrument::lint`).

use crate::cfg::Cfg;
use crate::instr::{AddrMode, BinOp, Instr, Operand};
use crate::loops::LoopForest;
use crate::module::LoadModule;
use crate::proc::{BlockId, ProcId, Procedure};
use crate::ranges::{self, top_ranges, RangeAnalysis, RegRanges};
use crate::reg::{Reg, NUM_REGS};
use crate::summary::ProcSummaries;
use serde::{Deserialize, Serialize};

/// Maximum number of frame slots tracked per loop; stores beyond the
/// cap still get precise overlap kills, they just never forward.
const MAX_SLOTS: usize = 8;
/// Affine dimensions: register header values plus slot header contents.
const NUM_DIMS: usize = NUM_REGS + MAX_SLOTS;

/// An abstract value: affine over loop-header dimensions, tainted by an
/// in-loop load, or ⊤ (unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// `Σ coef[d] · d_header + konst`, all arithmetic wrapping.
    Affine {
        /// Coefficient per dimension (registers, then slots).
        coef: [i64; NUM_DIMS],
        /// Constant term.
        konst: i64,
    },
    /// Derived from an in-loop, non-forwarded memory load — provably
    /// `Varying` under the dataflow oracle (see module docs).
    Loaded,
    /// No information.
    Top,
}

impl AbsVal {
    fn konst(k: i64) -> AbsVal {
        AbsVal::Affine {
            coef: [0; NUM_DIMS],
            konst: k,
        }
    }

    /// The symbolic header-entry value of register `r`.
    fn ident(r: Reg) -> AbsVal {
        let mut coef = [0i64; NUM_DIMS];
        coef[r.index()] = 1;
        AbsVal::Affine { coef, konst: 0 }
    }

    /// The symbolic header-entry content of tracked slot `s`.
    fn slot_ident(s: usize) -> AbsVal {
        let mut coef = [0i64; NUM_DIMS];
        coef[NUM_REGS + s] = 1;
        AbsVal::Affine { coef, konst: 0 }
    }

    fn add(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (
                AbsVal::Affine { coef: a, konst: x },
                AbsVal::Affine {
                    coef: mut b,
                    konst: y,
                },
            ) => {
                for (bi, ai) in b.iter_mut().zip(a.iter()) {
                    *bi = bi.wrapping_add(*ai);
                }
                AbsVal::Affine {
                    coef: b,
                    konst: x.wrapping_add(y),
                }
            }
            (AbsVal::Top, _) | (_, AbsVal::Top) => AbsVal::Top,
            // Loaded + affine / Loaded + Loaded: still load-derived.
            _ => AbsVal::Loaded,
        }
    }

    fn scale(self, k: i64) -> AbsVal {
        match self {
            AbsVal::Affine { mut coef, konst } => {
                for c in coef.iter_mut() {
                    *c = c.wrapping_mul(k);
                }
                AbsVal::Affine {
                    coef,
                    konst: konst.wrapping_mul(k),
                }
            }
            AbsVal::Loaded => AbsVal::Loaded,
            AbsVal::Top => AbsVal::Top,
        }
    }

    fn neg(self) -> AbsVal {
        self.scale(-1)
    }

    /// Constant term of a coefficient-free form, if this is one.
    fn as_const(self) -> Option<i64> {
        match self {
            AbsVal::Affine { coef, konst } if coef.iter().all(|&c| c == 0) => Some(konst),
            _ => None,
        }
    }

    /// Result taint for an operation with no affine model: ⊤ dominates,
    /// otherwise a `Loaded` operand keeps the result load-derived.
    fn taint(self, other: AbsVal) -> AbsVal {
        if self == AbsVal::Top || other == AbsVal::Top {
            AbsVal::Top
        } else if self == AbsVal::Loaded || other == AbsVal::Loaded {
            AbsVal::Loaded
        } else {
            AbsVal::Top
        }
    }

    /// Flat-lattice join: equal forms survive, anything else is ⊤.
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Top
        }
    }
}

/// Abstract machine state: one value per register plus one per tracked
/// frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    regs: [AbsVal; NUM_REGS],
    slots: [AbsVal; MAX_SLOTS],
}

fn identity_state() -> State {
    State {
        regs: std::array::from_fn(|i| AbsVal::ident(Reg(i as u8))),
        slots: std::array::from_fn(AbsVal::slot_ident),
    }
}

fn top_state() -> State {
    State {
        regs: [AbsVal::Top; NUM_REGS],
        slots: [AbsVal::Top; MAX_SLOTS],
    }
}

fn join_states(a: &State, b: &State) -> State {
    State {
        regs: std::array::from_fn(|i| a.regs[i].join(b.regs[i])),
        slots: std::array::from_fn(|i| a.slots[i].join(b.slots[i])),
    }
}

/// Evaluate an address expression in a state.
fn eval_addr(addr: &AddrMode, st: &State) -> AbsVal {
    let mut v = AbsVal::konst(addr.disp);
    if let Some(b) = addr.base {
        v = v.add(st.regs[b.index()]);
    }
    if let Some(i) = addr.index {
        v = v.add(st.regs[i.index()].scale(addr.scale as i64));
    }
    v
}

/// Per-loop analysis context: which frame slots are tracked, and the
/// module facts available.
struct LoopCtx<'a> {
    /// Tracked slot keys `(frame base, disp)`, indexed by slot number.
    slot_keys: Vec<(Reg, i64)>,
    summaries: Option<&'a ProcSummaries>,
}

impl LoopCtx<'_> {
    /// Resolve a memory operand to a frame-slot key: the *semantic*
    /// address must be exactly `base_H + disp` for a frame base still at
    /// its header value (this catches `lea`-computed frame addresses and
    /// rejects any address whose base has been modified).
    fn frame_slot(&self, addr: &AddrMode, st: &State) -> Option<(Reg, i64)> {
        if let AbsVal::Affine { coef, konst } = eval_addr(addr, st) {
            for b in [Reg::FP, Reg::SP] {
                let unit = coef
                    .iter()
                    .enumerate()
                    .all(|(i, &c)| c == i64::from(i == b.index()));
                if unit {
                    return Some((b, konst));
                }
            }
        }
        None
    }

    fn slot_index(&self, key: (Reg, i64)) -> Option<usize> {
        self.slot_keys.iter().position(|&k| k == key)
    }
}

/// Transfer one instruction. `rst`, when present, holds the interval
/// state *before* the instruction (the caller steps it separately).
fn transfer(ins: &Instr, st: &mut State, rst: Option<&RegRanges>, ctx: &LoopCtx) {
    match ins {
        Instr::Load { dst, addr } => {
            let fwd = ctx
                .frame_slot(addr, st)
                .and_then(|key| ctx.slot_index(key))
                .map(|s| st.slots[s]);
            st.regs[dst.index()] = match fwd {
                // A tracked slot with unknown content is still a load.
                Some(AbsVal::Top) | None => AbsVal::Loaded,
                Some(v) => v,
            };
        }
        Instr::Store { src, addr } => match ctx.frame_slot(addr, st) {
            Some((b, d)) => {
                // Precise kill: an 8-byte store at `base_H + d` can only
                // touch same-base slots within 8 bytes; cross-base
                // distances are unknown, so those all die.
                for (s, &(kb, kd)) in ctx.slot_keys.iter().enumerate() {
                    if kb != b || kd.wrapping_sub(d).unsigned_abs() < 8 {
                        st.slots[s] = AbsVal::Top;
                    }
                }
                if let Some(s) = ctx.slot_index((b, d)) {
                    st.slots[s] = st.regs[src.index()];
                }
            }
            // Unresolvable store address: anything may alias.
            None => st.slots = [AbsVal::Top; MAX_SLOTS],
        },
        Instr::Ptwrite { .. } | Instr::Nop => {}
        Instr::MovImm { dst, imm } => st.regs[dst.index()] = AbsVal::konst(*imm),
        Instr::Mov { dst, src } => st.regs[dst.index()] = st.regs[src.index()],
        Instr::Lea { dst, addr } => st.regs[dst.index()] = eval_addr(addr, st),
        Instr::Bin { op, dst, rhs } => {
            let lhs = st.regs[dst.index()];
            let rhs_val = match rhs {
                Operand::Imm(i) => AbsVal::konst(*i),
                Operand::Reg(r) => st.regs[r.index()],
            };
            st.regs[dst.index()] = match op {
                BinOp::Add => lhs.add(rhs_val),
                BinOp::Sub => lhs.add(rhs_val.neg()),
                BinOp::Mul => match (lhs.as_const(), rhs_val.as_const()) {
                    (_, Some(k)) => lhs.scale(k),
                    (Some(k), _) => rhs_val.scale(k),
                    _ => lhs.taint(rhs_val),
                },
                BinOp::Shl => match rhs_val.as_const() {
                    Some(k) if (0..64).contains(&k) => lhs.scale(1i64.wrapping_shl(k as u32)),
                    _ => lhs.taint(rhs_val),
                },
                // Bitwise/shift-right/remainder: foldable when both sides
                // are literal constants; preserved when the proven value
                // range shows the mask/modulus cannot change the value;
                // otherwise only the taint survives.
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shr | BinOp::Rem => {
                    match (lhs.as_const(), rhs_val.as_const()) {
                        (Some(a), Some(b)) => {
                            let (a, b) = (a as u64, b as u64);
                            let v = match op {
                                BinOp::And => a & b,
                                BinOp::Or => a | b,
                                BinOp::Xor => a ^ b,
                                BinOp::Shr => {
                                    if b < 64 {
                                        a >> b
                                    } else {
                                        0
                                    }
                                }
                                BinOp::Rem => {
                                    if b == 0 {
                                        0
                                    } else {
                                        a % b
                                    }
                                }
                                _ => unreachable!(),
                            };
                            AbsVal::konst(v as i64)
                        }
                        _ => {
                            if range_identity(*op, *rhs, rst, dst) {
                                lhs
                            } else {
                                lhs.taint(rhs_val)
                            }
                        }
                    }
                }
            };
        }
        Instr::Call { proc } => match ctx.summaries {
            Some(sums) => {
                let s = sums.get(*proc);
                for r in 0..NUM_REGS.min(14) {
                    if s.clobbers & (1 << r) != 0 {
                        st.regs[r] = AbsVal::Top;
                    }
                }
                if s.may_store {
                    st.slots = [AbsVal::Top; MAX_SLOTS];
                }
            }
            None => {
                // No summary: the conventional scratch set is clobbered
                // and any memory may be written.
                for v in st.regs.iter_mut().take(6) {
                    *v = AbsVal::Top;
                }
                st.slots = [AbsVal::Top; MAX_SLOTS];
            }
        },
    }
}

/// Whether `dst op rhs` provably leaves `dst`'s value unchanged given
/// the interval state before the instruction: `and` with an all-ones
/// low mask covering the proven range, or `rem` by a modulus the proven
/// range never reaches.
fn range_identity(op: BinOp, rhs: Operand, rst: Option<&RegRanges>, dst: &Reg) -> bool {
    let (Some(rst), Operand::Imm(m)) = (rst, rhs) else {
        return false;
    };
    let r = rst[dst.index()];
    match op {
        BinOp::And => m >= 0 && (m as u64).wrapping_add(1).is_power_of_two() && r.within(0, m),
        BinOp::Rem => m > 0 && r.within(0, m - 1),
        _ => false,
    }
}

/// What the abstract interpreter proves about one load's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbsResult {
    /// The address is affine in proven-recurrence dimensions: its
    /// per-iteration delta in the innermost enclosing loop is exactly
    /// `stride` bytes (0 means the address repeats every iteration).
    Proven {
        /// Per-iteration address delta in bytes (innermost loop).
        stride: i64,
        /// Per-iteration delta of the enclosing loop at a fixed inner
        /// position, when the nest proof goes through (informational).
        outer_stride: Option<i64>,
        /// Concrete address, when the form is loop-invariant and every
        /// contributing register has a point range inside the module's
        /// data segment.
        const_addr: Option<i64>,
    },
    /// The address is derived from an in-loop, non-forwarded load
    /// (pointer chase / gather): provably irregular.
    ProvenIrregular,
    /// In a loop, but no proof (some contributing dimension is ⊤ or has
    /// no self-recurrence).
    Unknown,
    /// Not inside any natural loop.
    NoLoop,
}

impl AbsResult {
    /// A plain innermost-loop stride proof with no nest or range facts —
    /// the common case and the test shorthand.
    pub fn strided(stride: i64) -> AbsResult {
        AbsResult::Proven {
            stride,
            outer_stride: None,
            const_addr: None,
        }
    }

    /// The proven innermost stride, if any.
    pub fn stride(self) -> Option<i64> {
        match self {
            AbsResult::Proven { stride, .. } => Some(stride),
            _ => None,
        }
    }
}

/// Per-procedure abstract-interpretation results for every load.
#[derive(Debug, Clone)]
pub struct AbsInterp {
    /// `results[block][instr]` is `Some(result)` iff that instruction is
    /// a load.
    results: Vec<Vec<Option<AbsResult>>>,
}

/// Per-loop analysis: block states and proven per-dimension deltas.
struct LoopStates {
    /// Fixpoint in-state per body block (indexed by block id).
    in_states: Vec<Option<State>>,
    /// Fixpoint out-state per body block.
    out_states: Vec<Option<State>>,
    /// Proven per-iteration delta per dimension (`None` = no proof).
    deltas: [Option<i64>; NUM_DIMS],
    /// Tracked slot keys (dimension `NUM_REGS + s` is `slot_keys[s]`).
    slot_keys: Vec<(Reg, i64)>,
}

fn analyze_loop(
    proc: &Procedure,
    cfg: &Cfg,
    forest: &LoopForest,
    li: usize,
    summaries: Option<&ProcSummaries>,
    ranges: Option<&RangeAnalysis>,
) -> LoopStates {
    let l = &forest.loops[li];
    // Track the first MAX_SLOTS syntactic frame-store targets; semantic
    // resolution at transfer time re-checks that the base register still
    // holds its header value.
    let mut slot_keys: Vec<(Reg, i64)> = Vec::new();
    for &b in &l.body {
        for ins in &proc.block(b).instrs {
            if let Instr::Store { addr, .. } = ins {
                if addr.index.is_none() {
                    if let Some(base) = addr.base {
                        if (base.is_fp() || base.is_sp()) && slot_keys.len() < MAX_SLOTS {
                            let key = (base, addr.disp);
                            if !slot_keys.contains(&key) {
                                slot_keys.push(key);
                            }
                        }
                    }
                }
            }
        }
    }
    let ctx = LoopCtx {
        slot_keys,
        summaries,
    };

    let n = proc.blocks.len();
    let mut in_states: Vec<Option<State>> = vec![None; n];
    in_states[l.header.index()] = Some(identity_state());
    let order: Vec<BlockId> = cfg
        .rpo()
        .iter()
        .copied()
        .filter(|b| l.contains(*b))
        .collect();
    // Flat lattice (unvisited → affine/loaded → ⊤) with monotone
    // transfers: the fixpoint terminates in O(body · NUM_DIMS) joins.
    let mut out_states: Vec<Option<State>> = vec![None; n];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let inn = if b == l.header {
                identity_state()
            } else if cfg.preds(b).iter().any(|p| !l.body.contains(p)) {
                // Body blocks entered from outside the loop get no
                // guarantees.
                top_state()
            } else {
                let mut acc: Option<State> = None;
                for &p in cfg.preds(b) {
                    if let Some(ref o) = out_states[p.index()] {
                        acc = Some(match acc {
                            None => *o,
                            Some(a) => join_states(&a, o),
                        });
                    }
                }
                match acc {
                    Some(a) => a,
                    None => continue, // no pred processed yet
                }
            };
            if in_states[b.index()] != Some(inn) {
                in_states[b.index()] = Some(inn);
                changed = true;
            }
            let mut st = inn;
            let mut rr = ranges.map(|ra| *ra.block_entry(b));
            for ins in &proc.block(b).instrs {
                transfer(ins, &mut st, rr.as_ref(), &ctx);
                if let Some(rr) = rr.as_mut() {
                    ranges::step(ins, rr, summaries);
                }
            }
            if out_states[b.index()] != Some(st) {
                out_states[b.index()] = Some(st);
                changed = true;
            }
        }
    }
    // A dimension's delta is proven iff every latch (body block
    // branching back to the header) ends the iteration with the
    // unit-coefficient self-recurrence `d = d_header + δ`, with one `δ`
    // across latches.
    let latches: Vec<BlockId> = l
        .body
        .iter()
        .copied()
        .filter(|&b| cfg.succs(b).contains(&l.header))
        .collect();
    let dim_val = |st: &State, d: usize| -> AbsVal {
        if d < NUM_REGS {
            st.regs[d]
        } else {
            st.slots[d - NUM_REGS]
        }
    };
    let mut deltas: [Option<i64>; NUM_DIMS] = [None; NUM_DIMS];
    for (d, slot) in deltas.iter_mut().enumerate() {
        let mut proven: Option<i64> = None;
        let mut ok = !latches.is_empty();
        for &latch in &latches {
            let dv = out_states[latch.index()]
                .as_ref()
                .and_then(|st| match dim_val(st, d) {
                    AbsVal::Affine { coef, konst } => {
                        let unit = coef
                            .iter()
                            .enumerate()
                            .all(|(i, &c)| c == i64::from(i == d));
                        unit.then_some(konst)
                    }
                    _ => None,
                });
            match (dv, proven) {
                (Some(x), None) => proven = Some(x),
                (Some(x), Some(p)) if x == p => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            *slot = proven;
        }
    }
    LoopStates {
        in_states,
        out_states,
        deltas,
        slot_keys: ctx.slot_keys,
    }
}

/// Stride of an affine form under a loop's proven deltas: `Σ coef·δ`,
/// `None` if any contributing dimension is unproven.
fn stride_of(coef: &[i64; NUM_DIMS], deltas: &[Option<i64>; NUM_DIMS]) -> Option<i64> {
    let mut stride = 0i64;
    for (d, &c) in coef.iter().enumerate() {
        if c == 0 {
            continue;
        }
        stride = stride.wrapping_add(c.wrapping_mul(deltas[d]?));
    }
    Some(stride)
}

impl AbsInterp {
    /// Analyze a single procedure with no module context (conventional
    /// call clobbers, no argument facts, no data segment).
    pub fn analyze(proc: &Procedure) -> AbsInterp {
        let cfg = Cfg::build(proc);
        let forest = LoopForest::build(proc, &cfg);
        Self::analyze_with(proc, &cfg, &forest)
    }

    /// Analyze with a precomputed CFG and loop forest.
    pub fn analyze_with(proc: &Procedure, cfg: &Cfg, forest: &LoopForest) -> AbsInterp {
        let ranges = RangeAnalysis::analyze(proc, cfg, top_ranges(), None);
        Self::analyze_full(proc, cfg, forest, None, Some(&ranges), None)
    }

    /// The full layered analysis; `ModuleAbsInterp` supplies summaries,
    /// summary-seeded ranges, and the module data segment.
    fn analyze_full(
        proc: &Procedure,
        cfg: &Cfg,
        forest: &LoopForest,
        summaries: Option<&ProcSummaries>,
        ranges: Option<&RangeAnalysis>,
        data_range: Option<(u64, u64)>,
    ) -> AbsInterp {
        // One fixpoint per loop in the forest — parents included, so
        // nest proofs can substitute into the enclosing loop's frame.
        let per_loop: Vec<LoopStates> = (0..forest.loops.len())
            .map(|li| analyze_loop(proc, cfg, forest, li, summaries, ranges))
            .collect();
        let loop_index = |b: BlockId| -> Option<usize> {
            let l = forest.innermost(b)?;
            forest.loops.iter().position(|x| std::ptr::eq(x, l))
        };

        let mut results = Vec::with_capacity(proc.blocks.len());
        for blk in &proc.blocks {
            let mut row = Vec::with_capacity(blk.instrs.len());
            match loop_index(blk.id) {
                None => {
                    for ins in &blk.instrs {
                        row.push(ins.is_load().then_some(AbsResult::NoLoop));
                    }
                }
                Some(li) => {
                    let ls = &per_loop[li];
                    let ctx = LoopCtx {
                        slot_keys: ls.slot_keys.clone(),
                        summaries,
                    };
                    let mut st = match ls.in_states[blk.id.index()] {
                        Some(s) => s,
                        None => top_state(),
                    };
                    let mut rr = ranges.map(|ra| *ra.block_entry(blk.id));
                    for ins in &blk.instrs {
                        let res = if let Instr::Load { addr, .. } = ins {
                            Some(match eval_addr(addr, &st) {
                                AbsVal::Affine { coef, konst } => {
                                    match stride_of(&coef, &ls.deltas) {
                                        Some(stride) => {
                                            let outer_stride = outer_stride(
                                                forest, &per_loop, li, &coef, konst, cfg,
                                            );
                                            let const_addr = (stride == 0)
                                                .then(|| {
                                                    const_addr(
                                                        &coef,
                                                        konst,
                                                        forest.loops[li].header,
                                                        ranges,
                                                        data_range,
                                                    )
                                                })
                                                .flatten();
                                            AbsResult::Proven {
                                                stride,
                                                outer_stride,
                                                const_addr,
                                            }
                                        }
                                        None => AbsResult::Unknown,
                                    }
                                }
                                AbsVal::Loaded => AbsResult::ProvenIrregular,
                                AbsVal::Top => AbsResult::Unknown,
                            })
                        } else {
                            None
                        };
                        row.push(res);
                        transfer(ins, &mut st, rr.as_ref(), &ctx);
                        if let Some(rr) = rr.as_mut() {
                            ranges::step(ins, rr, summaries);
                        }
                    }
                }
            }
            results.push(row);
        }
        AbsInterp { results }
    }

    /// The result for the load at `(block, idx)`, or `None` if that
    /// instruction is not a load.
    pub fn load_result(&self, block: BlockId, idx: usize) -> Option<AbsResult> {
        self.results
            .get(block.index())
            .and_then(|row| row.get(idx))
            .copied()
            .flatten()
    }

    /// Collapse a result to a definite load class, when one is proven.
    ///
    /// Applies the same structural rule as `dataflow` — a zero-stride
    /// (loop-invariant) or loop-free address is Constant only for scalar
    /// frame/global addressing — *unless* the range layer resolved the
    /// invariant address to a concrete data address, which is Constant
    /// regardless of addressing shape. `Unknown` yields `None`: the
    /// oracle declines to classify rather than guess.
    pub fn proven_class(res: AbsResult, addr: &AddrMode) -> Option<memgaze_model::LoadClass> {
        use memgaze_model::LoadClass;
        match res {
            AbsResult::Proven {
                stride: 0,
                const_addr,
                ..
            } => Some(
                if addr.is_scalar_frame_or_global() || const_addr.is_some() {
                    LoadClass::Constant
                } else {
                    LoadClass::Irregular
                },
            ),
            AbsResult::NoLoop => Some(if addr.is_scalar_frame_or_global() {
                LoadClass::Constant
            } else {
                LoadClass::Irregular
            }),
            AbsResult::Proven { .. } => Some(LoadClass::Strided),
            AbsResult::ProvenIrregular => Some(LoadClass::Irregular),
            AbsResult::Unknown => None,
        }
    }
}

/// Re-express a load's affine form in the parent loop's dimensions at
/// the inner-loop entry edge and take its stride under the parent's
/// deltas. Sound because a `Proven` inner result means every
/// contributing dimension advances linearly within the inner loop, so
/// at a fixed inner position the address moves exactly by the entry
/// form's parent-stride per outer iteration.
fn outer_stride(
    forest: &LoopForest,
    per_loop: &[LoopStates],
    li: usize,
    coef: &[i64; NUM_DIMS],
    konst: i64,
    cfg: &Cfg,
) -> Option<i64> {
    let inner = &forest.loops[li];
    let pi = inner.parent?;
    let parent = &forest.loops[pi];
    let ps = &per_loop[pi];
    // Entry state: join of the parent-frame out-states on edges into the
    // inner header from outside the inner loop.
    let mut entry: Option<State> = None;
    for &p in cfg.preds(inner.header) {
        if inner.body.contains(&p) {
            continue;
        }
        let o = if parent.body.contains(&p) {
            ps.out_states[p.index()].unwrap_or_else(top_state)
        } else {
            top_state()
        };
        entry = Some(match entry {
            None => o,
            Some(a) => join_states(&a, &o),
        });
    }
    let entry = entry?;
    // Substitute each inner dimension with its parent-frame value.
    let inner_keys = &per_loop[li].slot_keys;
    let mut acc = AbsVal::konst(konst);
    for (d, &c) in coef.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let v = if d < NUM_REGS {
            entry.regs[d]
        } else {
            let key = inner_keys.get(d - NUM_REGS)?;
            match ps.slot_keys.iter().position(|k| k == key) {
                Some(os) => entry.slots[os],
                None => return None,
            }
        };
        acc = acc.add(v.scale(c));
    }
    match acc {
        AbsVal::Affine { coef, .. } => stride_of(&coef, &ps.deltas),
        _ => None,
    }
}

/// Instantiate a loop-invariant affine address to a concrete value via
/// point ranges at the loop header; accepted only inside the module's
/// data segment.
fn const_addr(
    coef: &[i64; NUM_DIMS],
    konst: i64,
    header: BlockId,
    ranges: Option<&RangeAnalysis>,
    data_range: Option<(u64, u64)>,
) -> Option<i64> {
    let ranges = ranges?;
    let (lo, hi) = data_range?;
    let entry = ranges.block_entry(header);
    let mut addr = konst;
    for (d, &c) in coef.iter().enumerate() {
        if c == 0 {
            continue;
        }
        // Slot dimensions have no interval information.
        if d >= NUM_REGS {
            return None;
        }
        let v = entry[d].as_point()?;
        addr = addr.checked_add(c.checked_mul(v)?)?;
    }
    ((addr as u64) >= lo && (addr as u64) < hi).then_some(addr)
}

/// Module-level analysis: procedure summaries, summary-seeded range
/// analyses, and the full layered abstract interpretation per
/// procedure.
#[derive(Debug, Clone)]
pub struct ModuleAbsInterp {
    summaries: ProcSummaries,
    procs: Vec<AbsInterp>,
}

impl ModuleAbsInterp {
    /// Analyze every procedure of `module` with interprocedural facts.
    pub fn analyze(module: &LoadModule) -> ModuleAbsInterp {
        let summaries = ProcSummaries::compute(module);
        let data_range = module.data_range();
        let procs = module
            .procs
            .iter()
            .map(|p| {
                let cfg = Cfg::build(p);
                let forest = LoopForest::build(p, &cfg);
                let ranges =
                    RangeAnalysis::analyze(p, &cfg, summaries.entry_ranges(p.id), Some(&summaries));
                AbsInterp::analyze_full(
                    p,
                    &cfg,
                    &forest,
                    Some(&summaries),
                    Some(&ranges),
                    data_range,
                )
            })
            .collect();
        ModuleAbsInterp { summaries, procs }
    }

    /// Results for one procedure.
    pub fn proc(&self, id: ProcId) -> &AbsInterp {
        &self.procs[id.index()]
    }

    /// The computed procedure summaries (shared with `dataflow`).
    pub fn summaries(&self) -> &ProcSummaries {
        &self.summaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, ProcBuilder};
    use crate::instr::{CmpOp, Terminator};
    use crate::proc::{BasicBlock, ProcId};

    fn loop_proc(body_instrs: Vec<Instr>, latch_reg: Reg) -> Procedure {
        Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![
                        Instr::MovImm {
                            dst: Reg::gp(0),
                            imm: 0,
                        },
                        Instr::MovImm {
                            dst: Reg::gp(1),
                            imm: 0x1000,
                        },
                    ],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                BasicBlock {
                    id: BlockId(1),
                    instrs: body_instrs,
                    term: Terminator::Br {
                        lhs: latch_reg,
                        op: CmpOp::Lt,
                        rhs: Operand::Imm(100),
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 3,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        }
    }

    #[test]
    fn proves_index_iv_stride() {
        let (i, a, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, i, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 0), Some(AbsResult::strided(8)));
    }

    #[test]
    fn proves_through_mov_copy() {
        // j ← mov i; load [a + j*8]; i += 1 — the dataflow analysis
        // handles this via derived IVs, the affine domain natively.
        let (i, a, j, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let p = loop_proc(
            vec![
                Instr::Mov { dst: j, src: i },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, j, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 1), Some(AbsResult::strided(8)));
    }

    #[test]
    fn pointer_chase_is_unknown() {
        // x ← load [x] at the top of the body: the address is the
        // symbolic header value of x, whose recurrence is load-derived
        // and therefore unproven — the oracle declines to classify.
        let (i, x, y) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: y,
                    addr: AddrMode::base_disp(x, 0),
                },
                Instr::Mov { dst: x, src: y },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 0), Some(AbsResult::Unknown));
    }

    #[test]
    fn gather_index_is_proven_irregular() {
        // idx ← load [p + i*8]; x ← load [a + idx*8]: the second
        // address is tainted by the in-loop index load — a *proof* of
        // irregularity (dataflow necessarily sees Varying too).
        let (i, a, idx, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: idx,
                    addr: AddrMode::base_index(a, i, 8, 0),
                },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, idx, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 0), Some(AbsResult::strided(8)));
        let res = ai.load_result(BlockId(1), 1).unwrap();
        assert_eq!(res, AbsResult::ProvenIrregular);
        assert_eq!(
            AbsInterp::proven_class(res, &AddrMode::base_index(a, idx, 8, 0)),
            Some(memgaze_model::LoadClass::Irregular)
        );
        let df = crate::dataflow::DataflowAnalysis::analyze(&p);
        assert_eq!(
            df.load_kind(BlockId(1), 1),
            Some(crate::dataflow::AddrKind::Irregular)
        );
    }

    #[test]
    fn frame_reload_is_invariant_constant() {
        let (i, s) = (Reg::gp(0), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: s,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        let res = ai.load_result(BlockId(1), 0).unwrap();
        assert_eq!(res, AbsResult::strided(0));
        assert_eq!(
            AbsInterp::proven_class(res, &AddrMode::base_disp(Reg::FP, -8)),
            Some(memgaze_model::LoadClass::Constant)
        );
    }

    #[test]
    fn scaled_pointer_bump_proves_wide_stride() {
        // p += 16 via two +8 increments: still one proven recurrence.
        let (i, p_reg, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_disp(p_reg, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: p_reg,
                    rhs: Operand::Imm(8),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: p_reg,
                    rhs: Operand::Imm(8),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        // Two def sites defeat the dataflow IV pattern; the affine domain
        // composes them into one +16 recurrence.
        assert_eq!(ai.load_result(BlockId(1), 0), Some(AbsResult::strided(16)));
        let df = crate::dataflow::DataflowAnalysis::analyze(&p);
        assert_eq!(
            df.load_kind(BlockId(1), 0),
            Some(crate::dataflow::AddrKind::Irregular)
        );
    }

    #[test]
    fn no_loop_loads_are_flagged_no_loop() {
        let p = Procedure {
            id: ProcId(0),
            name: "s".into(),
            blocks: vec![BasicBlock {
                id: BlockId(0),
                instrs: vec![Instr::Load {
                    dst: Reg::gp(0),
                    addr: AddrMode::base_disp(Reg::FP, -16),
                }],
                term: Terminator::Ret,
                src_line: 1,
            }],
            entry: BlockId(0),
            src_file: "s.c".into(),
        };
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(0), 0), Some(AbsResult::NoLoop));
    }

    #[test]
    fn call_clobbers_scratch() {
        // Load through r0 after a call in the loop: no claim without a
        // summary proving r0 is preserved.
        let (i, x) = (Reg::gp(6), Reg::gp(7));
        let p = loop_proc(
            vec![
                Instr::Call { proc: ProcId(0) },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_disp(Reg::gp(0), 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 1), Some(AbsResult::Unknown));
    }

    #[test]
    fn conditional_reset_defeats_invariance_claim() {
        // i is reset to 0 on one path: joins drive it to ⊤, so a load
        // indexed by it makes no claim (a naive "invariant" call here
        // would be unsound).
        let (i, a, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2));
        let p = Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![
                        Instr::MovImm { dst: i, imm: 0 },
                        Instr::MovImm {
                            dst: a,
                            imm: 0x1000,
                        },
                    ],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                // header: branch on x to 2 or 3
                BasicBlock {
                    id: BlockId(1),
                    instrs: vec![Instr::Load {
                        dst: x,
                        addr: AddrMode::base_index(a, i, 8, 0),
                    }],
                    term: Terminator::Br {
                        lhs: x,
                        op: CmpOp::Eq,
                        rhs: Operand::Imm(0),
                        taken: BlockId(2),
                        not_taken: BlockId(3),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![Instr::MovImm { dst: i, imm: 0 }],
                    term: Terminator::Jmp(BlockId(4)),
                    src_line: 3,
                },
                BasicBlock {
                    id: BlockId(3),
                    instrs: vec![Instr::Bin {
                        op: BinOp::Add,
                        dst: i,
                        rhs: Operand::Imm(1),
                    }],
                    term: Terminator::Jmp(BlockId(4)),
                    src_line: 4,
                },
                // latch
                BasicBlock {
                    id: BlockId(4),
                    instrs: vec![],
                    term: Terminator::Br {
                        lhs: i,
                        op: CmpOp::Lt,
                        rhs: Operand::Imm(100),
                        taken: BlockId(1),
                        not_taken: BlockId(5),
                    },
                    src_line: 5,
                },
                BasicBlock {
                    id: BlockId(5),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 6,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        };
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 0), Some(AbsResult::Unknown));
    }

    #[test]
    fn spilled_iv_forwards_through_frame_slot() {
        // t ← load [fp-8]; load [a + t*8]; t += 1; store t, [fp-8]:
        // slot forwarding turns the spilled counter into a proven +8
        // recurrence; dataflow sees two defs of t and gives Irregular.
        let (i, a, t, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: t,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, t, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: t,
                    rhs: Operand::Imm(1),
                },
                Instr::Store {
                    src: t,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 1), Some(AbsResult::strided(8)));
        let df = crate::dataflow::DataflowAnalysis::analyze(&p);
        assert_eq!(
            df.load_kind(BlockId(1), 1),
            Some(crate::dataflow::AddrKind::Irregular)
        );
    }

    #[test]
    fn unknown_store_kills_slot_forwarding() {
        // Same shape, but a store through a loaded pointer follows the
        // spill: every slot dies, so no stride survives.
        let (i, a, t, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: t,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, t, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: t,
                    rhs: Operand::Imm(1),
                },
                Instr::Store {
                    src: t,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Store {
                    src: t,
                    addr: AddrMode::base_disp(x, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        let res = ai.load_result(BlockId(1), 1).unwrap();
        assert_eq!(res.stride(), None, "killed slot must refute the proof");
    }

    #[test]
    fn adjacent_slot_store_does_not_kill_disjoint_slot() {
        // Stores to [fp-16] are 8 bytes away from [fp-8]: disjoint, so
        // the forwarded fact survives.
        let (i, a, t, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let p = loop_proc(
            vec![
                Instr::Load {
                    dst: t,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Load {
                    dst: x,
                    addr: AddrMode::base_index(a, t, 8, 0),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: t,
                    rhs: Operand::Imm(1),
                },
                Instr::Store {
                    src: t,
                    addr: AddrMode::base_disp(Reg::FP, -8),
                },
                Instr::Store {
                    src: i,
                    addr: AddrMode::base_disp(Reg::FP, -16),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: i,
                    rhs: Operand::Imm(1),
                },
            ],
            i,
        );
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 1), Some(AbsResult::strided(8)));
        // An overlapping store (4 bytes off) must kill it.
        let mut instrs = p.blocks[1].instrs.clone();
        instrs[4] = Instr::Store {
            src: i,
            addr: AddrMode::base_disp(Reg::FP, -12),
        };
        let p2 = loop_proc(instrs, i);
        let ai2 = AbsInterp::analyze(&p2);
        assert_eq!(ai2.load_result(BlockId(1), 1).unwrap().stride(), None);
    }

    #[test]
    fn nested_loops_prove_outer_stride() {
        // for k { a = base + k*400; for j { load [a + j*8] } }
        let (k, a, j, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let base = Reg::gp(4);
        let mut pb = ProcBuilder::new("nest", "t.c");
        let outer = pb.new_block();
        let inner = pb.new_block();
        let outer_latch = pb.new_block();
        let exit = pb.new_block();
        pb.mov_imm(k, 0);
        pb.mov_imm(base, 0x1000);
        pb.jmp(outer);
        pb.switch_to(outer);
        pb.mov(a, base);
        pb.mov(x, k);
        pb.bin(BinOp::Mul, x, Operand::Imm(400));
        pb.bin(BinOp::Add, a, Operand::Reg(x));
        pb.mov_imm(j, 0);
        pb.jmp(inner);
        pb.switch_to(inner);
        pb.load(x, AddrMode::base_index(a, j, 8, 0));
        pb.add_imm(j, 1);
        pb.br(j, CmpOp::Lt, Operand::Imm(50), inner, outer_latch);
        pb.switch_to(outer_latch);
        pb.add_imm(k, 1);
        pb.br(k, CmpOp::Lt, Operand::Imm(100), outer, exit);
        pb.switch_to(exit);
        pb.ret();
        let p = pb.finish(ProcId(0));
        let ai = AbsInterp::analyze(&p);
        // Entry block is 0, outer header 1, inner body 2.
        let res = ai.load_result(BlockId(2), 0).unwrap();
        assert_eq!(
            res,
            AbsResult::Proven {
                stride: 8,
                outer_stride: Some(400),
                const_addr: None,
            }
        );
    }

    #[test]
    fn masked_index_proves_stride_via_ranges() {
        // j ← mov i; j &= 511; load [a + j*8]; i += 1 with i < 512:
        // the range analysis proves i in [0, 511], so the mask is an
        // identity and the stride survives.
        let (i, a, j, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
        let mut pb = ProcBuilder::new("mask", "t.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.mov_imm(i, 0);
        pb.mov_imm(a, 0x1000);
        pb.jmp(body);
        pb.switch_to(body);
        pb.mov(j, i);
        pb.bin(BinOp::And, j, Operand::Imm(511));
        pb.load(x, AddrMode::base_index(a, j, 8, 0));
        pb.add_imm(i, 1);
        pb.br(i, CmpOp::Lt, Operand::Imm(512), body, exit);
        pb.switch_to(exit);
        pb.ret();
        let p = pb.finish(ProcId(0));
        let ai = AbsInterp::analyze(&p);
        assert_eq!(ai.load_result(BlockId(1), 2), Some(AbsResult::strided(8)));
        // With a mask smaller than the trip bound the identity fails and
        // the domain must decline (the index genuinely wraps).
        let mut pb2 = ProcBuilder::new("mask2", "t.c");
        let body = pb2.new_block();
        let exit = pb2.new_block();
        pb2.mov_imm(i, 0);
        pb2.mov_imm(a, 0x1000);
        pb2.jmp(body);
        pb2.switch_to(body);
        pb2.mov(j, i);
        pb2.bin(BinOp::And, j, Operand::Imm(255));
        pb2.load(x, AddrMode::base_index(a, j, 8, 0));
        pb2.add_imm(i, 1);
        pb2.br(i, CmpOp::Lt, Operand::Imm(512), body, exit);
        pb2.switch_to(exit);
        pb2.ret();
        let p2 = pb2.finish(ProcId(0));
        let ai2 = AbsInterp::analyze(&p2);
        assert_eq!(ai2.load_result(BlockId(1), 2), Some(AbsResult::Unknown));
    }

    #[test]
    fn summary_preserves_slots_across_pure_calls() {
        // The spilled-IV loop calls a pure leaf each iteration: with a
        // module summary proving the leaf neither stores nor clobbers t,
        // the forwarded stride survives; a storing leaf refutes it.
        fn build(leaf_stores: bool) -> LoadModule {
            let mut mb = ModuleBuilder::new(if leaf_stores { "impure" } else { "pure" });
            mb.alloc_global("data", 64);
            let leaf_id = mb.next_proc_id();
            let mut leaf = ProcBuilder::new("leaf", "t.c");
            leaf.mov_imm(Reg::gp(9), 7);
            if leaf_stores {
                leaf.store(Reg::gp(9), AddrMode::base_disp(Reg::FP, -8));
            }
            leaf.ret();
            mb.add(leaf);

            let (i, a, t, x) = (Reg::gp(0), Reg::gp(1), Reg::gp(2), Reg::gp(3));
            let mut kb = ProcBuilder::new("kern", "t.c");
            let body = kb.new_block();
            let exit = kb.new_block();
            kb.mov_imm(i, 0);
            kb.mov_imm(a, 0x1000);
            kb.mov_imm(t, 0);
            kb.store(t, AddrMode::base_disp(Reg::FP, -8));
            kb.jmp(body);
            kb.switch_to(body);
            kb.load(t, AddrMode::base_disp(Reg::FP, -8));
            kb.load(x, AddrMode::base_index(a, t, 8, 0));
            kb.add_imm(t, 1);
            kb.store(t, AddrMode::base_disp(Reg::FP, -8));
            kb.call(leaf_id);
            kb.add_imm(i, 1);
            kb.br(i, CmpOp::Lt, Operand::Imm(100), body, exit);
            kb.switch_to(exit);
            kb.ret();
            mb.add(kb);
            mb.finish()
        }

        let pure = ModuleAbsInterp::analyze(&build(false));
        let res = pure.proc(ProcId(1)).load_result(BlockId(1), 1).unwrap();
        assert_eq!(res.stride(), Some(8), "pure call must preserve the slot");

        let impure = ModuleAbsInterp::analyze(&build(true));
        let res = impure.proc(ProcId(1)).load_result(BlockId(1), 1).unwrap();
        assert_eq!(res.stride(), None, "storing callee must kill the slot");
    }

    #[test]
    fn arg_const_resolves_invariant_address_to_data_constant() {
        // main passes the same global pointer at every call site; the
        // leaf's loop-invariant load through it resolves to a concrete
        // data address and classifies Constant despite the register
        // base.
        let mut mb = ModuleBuilder::new("argconst");
        let g = mb.alloc_global("g", 8);
        let leaf_id = mb.next_proc_id();
        let (i, x) = (Reg::gp(6), Reg::gp(7));
        let mut leaf = ProcBuilder::new("leaf", "t.c");
        let body = leaf.new_block();
        let exit = leaf.new_block();
        leaf.mov_imm(i, 0);
        leaf.jmp(body);
        leaf.switch_to(body);
        leaf.load(x, AddrMode::base_disp(Reg::gp(0), 0));
        leaf.add_imm(i, 1);
        leaf.br(i, CmpOp::Lt, Operand::Imm(100), body, exit);
        leaf.switch_to(exit);
        leaf.ret();
        mb.add(leaf);
        let mut main = ProcBuilder::new("main", "t.c");
        main.mov_imm(Reg::gp(0), g as i64);
        main.call(leaf_id);
        main.mov_imm(Reg::gp(0), g as i64);
        main.call(leaf_id);
        main.ret();
        mb.add(main);
        let m = mb.finish();

        let mai = ModuleAbsInterp::analyze(&m);
        let res = mai.proc(ProcId(0)).load_result(BlockId(1), 0).unwrap();
        assert_eq!(
            res,
            AbsResult::Proven {
                stride: 0,
                outer_stride: None,
                const_addr: Some(g as i64),
            }
        );
        assert_eq!(
            AbsInterp::proven_class(res, &AddrMode::base_disp(Reg::gp(0), 0)),
            Some(memgaze_model::LoadClass::Constant)
        );
    }
}
