//! Data-dependence analysis for load classification (paper §III-B).
//!
//! "To analyze access patterns, the instrumentor analyzes data
//! dependencies for each procedure's object code. From data dependencies,
//! the instrumentor classifies each load" into three classes:
//!
//! * **Constant** — scalar loads relative to a frame pointer or global
//!   section;
//! * **Strided** — relative to a loop induction variable with constant
//!   stride;
//! * **Irregular** — all other loads (typically indirect through pointers).
//!
//! This module finds basic and (one level of) derived induction variables
//! per natural loop, determines loop invariance from def sites, and
//! classifies every load's effective address.

use crate::cfg::Cfg;
use crate::instr::{AddrMode, BinOp, Instr};
use crate::loops::{Loop, LoopForest};
use crate::proc::{BlockId, Procedure};
use crate::reg::{Reg, NUM_REGS};
use crate::summary::ProcSummaries;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Static kind of a load's effective address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddrKind {
    /// Scalar frame-pointer- or global-relative address.
    Constant,
    /// Affine in a loop induction variable.
    Strided {
        /// Address step per loop iteration, in bytes.
        stride: i64,
    },
    /// Anything else (pointer-dependent, multiple variant sources, …).
    Irregular,
}

impl AddrKind {
    /// Collapse to the trace-model load class.
    pub fn to_load_class(self) -> memgaze_model::LoadClass {
        match self {
            AddrKind::Constant => memgaze_model::LoadClass::Constant,
            AddrKind::Strided { .. } => memgaze_model::LoadClass::Strided,
            AddrKind::Irregular => memgaze_model::LoadClass::Irregular,
        }
    }
}

/// How a register behaves with respect to a given loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Component {
    /// Induction variable with the given per-iteration step.
    Iv(i64),
    /// Not redefined inside the loop.
    Invariant,
    /// Redefined in a way we cannot summarize.
    Varying,
}

/// Per-procedure classification of every load.
#[derive(Debug, Clone)]
pub struct DataflowAnalysis {
    /// `kinds[block][instr]` is `Some(kind)` iff that instruction is a load.
    kinds: Vec<Vec<Option<AddrKind>>>,
}

/// Def sites of each register within a region of blocks.
///
/// With procedure summaries, a call only pseudo-defines the registers the
/// callee (transitively) writes; without them, it conservatively clobbers
/// the conventional scratch registers r0–r5.
fn def_sites(
    proc: &Procedure,
    body: impl Iterator<Item = BlockId>,
    summaries: Option<&ProcSummaries>,
) -> Vec<Vec<(BlockId, usize)>> {
    let mut defs: Vec<Vec<(BlockId, usize)>> = vec![Vec::new(); NUM_REGS];
    for b in body {
        let blk = proc.block(b);
        for (i, ins) in blk.instrs.iter().enumerate() {
            if let Some(d) = ins.def() {
                defs[d.index()].push((b, i));
            }
            if let Instr::Call { proc: callee } = ins {
                for (r, d) in defs.iter_mut().enumerate() {
                    let clobbered = match summaries {
                        Some(s) => s.get(*callee).clobbers_reg(Reg(r as u8)),
                        None => r < 6,
                    };
                    if clobbered {
                        d.push((b, i));
                    }
                }
            }
        }
    }
    defs
}

/// Find basic induction variables of a loop: registers whose only def in
/// the loop body is `r ← r ± imm`.
fn basic_ivs(proc: &Procedure, l: &Loop, summaries: Option<&ProcSummaries>) -> HashMap<Reg, i64> {
    let defs = def_sites(proc, l.body.iter().copied(), summaries);
    let mut ivs = HashMap::new();
    for r in 0..NUM_REGS as u8 {
        let reg = Reg(r);
        let sites = &defs[reg.index()];
        if sites.len() != 1 {
            continue;
        }
        let (b, i) = sites[0];
        if let Instr::Bin { op, dst, rhs } = proc.block(b).instrs[i] {
            if dst == reg {
                let step = match (op, rhs) {
                    (BinOp::Add, crate::instr::Operand::Imm(c)) => Some(c),
                    (BinOp::Sub, crate::instr::Operand::Imm(c)) => Some(-c),
                    _ => None,
                };
                if let Some(s) = step {
                    if s != 0 {
                        ivs.insert(reg, s);
                    }
                }
            }
        }
    }
    ivs
}

/// Extend basic IVs with one level of derived IVs: `j ← mov i` or
/// `j ← lea [inv + i*k + d]` where `i` is a basic IV.
fn derived_ivs(
    proc: &Procedure,
    l: &Loop,
    basic: &HashMap<Reg, i64>,
    summaries: Option<&ProcSummaries>,
) -> HashMap<Reg, i64> {
    let defs = def_sites(proc, l.body.iter().copied(), summaries);
    let mut all = basic.clone();
    for r in 0..NUM_REGS as u8 {
        let reg = Reg(r);
        if all.contains_key(&reg) {
            continue;
        }
        let sites = &defs[reg.index()];
        if sites.len() != 1 {
            continue;
        }
        let (b, i) = sites[0];
        match proc.block(b).instrs[i] {
            Instr::Mov { dst, src } if dst == reg => {
                if let Some(&s) = basic.get(&src) {
                    all.insert(reg, s);
                }
            }
            Instr::Lea { dst, addr } if dst == reg => {
                let base_ok = addr
                    .base
                    .is_none_or(|br| defs[br.index()].is_empty() && !basic.contains_key(&br));
                if let Some(idx) = addr.index {
                    if base_ok {
                        if let Some(&s) = basic.get(&idx) {
                            all.insert(reg, s * addr.scale as i64);
                        }
                    }
                } else if let Some(br) = addr.base {
                    if let Some(&s) = basic.get(&br) {
                        all.insert(reg, s);
                    }
                }
            }
            _ => {}
        }
    }
    all
}

/// Classify one register against a loop.
fn component(reg: Reg, ivs: &HashMap<Reg, i64>, defs: &[Vec<(BlockId, usize)>]) -> Component {
    if let Some(&s) = ivs.get(&reg) {
        return Component::Iv(s);
    }
    if defs[reg.index()].is_empty() {
        return Component::Invariant;
    }
    Component::Varying
}

/// Classify an address mode within a loop.
fn classify_in_loop(
    addr: &AddrMode,
    ivs: &HashMap<Reg, i64>,
    defs: &[Vec<(BlockId, usize)>],
) -> AddrKind {
    let base = addr.base.map(|r| component(r, ivs, defs));
    let index = addr.index.map(|r| component(r, ivs, defs));
    if matches!(base, Some(Component::Varying)) || matches!(index, Some(Component::Varying)) {
        return AddrKind::Irregular;
    }
    let mut stride = 0i64;
    if let Some(Component::Iv(s)) = base {
        stride += s;
    }
    if let Some(Component::Iv(s)) = index {
        stride += s * addr.scale as i64;
    }
    if stride != 0 {
        return AddrKind::Strided { stride };
    }
    // Fully loop-invariant address: Constant only for scalar frame/global
    // addressing (the paper's rule); other invariant derefs stay Irregular.
    if addr.is_scalar_frame_or_global() {
        AddrKind::Constant
    } else {
        AddrKind::Irregular
    }
}

impl DataflowAnalysis {
    /// Analyze a procedure, classifying every load.
    pub fn analyze(proc: &Procedure) -> DataflowAnalysis {
        let cfg = Cfg::build(proc);
        let forest = LoopForest::build(proc, &cfg);
        Self::analyze_with(proc, &forest)
    }

    /// Analyze with a precomputed loop forest.
    pub fn analyze_with(proc: &Procedure, forest: &LoopForest) -> DataflowAnalysis {
        Self::analyze_inner(proc, forest, None)
    }

    /// Analyze with interprocedural summaries: calls clobber only the
    /// registers the callee actually writes, so values live across calls
    /// to non-clobbering callees stay loop-invariant.
    pub fn analyze_in(
        proc: &Procedure,
        forest: &LoopForest,
        summaries: &ProcSummaries,
    ) -> DataflowAnalysis {
        Self::analyze_inner(proc, forest, Some(summaries))
    }

    fn analyze_inner(
        proc: &Procedure,
        forest: &LoopForest,
        summaries: Option<&ProcSummaries>,
    ) -> DataflowAnalysis {
        // Cache per-loop IV sets and def sites, keyed by header block.
        type LoopInfo = (HashMap<Reg, i64>, Vec<Vec<(BlockId, usize)>>);
        let mut loop_info: HashMap<BlockId, LoopInfo> = HashMap::new();
        for l in &forest.loops {
            let basic = basic_ivs(proc, l, summaries);
            let ivs = derived_ivs(proc, l, &basic, summaries);
            let defs = def_sites(proc, l.body.iter().copied(), summaries);
            loop_info.insert(l.header, (ivs, defs));
        }

        let mut kinds = Vec::with_capacity(proc.blocks.len());
        for blk in &proc.blocks {
            let mut row = Vec::with_capacity(blk.instrs.len());
            let enclosing = forest.innermost(blk.id);
            for ins in &blk.instrs {
                let kind = match ins {
                    Instr::Load { addr, .. } => Some(match enclosing {
                        Some(l) => {
                            let (ivs, defs) = &loop_info[&l.header];
                            classify_in_loop(addr, ivs, defs)
                        }
                        None => {
                            if addr.is_scalar_frame_or_global() {
                                AddrKind::Constant
                            } else {
                                AddrKind::Irregular
                            }
                        }
                    }),
                    _ => None,
                };
                row.push(kind);
            }
            kinds.push(row);
        }
        DataflowAnalysis { kinds }
    }

    /// The kind of the load at `(block, idx)`, or `None` if that
    /// instruction is not a load.
    pub fn load_kind(&self, block: BlockId, idx: usize) -> Option<AddrKind> {
        self.kinds
            .get(block.index())
            .and_then(|row| row.get(idx))
            .copied()
            .flatten()
    }

    /// Count loads per class across the procedure.
    pub fn class_counts(&self) -> ClassCounts {
        let mut c = ClassCounts::default();
        for row in &self.kinds {
            for k in row.iter().flatten() {
                match k {
                    AddrKind::Constant => c.constant += 1,
                    AddrKind::Strided { .. } => c.strided += 1,
                    AddrKind::Irregular => c.irregular += 1,
                }
            }
        }
        c
    }
}

/// Load counts per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Constant loads.
    pub constant: u64,
    /// Strided loads.
    pub strided: u64,
    /// Irregular loads.
    pub irregular: u64,
}

impl ClassCounts {
    /// Total loads.
    pub fn total(&self) -> u64 {
        self.constant + self.strided + self.irregular
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CmpOp, Operand, Terminator};
    use crate::proc::{BasicBlock, ProcId};

    /// for(i=0; i<n; i++) { x = A[i]; y = *x; s = fp[-8]; }
    fn loop_proc() -> Procedure {
        let i = Reg::gp(0);
        let a = Reg::gp(1); // base of A, set before loop
        let x = Reg::gp(2);
        let y = Reg::gp(3);
        let s = Reg::gp(4);
        let n = Reg::gp(5);
        Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![
                        Instr::MovImm { dst: i, imm: 0 },
                        Instr::MovImm {
                            dst: a,
                            imm: 0x1000,
                        },
                        Instr::MovImm { dst: n, imm: 100 },
                    ],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                BasicBlock {
                    id: BlockId(1),
                    instrs: vec![
                        // strided: A[i] (index IV, scale 8)
                        Instr::Load {
                            dst: x,
                            addr: AddrMode::base_index(a, i, 8, 0),
                        },
                        // irregular: *x (x defined by a load in the loop)
                        Instr::Load {
                            dst: y,
                            addr: AddrMode::base_disp(x, 0),
                        },
                        // constant: fp[-8]
                        Instr::Load {
                            dst: s,
                            addr: AddrMode::base_disp(Reg::FP, -8),
                        },
                        Instr::Bin {
                            op: BinOp::Add,
                            dst: i,
                            rhs: Operand::Imm(1),
                        },
                    ],
                    term: Terminator::Br {
                        lhs: i,
                        op: CmpOp::Lt,
                        rhs: Operand::Reg(n),
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 3,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        }
    }

    #[test]
    fn classifies_three_classes() {
        let p = loop_proc();
        let df = DataflowAnalysis::analyze(&p);
        assert_eq!(
            df.load_kind(BlockId(1), 0),
            Some(AddrKind::Strided { stride: 8 })
        );
        assert_eq!(df.load_kind(BlockId(1), 1), Some(AddrKind::Irregular));
        assert_eq!(df.load_kind(BlockId(1), 2), Some(AddrKind::Constant));
        assert_eq!(df.load_kind(BlockId(1), 3), None); // the Bin
        let c = df.class_counts();
        assert_eq!(
            (c.constant, c.strided, c.irregular, c.total()),
            (1, 1, 1, 3)
        );
    }

    #[test]
    fn base_register_iv_strides() {
        // p += 16 each iteration; load [p] is strided by 16.
        let p_reg = Reg::gp(0);
        let x = Reg::gp(1);
        let proc = Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![Instr::MovImm {
                        dst: p_reg,
                        imm: 0x1000,
                    }],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                BasicBlock {
                    id: BlockId(1),
                    instrs: vec![
                        Instr::Load {
                            dst: x,
                            addr: AddrMode::base_disp(p_reg, 0),
                        },
                        Instr::Bin {
                            op: BinOp::Add,
                            dst: p_reg,
                            rhs: Operand::Imm(16),
                        },
                    ],
                    term: Terminator::Br {
                        lhs: p_reg,
                        op: CmpOp::Lt,
                        rhs: Operand::Imm(0x2000),
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 3,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        };
        let df = DataflowAnalysis::analyze(&proc);
        assert_eq!(
            df.load_kind(BlockId(1), 0),
            Some(AddrKind::Strided { stride: 16 })
        );
    }

    #[test]
    fn decrementing_iv_gives_negative_stride() {
        let i = Reg::gp(0);
        let a = Reg::gp(1);
        let x = Reg::gp(2);
        let proc = Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![
                        Instr::MovImm { dst: i, imm: 100 },
                        Instr::MovImm {
                            dst: a,
                            imm: 0x1000,
                        },
                    ],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                BasicBlock {
                    id: BlockId(1),
                    instrs: vec![
                        Instr::Load {
                            dst: x,
                            addr: AddrMode::base_index(a, i, 4, 0),
                        },
                        Instr::Bin {
                            op: BinOp::Sub,
                            dst: i,
                            rhs: Operand::Imm(1),
                        },
                    ],
                    term: Terminator::Br {
                        lhs: i,
                        op: CmpOp::Gt,
                        rhs: Operand::Imm(0),
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 3,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        };
        let df = DataflowAnalysis::analyze(&proc);
        assert_eq!(
            df.load_kind(BlockId(1), 0),
            Some(AddrKind::Strided { stride: -4 })
        );
    }

    #[test]
    fn outside_loop_constants_and_irregulars() {
        let proc = Procedure {
            id: ProcId(0),
            name: "straight".into(),
            blocks: vec![BasicBlock {
                id: BlockId(0),
                instrs: vec![
                    Instr::Load {
                        dst: Reg::gp(0),
                        addr: AddrMode::base_disp(Reg::FP, -16),
                    },
                    Instr::Load {
                        dst: Reg::gp(1),
                        addr: AddrMode::global(0x6000),
                    },
                    Instr::Load {
                        dst: Reg::gp(2),
                        addr: AddrMode::base_disp(Reg::gp(0), 8),
                    },
                ],
                term: Terminator::Ret,
                src_line: 1,
            }],
            entry: BlockId(0),
            src_file: "s.c".into(),
        };
        let df = DataflowAnalysis::analyze(&proc);
        assert_eq!(df.load_kind(BlockId(0), 0), Some(AddrKind::Constant));
        assert_eq!(df.load_kind(BlockId(0), 1), Some(AddrKind::Constant));
        assert_eq!(df.load_kind(BlockId(0), 2), Some(AddrKind::Irregular));
    }

    #[test]
    fn call_clobbers_scratch_invariance() {
        // A load through r0 in a loop that also calls: r0 is clobbered by
        // the call, so the load cannot be treated as loop-invariant.
        let proc = Procedure {
            id: ProcId(0),
            name: "k".into(),
            blocks: vec![
                BasicBlock {
                    id: BlockId(0),
                    instrs: vec![Instr::MovImm {
                        dst: Reg::gp(7),
                        imm: 0,
                    }],
                    term: Terminator::Jmp(BlockId(1)),
                    src_line: 1,
                },
                BasicBlock {
                    id: BlockId(1),
                    instrs: vec![
                        Instr::Call { proc: ProcId(0) },
                        Instr::Load {
                            dst: Reg::gp(8),
                            addr: AddrMode::base_disp(Reg::gp(0), 0),
                        },
                        Instr::Bin {
                            op: BinOp::Add,
                            dst: Reg::gp(7),
                            rhs: Operand::Imm(1),
                        },
                    ],
                    term: Terminator::Br {
                        lhs: Reg::gp(7),
                        op: CmpOp::Lt,
                        rhs: Operand::Imm(4),
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    src_line: 2,
                },
                BasicBlock {
                    id: BlockId(2),
                    instrs: vec![],
                    term: Terminator::Ret,
                    src_line: 3,
                },
            ],
            entry: BlockId(0),
            src_file: "k.c".into(),
        };
        let df = DataflowAnalysis::analyze(&proc);
        assert_eq!(df.load_kind(BlockId(1), 1), Some(AddrKind::Irregular));
    }
}
