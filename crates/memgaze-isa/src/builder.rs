//! Ergonomic IR construction.
//!
//! [`ProcBuilder`] assembles basic blocks with forward-referenced labels;
//! [`ModuleBuilder`] collects procedures and data into a [`LoadModule`].

use crate::instr::{AddrMode, BinOp, CmpOp, Instr, Operand, Terminator};
use crate::module::LoadModule;
use crate::proc::{BasicBlock, BlockId, ProcId, Procedure};
use crate::reg::Reg;

/// Builder for one procedure.
#[derive(Debug)]
pub struct ProcBuilder {
    name: String,
    src_file: String,
    blocks: Vec<PendingBlock>,
    current: usize,
    line: u32,
}

#[derive(Debug)]
struct PendingBlock {
    instrs: Vec<Instr>,
    term: Option<Terminator>,
    src_line: u32,
}

impl ProcBuilder {
    /// Start a procedure; an entry block is created and selected.
    pub fn new(name: impl Into<String>, src_file: impl Into<String>) -> ProcBuilder {
        ProcBuilder {
            name: name.into(),
            src_file: src_file.into(),
            blocks: vec![PendingBlock {
                instrs: Vec::new(),
                term: None,
                src_line: 0,
            }],
            current: 0,
            line: 0,
        }
    }

    /// Create a new (empty) block without switching to it.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(PendingBlock {
            instrs: Vec::new(),
            term: None,
            src_line: self.line,
        });
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Select the block that subsequent emissions append to.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(b.index() < self.blocks.len(), "no such block {b}");
        self.current = b.index();
    }

    /// The currently selected block.
    pub fn current(&self) -> BlockId {
        BlockId(self.current as u32)
    }

    /// Set the source line attributed to subsequently emitted code.
    pub fn at_line(&mut self, line: u32) -> &mut Self {
        self.line = line;
        if self.blocks[self.current].instrs.is_empty() {
            self.blocks[self.current].src_line = line;
        }
        self
    }

    fn emit(&mut self, i: Instr) -> &mut Self {
        let blk = &mut self.blocks[self.current];
        assert!(blk.term.is_none(), "emitting into terminated block");
        blk.instrs.push(i);
        self
    }

    /// `dst ← imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.emit(Instr::MovImm { dst, imm })
    }

    /// `dst ← src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Mov { dst, src })
    }

    /// `dst ← [addr]`.
    pub fn load(&mut self, dst: Reg, addr: AddrMode) -> &mut Self {
        self.emit(Instr::Load { dst, addr })
    }

    /// `[addr] ← src`.
    pub fn store(&mut self, src: Reg, addr: AddrMode) -> &mut Self {
        self.emit(Instr::Store { src, addr })
    }

    /// `dst ← dst op rhs`.
    pub fn bin(&mut self, op: BinOp, dst: Reg, rhs: Operand) -> &mut Self {
        self.emit(Instr::Bin { op, dst, rhs })
    }

    /// `dst ← dst + imm`.
    pub fn add_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.bin(BinOp::Add, dst, Operand::Imm(imm))
    }

    /// `dst ← ea(addr)`.
    pub fn lea(&mut self, dst: Reg, addr: AddrMode) -> &mut Self {
        self.emit(Instr::Lea { dst, addr })
    }

    /// Call a procedure.
    pub fn call(&mut self, proc: ProcId) -> &mut Self {
        self.emit(Instr::Call { proc })
    }

    /// `ptwrite src`.
    pub fn ptwrite(&mut self, src: Reg) -> &mut Self {
        self.emit(Instr::Ptwrite { src })
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jmp(target));
    }

    /// Terminate with compare-and-branch.
    pub fn br(&mut self, lhs: Reg, op: CmpOp, rhs: Operand, taken: BlockId, not_taken: BlockId) {
        self.terminate(Terminator::Br {
            lhs,
            op,
            rhs,
            taken,
            not_taken,
        });
    }

    /// Terminate with return.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Ret);
    }

    fn terminate(&mut self, t: Terminator) {
        let blk = &mut self.blocks[self.current];
        assert!(blk.term.is_none(), "block already terminated");
        blk.term = Some(t);
    }

    /// Finish, assigning the procedure id.
    ///
    /// # Panics
    /// Panics if any block lacks a terminator.
    pub fn finish(self, id: ProcId) -> Procedure {
        let blocks = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, b)| BasicBlock {
                id: BlockId(i as u32),
                instrs: b.instrs,
                term: b
                    .term
                    .unwrap_or_else(|| panic!("{}: block {i} not terminated", self.name)),
                src_line: b.src_line,
            })
            .collect();
        let p = Procedure {
            id,
            name: self.name,
            blocks,
            entry: BlockId(0),
            src_file: self.src_file,
        };
        p.validate().expect("builder produced invalid procedure");
        p
    }
}

/// Builder for a load module.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: LoadModule,
}

impl ModuleBuilder {
    /// Start an empty module.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            module: LoadModule::new(name),
        }
    }

    /// The id the next added procedure will receive.
    pub fn next_proc_id(&self) -> ProcId {
        ProcId(self.module.procs.len() as u32)
    }

    /// Finish a [`ProcBuilder`] and add it.
    pub fn add(&mut self, pb: ProcBuilder) -> ProcId {
        let id = self.next_proc_id();
        self.module.add_proc(pb.finish(id))
    }

    /// Allocate zeroed global words; returns the base address.
    pub fn alloc_global(&mut self, label: impl Into<String>, words: usize) -> u64 {
        self.module.alloc_global(label, words)
    }

    /// Initialize a previously allocated region.
    pub fn init_global(&mut self, base: u64, words: &[u64]) {
        self.module.init_global(base, words)
    }

    /// Finish and validate the module.
    pub fn finish(self) -> LoadModule {
        self.module.validate().expect("invalid module");
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counting_loop() {
        let i = Reg::gp(0);
        let mut pb = ProcBuilder::new("count", "c.c");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.at_line(1).mov_imm(i, 0);
        pb.jmp(body);
        pb.switch_to(body);
        pb.at_line(2).add_imm(i, 1);
        pb.br(i, CmpOp::Lt, Operand::Imm(10), body, exit);
        pb.switch_to(exit);
        pb.ret();

        let mut mb = ModuleBuilder::new("m");
        let id = mb.add(pb);
        let m = mb.finish();
        assert_eq!(id, ProcId(0));
        assert_eq!(m.proc(id).blocks.len(), 3);
        assert_eq!(m.proc(id).blocks[1].src_line, 2);
    }

    #[test]
    #[should_panic(expected = "not terminated")]
    fn unterminated_block_panics() {
        let pb = ProcBuilder::new("bad", "b.c");
        pb.finish(ProcId(0));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut pb = ProcBuilder::new("bad", "b.c");
        pb.ret();
        pb.ret();
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emit_after_terminate_panics() {
        let mut pb = ProcBuilder::new("bad", "b.c");
        pb.ret();
        pb.mov_imm(Reg::gp(0), 1);
    }
}
