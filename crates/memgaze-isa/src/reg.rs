//! Register file definition.

use serde::{Deserialize, Serialize};

/// Number of architectural registers.
pub const NUM_REGS: usize = 16;

/// An architectural register.
///
/// `r0..r13` are general purpose; [`Reg::FP`] is the frame pointer and
/// [`Reg::SP`] the stack pointer — the instrumentor's Constant-load rule
/// (paper §III-B) keys off frame-pointer-relative scalar addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Frame pointer (x64 `rbp` analogue).
    pub const FP: Reg = Reg(14);
    /// Stack pointer (x64 `rsp` analogue).
    pub const SP: Reg = Reg(15);

    /// General-purpose register `i` (0..=13).
    ///
    /// # Panics
    /// Panics if `i` names the frame or stack pointer.
    pub fn gp(i: u8) -> Reg {
        assert!(i < 14, "r{i} is not a general-purpose register");
        Reg(i)
    }

    /// Index into a register file array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the frame pointer.
    #[inline]
    pub fn is_fp(self) -> bool {
        self == Reg::FP
    }

    /// Whether this is the stack pointer.
    #[inline]
    pub fn is_sp(self) -> bool {
        self == Reg::SP
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Reg::FP => f.write_str("fp"),
            Reg::SP => f.write_str("sp"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_registers() {
        assert!(Reg::FP.is_fp());
        assert!(Reg::SP.is_sp());
        assert!(!Reg::gp(0).is_fp());
        assert_eq!(Reg::FP.to_string(), "fp");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::gp(3).to_string(), "r3");
    }

    #[test]
    #[should_panic(expected = "not a general-purpose")]
    fn gp_rejects_fp() {
        Reg::gp(14);
    }
}
