//! Control-flow graph, reverse postorder, and dominator analysis.
//!
//! Dominators are computed with the Cooper–Harvey–Kennedy iterative
//! algorithm over reverse postorder — simple and fast for the procedure
//! sizes the instrumentor sees.

use crate::proc::{BlockId, Procedure};

/// Control-flow graph of one procedure.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists per block.
    succs: Vec<Vec<BlockId>>,
    /// Predecessor lists per block.
    preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// absent).
    rpo: Vec<BlockId>,
    /// `rpo_index[b] = position of b in rpo`, or `usize::MAX` if
    /// unreachable.
    rpo_index: Vec<usize>,
    /// Immediate dominator of each block (entry's idom is itself);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Entry block.
    entry: BlockId,
}

impl Cfg {
    /// Build the CFG and dominator tree for a procedure.
    pub fn build(proc: &Procedure) -> Cfg {
        let n = proc.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in &proc.blocks {
            let ss = b.term.successors();
            for s in &ss {
                preds[s.index()].push(b.id);
            }
            succs[b.id.index()] = ss;
        }

        // Depth-first postorder from the entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Iterative DFS with explicit state: (block, next successor index).
        let mut stack: Vec<(BlockId, usize)> = vec![(proc.entry, 0)];
        visited[proc.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        // Cooper–Harvey–Kennedy iterative dominators.
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[proc.entry.index()] = Some(proc.entry);
        let intersect = |idom: &[Option<BlockId>], rpo_index: &[usize], a: BlockId, b: BlockId| {
            let (mut x, mut y) = (a, b);
            while x != y {
                while rpo_index[x.index()] > rpo_index[y.index()] {
                    x = idom[x.index()].expect("processed block has idom");
                }
                while rpo_index[y.index()] > rpo_index[x.index()] {
                    y = idom[y.index()].expect("processed block has idom");
                }
            }
            x
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            idom,
            entry: proc.entry,
        }
    }

    /// Successors of a block.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of a block.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder (reachable only).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Immediate dominator of `b` (the entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = match self.idom[cur.index()] {
                Some(d) => d,
                None => return false,
            };
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CmpOp, Operand, Terminator};
    use crate::proc::{BasicBlock, ProcId, Procedure};
    use crate::reg::Reg;

    /// Build a procedure from terminators only (bodies empty).
    fn proc_of(terms: Vec<Terminator>) -> Procedure {
        Procedure {
            id: ProcId(0),
            name: "t".into(),
            blocks: terms
                .into_iter()
                .enumerate()
                .map(|(i, term)| BasicBlock {
                    id: BlockId(i as u32),
                    instrs: vec![],
                    term,
                    src_line: 0,
                })
                .collect(),
            entry: BlockId(0),
            src_file: "t.c".into(),
        }
    }

    fn br(taken: u32, not_taken: u32) -> Terminator {
        Terminator::Br {
            lhs: Reg::gp(0),
            op: CmpOp::Lt,
            rhs: Operand::Imm(0),
            taken: BlockId(taken),
            not_taken: BlockId(not_taken),
        }
    }

    #[test]
    fn diamond_dominators() {
        // 0 → {1,2} → 3
        let p = proc_of(vec![
            br(1, 2),
            Terminator::Jmp(BlockId(3)),
            Terminator::Jmp(BlockId(3)),
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(cfg.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(cfg.idom(BlockId(3)), Some(BlockId(0)));
        assert!(cfg.dominates(BlockId(0), BlockId(3)));
        assert!(!cfg.dominates(BlockId(1), BlockId(3)));
        assert!(cfg.dominates(BlockId(3), BlockId(3)));
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
    }

    #[test]
    fn loop_dominators() {
        // 0 → 1 (header); 1 → {2, 3}; 2 → 1 (latch); 3 ret.
        let p = proc_of(vec![
            Terminator::Jmp(BlockId(1)),
            br(2, 3),
            Terminator::Jmp(BlockId(1)),
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&p);
        assert!(cfg.dominates(BlockId(1), BlockId(2)));
        assert_eq!(cfg.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(cfg.idom(BlockId(3)), Some(BlockId(1)));
        // Back edge: 2 → 1 where 1 dominates 2.
        assert!(cfg.dominates(BlockId(1), BlockId(2)));
    }

    #[test]
    fn unreachable_block() {
        let p = proc_of(vec![Terminator::Ret, Terminator::Ret]);
        let cfg = Cfg::build(&p);
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(BlockId(1)));
        assert_eq!(cfg.idom(BlockId(1)), None);
        assert!(!cfg.dominates(BlockId(0), BlockId(1)));
        assert_eq!(cfg.rpo(), &[BlockId(0)]);
    }

    #[test]
    fn rpo_orders_entry_first() {
        let p = proc_of(vec![
            br(1, 2),
            Terminator::Jmp(BlockId(3)),
            Terminator::Jmp(BlockId(3)),
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(*cfg.rpo().last().unwrap(), BlockId(3));
    }
}
