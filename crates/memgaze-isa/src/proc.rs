//! Procedures and basic blocks.
//!
//! Basic blocks divide code into straight-line sequences such that an
//! instruction is executed if and only if any other in the block is
//! (paper §III-B) — the property the instrumentor's proxy selection relies
//! on.

use crate::instr::{Instr, Terminator};
use serde::{Deserialize, Serialize};

/// Index of a basic block within its procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the procedure's block vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a procedure within its load module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Index into the module's procedure vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// A straight-line instruction sequence ending in one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// This block's id within the procedure.
    pub id: BlockId,
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
    /// Source line of the block's first instruction (for attribution).
    pub src_line: u32,
}

impl BasicBlock {
    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.instrs.len() + 1
    }

    /// True when the body is empty (the block is just a jump).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Indices of load instructions within the body.
    pub fn load_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_load())
            .map(|(p, _)| p)
    }
}

/// A procedure: an entry block and a set of basic blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure {
    /// This procedure's id within the module.
    pub id: ProcId,
    /// Demangled name.
    pub name: String,
    /// Basic blocks; `blocks[i].id == BlockId(i)`.
    pub blocks: Vec<BasicBlock>,
    /// Entry block (conventionally `BlockId(0)`).
    pub entry: BlockId,
    /// Source file for attribution.
    pub src_file: String,
}

impl Procedure {
    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Total instruction count (bodies + terminators).
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Total number of loads.
    pub fn num_loads(&self) -> usize {
        self.blocks.iter().map(|b| b.load_positions().count()).sum()
    }

    /// Verify structural invariants (ids dense, terminator targets valid).
    /// Returns the first violation as a typed diagnostic.
    pub fn validate(&self) -> Result<(), crate::verify::VerifyError> {
        crate::verify::check_procedure(self, "<proc>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AddrMode, Instr, Terminator};
    use crate::reg::Reg;

    fn simple_proc() -> Procedure {
        Procedure {
            id: ProcId(0),
            name: "f".into(),
            blocks: vec![BasicBlock {
                id: BlockId(0),
                instrs: vec![
                    Instr::MovImm {
                        dst: Reg::gp(0),
                        imm: 1,
                    },
                    Instr::Load {
                        dst: Reg::gp(1),
                        addr: AddrMode::base_disp(Reg::gp(0), 0),
                    },
                ],
                term: Terminator::Ret,
                src_line: 1,
            }],
            entry: BlockId(0),
            src_file: "f.c".into(),
        }
    }

    #[test]
    fn counts() {
        let p = simple_proc();
        assert_eq!(p.num_instrs(), 3);
        assert_eq!(p.num_loads(), 1);
        assert_eq!(
            p.block(BlockId(0)).load_positions().collect::<Vec<_>>(),
            vec![1]
        );
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = simple_proc();
        p.blocks[0].term = Terminator::Jmp(BlockId(9));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let mut p = simple_proc();
        p.entry = BlockId(5);
        assert!(p.validate().is_err());
    }
}
