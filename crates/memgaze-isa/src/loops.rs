//! Natural-loop detection.
//!
//! Strided loads are "relative to a loop induction variable (loop-carried
//! dependency) with constant stride" (paper §III-B); finding loops is the
//! first step of that classification. A natural loop is identified per
//! back edge `n → h` where `h` dominates `n`; its body is `h` plus all
//! nodes that reach `n` without passing through `h`. Loops sharing a
//! header are merged.

use crate::cfg::Cfg;
use crate::proc::{BlockId, Procedure};
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Loop header (dominates every block in the body).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// Index of the innermost enclosing loop in the forest, if any.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
}

impl Loop {
    /// Whether the loop body contains `b`.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a procedure, with nesting resolved.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops ordered outermost-first (by increasing body size is not
    /// guaranteed; use `parent`/`depth`).
    pub loops: Vec<Loop>,
    /// Innermost loop index per block, if the block is in any loop.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Find the natural loops of `proc` given its `cfg`.
    pub fn build(proc: &Procedure, cfg: &Cfg) -> LoopForest {
        let n = proc.blocks.len();
        // Collect back edges and merge bodies per header.
        let mut header_bodies: Vec<(BlockId, BTreeSet<BlockId>)> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if cfg.dominates(s, b) {
                    // Back edge b → s. Walk predecessors from b up to s.
                    let mut body = BTreeSet::new();
                    body.insert(s);
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in cfg.preds(x) {
                                if cfg.is_reachable(p) {
                                    stack.push(p);
                                }
                            }
                        }
                    }
                    if let Some(existing) = header_bodies.iter_mut().find(|(h, _)| *h == s) {
                        existing.1.extend(body);
                    } else {
                        header_bodies.push((s, body));
                    }
                }
            }
        }

        // Sort outermost (largest body) first so parents precede children.
        header_bodies.sort_by_key(|(_, body)| std::cmp::Reverse(body.len()));
        let mut loops: Vec<Loop> = header_bodies
            .into_iter()
            .map(|(header, body)| Loop {
                header,
                body,
                parent: None,
                depth: 1,
            })
            .collect();

        // Parent = smallest strictly-containing loop processed earlier.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..i {
                let contains =
                    loops[j].body.is_superset(&loops[i].body) && loops[j].header != loops[i].header;
                if contains {
                    let better = match best {
                        None => true,
                        Some(b) => loops[j].body.len() < loops[b].body.len(),
                    };
                    if better {
                        best = Some(j);
                    }
                }
            }
            loops[i].parent = best;
            loops[i].depth = best.map_or(1, |b| loops[b].depth + 1);
        }

        // Innermost loop per block: deepest loop containing it.
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for (li, l) in loops.iter().enumerate() {
            for &b in &l.body {
                let replace = match innermost[b.index()] {
                    None => true,
                    Some(prev) => loops[prev].depth < l.depth,
                };
                if replace {
                    innermost[b.index()] = Some(li);
                }
            }
        }

        LoopForest { loops, innermost }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&Loop> {
        self.innermost
            .get(b.index())
            .copied()
            .flatten()
            .map(|i| &self.loops[i])
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True when the procedure has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CmpOp, Operand, Terminator};
    use crate::proc::{BasicBlock, ProcId};
    use crate::reg::Reg;

    fn proc_of(terms: Vec<Terminator>) -> Procedure {
        Procedure {
            id: ProcId(0),
            name: "t".into(),
            blocks: terms
                .into_iter()
                .enumerate()
                .map(|(i, term)| BasicBlock {
                    id: BlockId(i as u32),
                    instrs: vec![],
                    term,
                    src_line: 0,
                })
                .collect(),
            entry: BlockId(0),
            src_file: "t.c".into(),
        }
    }

    fn br(taken: u32, not_taken: u32) -> Terminator {
        Terminator::Br {
            lhs: Reg::gp(0),
            op: CmpOp::Lt,
            rhs: Operand::Imm(0),
            taken: BlockId(taken),
            not_taken: BlockId(not_taken),
        }
    }

    #[test]
    fn single_loop() {
        // 0 → 1; 1 → {1, 2}; 2 ret — self-loop at 1.
        let p = proc_of(vec![Terminator::Jmp(BlockId(1)), br(1, 2), Terminator::Ret]);
        let cfg = Cfg::build(&p);
        let f = LoopForest::build(&p, &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f.loops[0].header, BlockId(1));
        assert!(f.loops[0].contains(BlockId(1)));
        assert!(!f.loops[0].contains(BlockId(0)));
        assert_eq!(f.innermost(BlockId(1)).unwrap().header, BlockId(1));
        assert!(f.innermost(BlockId(2)).is_none());
    }

    #[test]
    fn nested_loops() {
        // 0→1; 1(outer hdr)→{2,5}; 2(inner hdr)→{3,4}; 3→2 (inner latch);
        // 4→1 (outer latch); 5 ret.
        let p = proc_of(vec![
            Terminator::Jmp(BlockId(1)),
            br(2, 5),
            br(3, 4),
            Terminator::Jmp(BlockId(2)),
            Terminator::Jmp(BlockId(1)),
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&p);
        let f = LoopForest::build(&p, &cfg);
        assert_eq!(f.len(), 2);
        let outer = f.loops.iter().position(|l| l.header == BlockId(1)).unwrap();
        let inner = f.loops.iter().position(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(f.loops[outer].depth, 1);
        assert_eq!(f.loops[inner].depth, 2);
        assert_eq!(f.loops[inner].parent, Some(outer));
        assert!(f.loops[outer].body.is_superset(&f.loops[inner].body));
        // Innermost for the inner body is the inner loop.
        assert_eq!(f.innermost(BlockId(3)).unwrap().header, BlockId(2));
        // Outer-only blocks resolve to the outer loop.
        assert_eq!(f.innermost(BlockId(4)).unwrap().header, BlockId(1));
    }

    #[test]
    fn no_loops() {
        let p = proc_of(vec![Terminator::Jmp(BlockId(1)), Terminator::Ret]);
        let cfg = Cfg::build(&p);
        let f = LoopForest::build(&p, &cfg);
        assert!(f.is_empty());
    }

    #[test]
    fn shared_header_merges() {
        // Two back edges to header 1: 1→{2,3}; 2→1; 3→{1,4}; 4 ret.
        let p = proc_of(vec![
            Terminator::Jmp(BlockId(1)),
            br(2, 3),
            Terminator::Jmp(BlockId(1)),
            br(1, 4),
            Terminator::Ret,
        ]);
        let cfg = Cfg::build(&p);
        let f = LoopForest::build(&p, &cfg);
        assert_eq!(f.len(), 1);
        let l = &f.loops[0];
        assert!(l.contains(BlockId(2)) && l.contains(BlockId(3)));
    }
}
