//! Load modules: procedures plus data, laid out with instruction
//! addresses.
//!
//! A load module is the unit the instrumentor consumes and produces (an
//! executable or library, paper §III-A). Instructions occupy 4 "bytes"
//! each in a flat address space so every instruction has a unique,
//! monotone [`Ip`]; rewriting a module and re-laying it out yields the new
//! instruction stream whose alignment with source the source map recovers.

use crate::proc::{BlockId, ProcId, Procedure};
use memgaze_model::{Ip, SymbolTable};
use serde::{Deserialize, Serialize};

/// Bytes occupied by one instruction in the synthetic layout.
pub const INSTR_BYTES: u64 = 4;

/// Alignment of each procedure's base address. Real linkers align
/// function entries, so consecutive procedures are separated by padding
/// whenever code size is not a multiple of this; those padding addresses
/// belong to no instruction and must not resolve.
pub const PROC_ALIGN: u64 = 16;

/// Initial contents for a region of the module's data space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataInit {
    /// Human label (object name) for attribution.
    pub label: String,
    /// Base data address.
    pub base: u64,
    /// 8-byte words stored from `base`.
    pub words: Vec<u64>,
}

/// An executable load module: procedures, data image, and layout base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadModule {
    /// Module name (e.g. the benchmark binary's name).
    pub name: String,
    /// Procedures; `procs[i].id == ProcId(i)`.
    pub procs: Vec<Procedure>,
    /// Initialized data regions.
    pub data: Vec<DataInit>,
    /// Address of the first instruction.
    pub base_ip: u64,
    /// Next free data address (grows upward as globals are allocated).
    pub data_break: u64,
}

/// Precomputed instruction-address layout of a module.
#[derive(Debug, Clone)]
pub struct ModuleLayout {
    /// Base ip of each procedure.
    proc_base: Vec<u64>,
    /// Per procedure, base ip of each block.
    block_base: Vec<Vec<u64>>,
    /// Per procedure, instruction count of each block.
    block_len: Vec<Vec<u64>>,
    /// One past each procedure's last instruction (excludes the alignment
    /// padding that may follow before the next procedure's base).
    proc_code_end: Vec<u64>,
    /// One past the last instruction address.
    end_ip: u64,
}

impl ModuleLayout {
    /// Address of instruction `idx` in `(proc, block)`. The terminator is
    /// at `idx == body_len`.
    pub fn ip_of(&self, proc: ProcId, block: BlockId, idx: usize) -> Ip {
        Ip(self.block_base[proc.index()][block.index()] + idx as u64 * INSTR_BYTES)
    }

    /// First instruction address of a procedure.
    pub fn proc_base(&self, proc: ProcId) -> Ip {
        Ip(self.proc_base[proc.index()])
    }

    /// One past the last instruction of a procedure.
    ///
    /// This is the procedure's *code* end, not the next procedure's base:
    /// with aligned procedure bases the two differ by up to
    /// `PROC_ALIGN - INSTR_BYTES` bytes of padding, and attributing that
    /// padding to the preceding procedure would corrupt symbol ranges and
    /// `locate`.
    pub fn proc_end(&self, proc: ProcId) -> Ip {
        Ip(self.proc_code_end[proc.index()])
    }

    /// Locate an instruction address: `(proc, block, index)`.
    pub fn locate(&self, ip: Ip) -> Option<(ProcId, BlockId, usize)> {
        let raw = ip.raw();
        if raw >= self.end_ip {
            return None;
        }
        let p = self.proc_base.partition_point(|&b| b <= raw);
        if p == 0 {
            return None;
        }
        let proc = p - 1;
        // Inter-procedure padding: addresses past the proc's last
        // instruction but before the next proc's base belong to nothing.
        if raw >= self.proc_code_end[proc] {
            return None;
        }
        let blocks = &self.block_base[proc];
        let b = blocks.partition_point(|&bb| bb <= raw);
        if b == 0 {
            return None;
        }
        let block = b - 1;
        let off = raw - blocks[block];
        if !off.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = (off / INSTR_BYTES) as usize;
        if (idx as u64) >= self.block_len[proc][block] {
            return None;
        }
        Some((ProcId(proc as u32), BlockId(block as u32), idx))
    }

    /// Total code size in (synthetic) bytes.
    pub fn code_bytes(&self) -> u64 {
        self.end_ip - self.proc_base.first().copied().unwrap_or(self.end_ip)
    }
}

impl LoadModule {
    /// Default code base address.
    pub const DEFAULT_BASE_IP: u64 = 0x40_0000;
    /// Default data base address (globals/heap image).
    pub const DEFAULT_DATA_BASE: u64 = 0x10_0000_0000;

    /// An empty module with default layout bases.
    pub fn new(name: impl Into<String>) -> LoadModule {
        LoadModule {
            name: name.into(),
            procs: Vec::new(),
            data: Vec::new(),
            base_ip: Self::DEFAULT_BASE_IP,
            data_break: Self::DEFAULT_DATA_BASE,
        }
    }

    /// Add a procedure; its id must equal its index.
    pub fn add_proc(&mut self, proc: Procedure) -> ProcId {
        assert_eq!(
            proc.id.index(),
            self.procs.len(),
            "procedure id must be its index"
        );
        let id = proc.id;
        self.procs.push(proc);
        id
    }

    /// The procedure with the given id.
    pub fn proc(&self, id: ProcId) -> &Procedure {
        &self.procs[id.index()]
    }

    /// Find a procedure by name.
    pub fn find_proc(&self, name: &str) -> Option<ProcId> {
        self.procs.iter().find(|p| p.name == name).map(|p| p.id)
    }

    /// Allocate `words` 8-byte words of zeroed global data; returns the
    /// base address.
    pub fn alloc_global(&mut self, label: impl Into<String>, words: usize) -> u64 {
        let base = self.data_break;
        self.data.push(DataInit {
            label: label.into(),
            base,
            words: vec![0; words],
        });
        // 64-byte align the next region so objects don't share cache lines.
        self.data_break += ((words as u64 * 8) + 63) & !63;
        base
    }

    /// The address span `[lo, hi)` of the allocated data segment, or
    /// `None` when no globals exist. Used by the abstract interpreter to
    /// accept range-instantiated constant addresses only when they point
    /// at real data.
    pub fn data_range(&self) -> Option<(u64, u64)> {
        let lo = self
            .data
            .iter()
            .map(|d| d.base)
            .min()
            .unwrap_or(Self::DEFAULT_DATA_BASE);
        (self.data_break > lo).then_some((lo, self.data_break))
    }

    /// Set the initial contents of a previously allocated region.
    ///
    /// # Panics
    /// Panics if no region with `base` exists or `words` exceeds it.
    pub fn init_global(&mut self, base: u64, words: &[u64]) {
        let region = self
            .data
            .iter_mut()
            .find(|d| d.base == base)
            .expect("init_global: unknown region");
        assert!(words.len() <= region.words.len(), "init exceeds region");
        region.words[..words.len()].copy_from_slice(words);
    }

    /// Compute the instruction-address layout. Procedure bases are aligned
    /// to [`PROC_ALIGN`]; the padding between a procedure's code end and
    /// the next base maps to no instruction.
    pub fn layout(&self) -> ModuleLayout {
        let mut proc_base = Vec::with_capacity(self.procs.len());
        let mut block_base = Vec::with_capacity(self.procs.len());
        let mut block_len = Vec::with_capacity(self.procs.len());
        let mut proc_code_end = Vec::with_capacity(self.procs.len());
        debug_assert!(self.base_ip.is_multiple_of(PROC_ALIGN));
        let mut cur = self.base_ip;
        for p in &self.procs {
            cur = cur.next_multiple_of(PROC_ALIGN);
            proc_base.push(cur);
            let mut bases = Vec::with_capacity(p.blocks.len());
            let mut lens = Vec::with_capacity(p.blocks.len());
            for b in &p.blocks {
                bases.push(cur);
                lens.push(b.len() as u64);
                cur += b.len() as u64 * INSTR_BYTES;
            }
            block_base.push(bases);
            block_len.push(lens);
            proc_code_end.push(cur);
        }
        ModuleLayout {
            proc_base,
            block_base,
            block_len,
            proc_code_end,
            end_ip: cur,
        }
    }

    /// Build the symbol table matching [`LoadModule::layout`].
    pub fn symbol_table(&self) -> SymbolTable {
        let layout = self.layout();
        let mut t = SymbolTable::new();
        for p in &self.procs {
            t.add_function(
                p.name.clone(),
                layout.proc_base(p.id),
                layout.proc_end(p.id),
                p.src_file.clone(),
            );
        }
        t
    }

    /// Total instruction count over all procedures.
    pub fn num_instrs(&self) -> usize {
        self.procs.iter().map(|p| p.num_instrs()).sum()
    }

    /// Total load count over all procedures.
    pub fn num_loads(&self) -> usize {
        self.procs.iter().map(|p| p.num_loads()).sum()
    }

    /// Synthetic binary size in bytes (code + data image), the paper's
    /// Table II 'Binary Size' analogue.
    pub fn binary_size_bytes(&self) -> u64 {
        let code = self.num_instrs() as u64 * INSTR_BYTES;
        let data: u64 = self.data.iter().map(|d| d.words.len() as u64 * 8).sum();
        code + data
    }

    /// Validate module structure (proc id density, per-proc structure,
    /// call targets). Returns the first error as a typed diagnostic; the
    /// full multi-pass verifier is [`crate::verify::verify_module`].
    pub fn validate(&self) -> Result<(), crate::verify::VerifyError> {
        crate::verify::check_structure(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AddrMode, Instr, Terminator};
    use crate::proc::BasicBlock;
    use crate::reg::Reg;

    fn two_proc_module() -> LoadModule {
        let mut m = LoadModule::new("m");
        for (i, name) in ["f", "g"].iter().enumerate() {
            m.add_proc(Procedure {
                id: ProcId(i as u32),
                name: (*name).into(),
                blocks: vec![
                    BasicBlock {
                        id: BlockId(0),
                        instrs: vec![Instr::MovImm {
                            dst: Reg::gp(0),
                            imm: 0,
                        }],
                        term: Terminator::Jmp(BlockId(1)),
                        src_line: 1,
                    },
                    BasicBlock {
                        id: BlockId(1),
                        instrs: vec![Instr::Load {
                            dst: Reg::gp(1),
                            addr: AddrMode::base_disp(Reg::gp(0), 0),
                        }],
                        term: Terminator::Ret,
                        src_line: 2,
                    },
                ],
                entry: BlockId(0),
                src_file: "m.c".into(),
            });
        }
        m
    }

    #[test]
    fn layout_roundtrip() {
        let m = two_proc_module();
        m.validate().unwrap();
        let l = m.layout();
        for p in &m.procs {
            for b in &p.blocks {
                for idx in 0..b.len() {
                    let ip = l.ip_of(p.id, b.id, idx);
                    assert_eq!(l.locate(ip), Some((p.id, b.id, idx)), "ip {ip}");
                }
            }
        }
        // Unaligned and out-of-range addresses resolve to nothing.
        assert_eq!(l.locate(Ip(m.base_ip + 1)), None);
        assert_eq!(l.locate(Ip(0)), None);
        assert_eq!(l.locate(Ip(m.base_ip + l.code_bytes())), None);
    }

    /// Procs whose code size is not a multiple of `PROC_ALIGN` leave
    /// padding gaps; gap addresses must resolve to no instruction and no
    /// symbol (regression: `locate`/`proc_end` used to attribute the gap
    /// to the preceding procedure).
    #[test]
    fn padding_gap_is_rejected() {
        let mut m = LoadModule::new("m");
        for (i, name) in ["f", "g"].iter().enumerate() {
            // 2 instrs + terminator = 3 instructions = 12 bytes → 4-byte
            // gap before the next 16-aligned proc base.
            m.add_proc(Procedure {
                id: ProcId(i as u32),
                name: (*name).into(),
                blocks: vec![BasicBlock {
                    id: BlockId(0),
                    instrs: vec![
                        Instr::MovImm {
                            dst: Reg::gp(0),
                            imm: 0,
                        },
                        Instr::Load {
                            dst: Reg::gp(1),
                            addr: AddrMode::base_disp(Reg::gp(0), 0),
                        },
                    ],
                    term: Terminator::Ret,
                    src_line: 1,
                }],
                entry: BlockId(0),
                src_file: "m.c".into(),
            });
        }
        let l = m.layout();
        let f_end = l.proc_end(ProcId(0)).raw();
        let g_base = l.proc_base(ProcId(1)).raw();
        assert_eq!(f_end, m.base_ip + 3 * INSTR_BYTES);
        assert_eq!(g_base, m.base_ip + PROC_ALIGN);
        assert!(f_end < g_base, "expected a padding gap");
        // Every gap address (aligned or not) resolves to nothing.
        for gap in f_end..g_base {
            assert_eq!(l.locate(Ip(gap)), None, "gap ip {gap:#x}");
        }
        // And the symbol table does not claim the gap for `f`.
        let t = m.symbol_table();
        assert_eq!(t.lookup(Ip(f_end)), None);
        assert_eq!(t.lookup(Ip(f_end - INSTR_BYTES)).unwrap().name, "f");
        assert_eq!(t.lookup(Ip(g_base)).unwrap().name, "g");
    }

    #[test]
    fn symbol_table_covers_procs() {
        let m = two_proc_module();
        let t = m.symbol_table();
        let l = m.layout();
        assert_eq!(t.len(), 2);
        let f = t.lookup(l.ip_of(ProcId(0), BlockId(1), 0)).unwrap();
        assert_eq!(f.name, "f");
        let g = t.lookup(l.ip_of(ProcId(1), BlockId(0), 0)).unwrap();
        assert_eq!(g.name, "g");
    }

    #[test]
    fn global_allocation() {
        let mut m = LoadModule::new("m");
        let a = m.alloc_global("a", 10);
        let b = m.alloc_global("b", 4);
        assert!(b >= a + 80);
        assert_eq!(b % 64, 0);
        m.init_global(a, &[1, 2, 3]);
        assert_eq!(m.data[0].words[..3], [1, 2, 3]);
        assert_eq!(m.data[0].words[3], 0);
    }

    #[test]
    fn counts_and_size() {
        let m = two_proc_module();
        assert_eq!(m.num_instrs(), 8);
        assert_eq!(m.num_loads(), 2);
        assert_eq!(m.binary_size_bytes(), 8 * INSTR_BYTES);
    }
}
