//! Interprocedural procedure summaries (DESIGN.md §16).
//!
//! Two layers of facts, both conservative may-analyses over the call
//! graph:
//!
//! * **clobbers / may_store** — the set of general-purpose registers a
//!   call to the procedure may modify (including everything its
//!   transitive callees may modify), and whether any store can execute
//!   under it. Computed as a least fixpoint: start from each
//!   procedure's direct effects and propagate along call edges until
//!   stable. Recursion is handled for free — the iteration simply stops
//!   growing. `FP`/`SP` are excluded because the [`Machine`]
//!   (crate::interp) restores both on `Ret`.
//! * **argument facts** — for each procedure, the constant value of each
//!   argument register `r0..r5` if *every* call site in the module
//!   passes that same constant (proved by running
//!   [`RangeAnalysis`](crate::ranges) in each caller and reading the
//!   point range at the call instruction). Facts feed back into the
//!   per-caller range analyses, so the loop re-evaluates until the fact
//!   table stops changing; joins only ever move a fact *up* the
//!   three-level lattice (unset → constant → ⊤), which bounds the
//!   iteration. Recursive cycles degrade naturally: a self-call whose
//!   argument differs from the outer call sites joins to ⊤.
//!
//! Procedures that no instruction calls (entry points) keep ⊤ argument
//! facts — the harness may invoke them with anything.

use crate::cfg::Cfg;
use crate::instr::Instr;
use crate::module::LoadModule;
use crate::proc::ProcId;
use crate::ranges::{top_ranges, Interval, RangeAnalysis, RegRanges};
use crate::reg::Reg;

/// Number of conventional argument registers (`r0..r5`).
pub const NUM_ARG_REGS: usize = 6;

/// What a call to one procedure may do to the caller's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcSummary {
    /// Bit `r` set ⇒ the call may modify general-purpose register `r`
    /// (transitively). `FP`/`SP` are never included: `Ret` restores them.
    pub clobbers: u16,
    /// Whether the procedure (or any transitive callee) may execute a
    /// `Store` — if so, callers must kill all tracked stack slots.
    pub may_store: bool,
    /// Per argument register `r0..r5`: `Some(c)` iff every call site in
    /// the module passes exactly the constant `c`.
    pub args: [Option<i64>; NUM_ARG_REGS],
}

impl ProcSummary {
    /// The assumption the analyses made before summaries existed: a call
    /// may clobber all six argument/scratch registers and may store
    /// anywhere. Used as the fallback for single-procedure analyses.
    pub fn conventional() -> ProcSummary {
        ProcSummary {
            clobbers: 0b11_1111,
            may_store: true,
            args: [None; NUM_ARG_REGS],
        }
    }

    /// Whether a call may modify `r`.
    pub fn clobbers_reg(&self, r: Reg) -> bool {
        !r.is_fp() && !r.is_sp() && self.clobbers & (1 << r.index()) != 0
    }
}

/// Three-level lattice for one argument fact during the site sweep.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fact {
    /// No call site seen yet.
    Unset,
    /// Every site so far passed this constant.
    Const(i64),
    /// Sites disagree or a site's value is unbounded.
    Top,
}

impl Fact {
    fn join(self, other: Fact) -> Fact {
        match (self, other) {
            (Fact::Unset, x) | (x, Fact::Unset) => x,
            (Fact::Const(a), Fact::Const(b)) if a == b => self,
            _ => Fact::Top,
        }
    }
}

/// Per-procedure summaries for a whole module, indexed by [`ProcId`].
#[derive(Debug, Clone)]
pub struct ProcSummaries {
    sums: Vec<ProcSummary>,
}

impl ProcSummaries {
    /// Compute summaries for every procedure in `module`.
    pub fn compute(module: &LoadModule) -> ProcSummaries {
        let n = module.procs.len();

        // --- Layer 1: clobbers + may_store, least fixpoint over the
        // call graph (direct effects first, then callee propagation).
        let mut sums: Vec<ProcSummary> = module
            .procs
            .iter()
            .map(|p| {
                let mut clobbers = 0u16;
                let mut may_store = false;
                for b in &p.blocks {
                    for ins in &b.instrs {
                        if matches!(ins, Instr::Store { .. }) {
                            may_store = true;
                        }
                        if let Some(d) = ins.def() {
                            if !d.is_fp() && !d.is_sp() {
                                clobbers |= 1 << d.index();
                            }
                        }
                    }
                }
                ProcSummary {
                    clobbers,
                    may_store,
                    args: [None; NUM_ARG_REGS],
                }
            })
            .collect();

        let callees: Vec<Vec<ProcId>> = module
            .procs
            .iter()
            .map(|p| {
                let mut cs = Vec::new();
                for b in &p.blocks {
                    for ins in &b.instrs {
                        if let Instr::Call { proc } = *ins {
                            if proc.index() < n {
                                cs.push(proc);
                            }
                        }
                    }
                }
                cs
            })
            .collect();

        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &c in &callees[i] {
                    let callee = sums[c.index()];
                    let grown = sums[i].clobbers | callee.clobbers;
                    let store = sums[i].may_store || callee.may_store;
                    if grown != sums[i].clobbers || store != sums[i].may_store {
                        sums[i].clobbers = grown;
                        sums[i].may_store = store;
                        changed = true;
                    }
                }
            }
        }

        let mut out = ProcSummaries { sums };

        // --- Layer 2: argument constants. Evaluate all call sites under
        // the current fact table and accumulate upward (unset → const →
        // ⊤) until stable. Because facts only ever rise, the loop
        // terminates in at most 2·NUM_ARG_REGS·n joins; the cap is a
        // backstop, and any residual instability degrades to ⊤.
        let cfgs: Vec<Cfg> = module.procs.iter().map(Cfg::build).collect();
        let mut facts: Vec<[Fact; NUM_ARG_REGS]> = vec![[Fact::Unset; NUM_ARG_REGS]; n];
        let max_rounds = 2 * NUM_ARG_REGS * n + 2;
        for _ in 0..max_rounds {
            let next = out.eval_sites(module, &cfgs, &facts);
            let mut grew = false;
            for (cur, new) in facts.iter_mut().zip(next.iter()) {
                for (c, v) in cur.iter_mut().zip(new.iter()) {
                    let joined = c.join(*v);
                    if joined != *c {
                        *c = joined;
                        grew = true;
                    }
                }
            }
            out.apply_facts(&facts);
            if !grew {
                break;
            }
        }

        // Verification pass: the published facts must absorb one more
        // evaluation round; anything that would still move goes to ⊤.
        let check = out.eval_sites(module, &cfgs, &facts);
        let mut dirty = false;
        for (cur, new) in facts.iter_mut().zip(check.iter()) {
            for (c, v) in cur.iter_mut().zip(new.iter()) {
                if c.join(*v) != *c {
                    *c = Fact::Top;
                    dirty = true;
                }
            }
        }
        if dirty {
            out.apply_facts(&facts);
        }
        out
    }

    /// Evaluate every call site under the current fact table: run the
    /// range analysis in each caller (entry seeded from the caller's own
    /// facts) and collect the argument-register ranges at each `Call`.
    fn eval_sites(
        &self,
        module: &LoadModule,
        cfgs: &[Cfg],
        facts: &[[Fact; NUM_ARG_REGS]],
    ) -> Vec<[Fact; NUM_ARG_REGS]> {
        let n = module.procs.len();
        let mut seen: Vec<[Fact; NUM_ARG_REGS]> = vec![[Fact::Unset; NUM_ARG_REGS]; n];
        for (pi, proc) in module.procs.iter().enumerate() {
            let entry = entry_from_facts(&facts[pi]);
            let ra = RangeAnalysis::analyze(proc, &cfgs[pi], entry, Some(self));
            for b in &proc.blocks {
                let mut st = *ra.block_entry(b.id);
                for ins in &b.instrs {
                    if let Instr::Call { proc: callee } = *ins {
                        if callee.index() < n {
                            let tgt = &mut seen[callee.index()];
                            for (a, t) in tgt.iter_mut().enumerate() {
                                let f = match st[a].as_point() {
                                    Some(v) => Fact::Const(v),
                                    None => Fact::Top,
                                };
                                *t = t.join(f);
                            }
                        }
                    }
                    crate::ranges::step(ins, &mut st, Some(self));
                }
            }
        }
        seen
    }

    fn apply_facts(&mut self, facts: &[[Fact; NUM_ARG_REGS]]) {
        for (s, f) in self.sums.iter_mut().zip(facts.iter()) {
            for (slot, fact) in s.args.iter_mut().zip(f.iter()) {
                *slot = match fact {
                    Fact::Const(v) => Some(*v),
                    _ => None,
                };
            }
        }
    }

    /// Summary for one procedure.
    pub fn get(&self, id: ProcId) -> &ProcSummary {
        &self.sums[id.index()]
    }

    /// Entry-block register ranges implied by a procedure's argument
    /// facts (⊤ everywhere else).
    pub fn entry_ranges(&self, id: ProcId) -> RegRanges {
        let mut st = top_ranges();
        for (a, fact) in self.sums[id.index()].args.iter().enumerate() {
            if let Some(v) = fact {
                st[a] = Interval::point(*v);
            }
        }
        st
    }
}

fn entry_from_facts(facts: &[Fact; NUM_ARG_REGS]) -> RegRanges {
    let mut st = top_ranges();
    for (a, f) in facts.iter().enumerate() {
        if let Fact::Const(v) = f {
            st[a] = Interval::point(*v);
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ModuleBuilder, ProcBuilder};
    use crate::instr::{AddrMode, CmpOp, Operand};

    /// main calls leaf twice: `leaf(r0 = base)` then `leaf(r0 =
    /// second(base))`; leaf only reads. Returns the module and `base`.
    fn two_proc_module(second: impl Fn(i64) -> i64) -> (LoadModule, i64) {
        let mut mb = ModuleBuilder::new("m");
        let base = mb.alloc_global("data", 64) as i64;
        let leaf_id = mb.next_proc_id();

        let mut leaf = ProcBuilder::new("leaf", "t.c");
        let body = leaf.new_block();
        let exit = leaf.new_block();
        leaf.mov_imm(Reg::gp(6), 0);
        leaf.jmp(body);
        leaf.switch_to(body);
        leaf.load(
            Reg::gp(7),
            AddrMode::base_index(Reg::gp(0), Reg::gp(6), 8, 0),
        );
        leaf.add_imm(Reg::gp(6), 1);
        leaf.br(Reg::gp(6), CmpOp::Lt, Operand::Imm(8), body, exit);
        leaf.switch_to(exit);
        leaf.ret();
        let leaf_id2 = mb.add(leaf);
        assert_eq!(leaf_id, leaf_id2);

        let mut main = ProcBuilder::new("main", "t.c");
        main.mov_imm(Reg::gp(0), base);
        main.call(leaf_id);
        main.mov_imm(Reg::gp(0), second(base));
        main.call(leaf_id);
        main.ret();
        mb.add(main);
        (mb.finish(), base)
    }

    #[test]
    fn agreeing_sites_yield_const_arg_fact() {
        let (m, base) = two_proc_module(|b| b);
        let sums = ProcSummaries::compute(&m);
        let leaf = sums.get(ProcId(0));
        assert_eq!(leaf.args[0], Some(base));
        assert!(!leaf.may_store, "leaf never stores");
        // leaf clobbers r6 and r7 but not, say, r13.
        assert!(leaf.clobbers_reg(Reg::gp(6)));
        assert!(leaf.clobbers_reg(Reg::gp(7)));
        assert!(!leaf.clobbers_reg(Reg::gp(13)));
    }

    #[test]
    fn disagreeing_sites_degrade_to_top() {
        let (m, _) = two_proc_module(|b| b + 0x40);
        let sums = ProcSummaries::compute(&m);
        assert_eq!(sums.get(ProcId(0)).args[0], None);
    }

    #[test]
    fn clobbers_propagate_transitively_and_recursion_terminates() {
        let mut mb = ModuleBuilder::new("rec");
        let a_id = mb.next_proc_id();
        // a: stores, writes r9, calls itself (recursion).
        let mut a = ProcBuilder::new("a", "t.c");
        a.mov_imm(Reg::gp(9), 1);
        a.store(Reg::gp(9), AddrMode::base_disp(Reg::FP, -8));
        a.call(a_id);
        a.ret();
        mb.add(a);
        // b: calls a, itself writes only r3.
        let mut b = ProcBuilder::new("b", "t.c");
        b.mov_imm(Reg::gp(3), 0);
        b.call(a_id);
        b.ret();
        mb.add(b);
        let m = mb.finish();
        let sums = ProcSummaries::compute(&m);
        let b_sum = sums.get(ProcId(1));
        assert!(b_sum.may_store, "store in callee must propagate");
        assert!(b_sum.clobbers_reg(Reg::gp(9)), "callee clobber propagates");
        assert!(b_sum.clobbers_reg(Reg::gp(3)));
    }
}
