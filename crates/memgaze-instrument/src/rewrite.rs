//! Binary rewriting: `ptwrite` insertion and map/annotation emission.
//!
//! For each load the plan marks, a `ptwrite` per source register is
//! inserted *before* the load ("ptwrites should precede loads, because the
//! source address can be overwritten when r_d = r_s", paper §III-A). The
//! rewritten instruction stream is no longer aligned with the original
//! source mapping, so a [`SourceMap`] records, for every new instruction,
//! the original address and line (§III-D); a `ptw_map` additionally ties
//! each inserted `ptwrite` to the load it instruments so the decoder can
//! reconstruct effective addresses from payloads plus annotation literals.

use crate::classify::ModuleClassification;
use crate::plan::InstrPlan;
use crate::{InstrStats, InstrumentConfig};
use memgaze_isa::{Instr, LoadModule, Procedure};
use memgaze_model::symbols::SourceMap;
use memgaze_model::{AuxAnnotations, FunctionId, Ip, IpAnnot, SymbolTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Role of one `ptwrite` within its load's address reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtwRole {
    /// Payload is the base register value.
    Base,
    /// Payload is the (unscaled) index register value.
    Index,
}

/// Decoder-facing record for one inserted `ptwrite`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtwInfo {
    /// Original address of the instrumented load.
    pub load_ip: Ip,
    /// Which address component the payload carries.
    pub role: PtwRole,
    /// Whether this is the final `ptwrite` of the load's group (the
    /// decoder completes the effective address on it).
    pub last: bool,
}

/// Output of instrumentation: the new executable plus its side tables.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The rewritten load module.
    pub module: LoadModule,
    /// Auxiliary annotations, keyed by *original* load address.
    pub annots: AuxAnnotations,
    /// New-instruction → original address/line mapping.
    pub source_map: SourceMap,
    /// New `ptwrite` address → reconstruction info.
    pub ptw_map: BTreeMap<Ip, PtwInfo>,
    /// Static statistics.
    pub stats: InstrStats,
    /// Symbol table of the *original* module (analyses attribute to
    /// original code).
    pub orig_symbols: SymbolTable,
}

/// Apply `plan` to `module`, producing the instrumented module and maps.
pub fn apply(
    module: &LoadModule,
    classification: &ModuleClassification,
    plan: &InstrPlan,
    config: &InstrumentConfig,
) -> Instrumented {
    let orig_layout = module.layout();
    let mut stats = InstrStats::default();

    // Count classes (ROI only) for the stats block.
    for cl in classification.loads() {
        let name = &module.proc(cl.proc).name;
        if !config.in_roi(name) {
            continue;
        }
        match cl.kind {
            memgaze_isa::AddrKind::Constant => stats.constant_loads += 1,
            memgaze_isa::AddrKind::Strided { .. } => stats.strided_loads += 1,
            memgaze_isa::AddrKind::Irregular => stats.irregular_loads += 1,
        }
    }

    // Rewrite procedures. While emitting we record, per emitted
    // instruction, (orig_ip, line) and for ptwrites their info; the new
    // addresses are resolved after the new layout is computed.
    let mut new_module = LoadModule::new(module.name.clone());
    new_module.data = module.data.clone();
    new_module.base_ip = module.base_ip;
    new_module.data_break = module.data_break;

    // (proc, block, new_idx) → orig ip + line, parallel to emission.
    let mut emitted_src: Vec<Vec<Vec<(Ip, u32)>>> = Vec::new();
    let mut emitted_ptw: Vec<Vec<Vec<Option<PtwInfo>>>> = Vec::new();
    let mut annots = AuxAnnotations::new();

    for proc in &module.procs {
        let mut blocks = Vec::with_capacity(proc.blocks.len());
        let mut src_rows = Vec::with_capacity(proc.blocks.len());
        let mut ptw_rows = Vec::with_capacity(proc.blocks.len());
        stats.blocks += proc.blocks.len() as u64;

        for block in &proc.blocks {
            let mut instrs = Vec::with_capacity(block.instrs.len());
            let mut srcs: Vec<(Ip, u32)> = Vec::new();
            let mut ptws: Vec<Option<PtwInfo>> = Vec::new();

            for (idx, ins) in block.instrs.iter().enumerate() {
                let orig_ip = orig_layout.ip_of(proc.id, block.id, idx);
                if let Instr::Load { addr, .. } = ins {
                    let cl = classification.get(orig_ip).expect("classified load");
                    let decision = plan.get(orig_ip).expect("planned load");
                    // Record the annotation for every load (observed or
                    // implied) so analyses know classes and literals.
                    let mut a = IpAnnot::of_class(cl.class(), FunctionId(proc.id.0));
                    a.implied_const = decision.implied_const;
                    a.scale = cl.scale;
                    a.offset = cl.disp;
                    a.two_source = cl.num_sources == 2;
                    a.src_line = cl.src_line;
                    annots.insert(orig_ip, a);

                    if decision.elided {
                        stats.elided_loads += 1;
                    }
                    if decision.instrument {
                        stats.instrumented_loads += 1;
                        let n = cl.num_sources;
                        let mut emitted = 0usize;
                        if let Some(b) = addr.base {
                            instrs.push(Instr::Ptwrite { src: b });
                            srcs.push((orig_ip, block.src_line));
                            emitted += 1;
                            ptws.push(Some(PtwInfo {
                                load_ip: orig_ip,
                                role: PtwRole::Base,
                                last: emitted == n,
                            }));
                            stats.ptwrites_inserted += 1;
                        }
                        if let Some(i) = addr.index {
                            instrs.push(Instr::Ptwrite { src: i });
                            srcs.push((orig_ip, block.src_line));
                            emitted += 1;
                            ptws.push(Some(PtwInfo {
                                load_ip: orig_ip,
                                role: PtwRole::Index,
                                last: emitted == n,
                            }));
                            stats.ptwrites_inserted += 1;
                        }
                    }
                }
                instrs.push(*ins);
                srcs.push((orig_ip, block.src_line));
                ptws.push(None);
            }
            // Terminator keeps its original mapping.
            let term_ip = orig_layout.ip_of(proc.id, block.id, block.instrs.len());
            srcs.push((term_ip, block.src_line));
            ptws.push(None);

            blocks.push(memgaze_isa::BasicBlock {
                id: block.id,
                instrs,
                term: block.term,
                src_line: block.src_line,
            });
            src_rows.push(srcs);
            ptw_rows.push(ptws);
        }

        new_module.add_proc(Procedure {
            id: proc.id,
            name: proc.name.clone(),
            blocks,
            entry: proc.entry,
            src_file: proc.src_file.clone(),
        });
        emitted_src.push(src_rows);
        emitted_ptw.push(ptw_rows);
    }

    // Resolve new addresses.
    let new_layout = new_module.layout();
    let mut source_map = SourceMap::new();
    let mut ptw_map = BTreeMap::new();
    for proc in &new_module.procs {
        for block in &proc.blocks {
            let n = block.len();
            for idx in 0..n {
                let new_ip = new_layout.ip_of(proc.id, block.id, idx);
                let (orig_ip, line) = emitted_src[proc.id.index()][block.id.index()][idx];
                source_map.record(new_ip, orig_ip, line);
                if let Some(info) = emitted_ptw[proc.id.index()][block.id.index()][idx] {
                    ptw_map.insert(new_ip, info);
                }
            }
        }
    }

    Instrumented {
        module: new_module,
        annots,
        source_map,
        ptw_map,
        stats,
        orig_symbols: module.symbol_table(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instrumenter;
    use memgaze_isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};
    use memgaze_isa::interp::{Machine, NullSink, VecSink};

    fn spec(compose: Compose, opt: OptLevel) -> UKernelSpec {
        UKernelSpec {
            compose,
            elems: 64,
            reps: 2,
            opt,
        }
    }

    #[test]
    fn instrumented_module_preserves_semantics() {
        let m = codegen::generate(&spec(Compose::Single(Pattern::Irregular), OptLevel::O0));
        let out = Instrumenter::default().instrument(&m);
        let main = m.find_proc("main").unwrap();

        let mut orig = Machine::new(&m, VecSink::default());
        orig.run(main, 10_000_000).unwrap();
        let mut inst = Machine::new(&out.module, VecSink::default());
        inst.run(main, 10_000_000).unwrap();

        // Same load stream (ips differ; addresses and count equal).
        let a: Vec<u64> = orig.into_sink().loads.iter().map(|l| l.1).collect();
        let b: Vec<u64> = inst.into_sink().loads.iter().map(|l| l.1).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ptwrites_precede_their_loads() {
        let m = codegen::generate(&spec(Compose::Single(Pattern::strided(2)), OptLevel::O3));
        let out = Instrumenter::default().instrument(&m);
        // Every ptwrite's following non-ptwrite instruction in its block
        // is the instrumented load.
        for p in &out.module.procs {
            for b in &p.blocks {
                for (i, ins) in b.instrs.iter().enumerate() {
                    if ins.is_ptwrite() {
                        let next_load = b.instrs[i + 1..]
                            .iter()
                            .find(|x| !x.is_ptwrite())
                            .expect("ptwrite must be followed by its load");
                        assert!(next_load.is_load());
                    }
                }
            }
        }
    }

    #[test]
    fn source_map_covers_all_new_instructions() {
        let m = codegen::generate(&spec(Compose::Single(Pattern::strided(1)), OptLevel::O0));
        let out = Instrumenter::default().instrument(&m);
        let layout = out.module.layout();
        let orig_layout = m.layout();
        for p in &out.module.procs {
            for b in &p.blocks {
                for idx in 0..b.len() {
                    let ip = layout.ip_of(p.id, b.id, idx);
                    let loc = out.source_map.resolve(ip).expect("mapped");
                    // The original ip must exist in the original module.
                    assert!(orig_layout.locate(loc.orig_ip).is_some());
                }
            }
        }
    }

    #[test]
    fn ptw_map_grouping_is_consistent() {
        let m = codegen::generate(&spec(Compose::Single(Pattern::Irregular), OptLevel::O3));
        let out = Instrumenter::default().instrument(&m);
        // For each load, exactly one `last` ptwrite; Base comes before
        // Index in address order within a group.
        let mut by_load: std::collections::HashMap<Ip, Vec<(Ip, PtwInfo)>> =
            std::collections::HashMap::new();
        for (ip, info) in &out.ptw_map {
            by_load.entry(info.load_ip).or_default().push((*ip, *info));
        }
        for (load_ip, group) in by_load {
            let lasts = group.iter().filter(|(_, i)| i.last).count();
            assert_eq!(lasts, 1, "load {load_ip} has {lasts} last ptwrites");
            if group.len() == 2 {
                assert_eq!(group[0].1.role, PtwRole::Base);
                assert_eq!(group[1].1.role, PtwRole::Index);
                assert!(group[1].1.last);
            }
        }
    }

    #[test]
    fn annotations_cover_every_load() {
        let m = codegen::generate(&spec(
            Compose::Conditional {
                first: Pattern::strided(1),
                second: Pattern::Irregular,
                likelihood: 50,
            },
            OptLevel::O0,
        ));
        let out = Instrumenter::default().instrument(&m);
        let classification = ModuleClassification::analyze(&m);
        assert_eq!(out.annots.len(), classification.len());
        for cl in classification.loads() {
            let a = out.annots.get(cl.ip).expect("annotated");
            assert_eq!(a.class, cl.class());
            assert_eq!(a.scale, cl.scale);
            assert_eq!(a.offset, cl.disp);
        }
    }

    #[test]
    fn o0_compresses_about_2x_statically() {
        let m = codegen::generate(&spec(Compose::Single(Pattern::strided(1)), OptLevel::O0));
        let out = Instrumenter::default().instrument(&m);
        let k = out.stats.static_kappa();
        assert!((1.5..=2.5).contains(&k), "O0 static κ = {k}");

        let m3 = codegen::generate(&spec(Compose::Single(Pattern::strided(1)), OptLevel::O3));
        let out3 = Instrumenter::default().instrument(&m3);
        let k3 = out3.stats.static_kappa();
        assert!((1.0..=1.4).contains(&k3), "O3 static κ = {k3}");
        assert!(k > k3, "O0 must compress more than O3");
    }

    #[test]
    fn roi_limits_ptwrites_to_kernel() {
        let m = codegen::generate(&spec(Compose::Single(Pattern::strided(1)), OptLevel::O0));
        let out = Instrumenter::new(InstrumentConfig::with_roi(["kernel"])).instrument(&m);
        let layout = out.module.layout();
        let kernel = out.module.find_proc("kernel").unwrap();
        for ip in out.ptw_map.keys() {
            let (p, _, _) = layout.locate(*ip).unwrap();
            assert_eq!(p, kernel, "ptwrite outside ROI at {ip}");
        }
        // The instrumented module still runs.
        let main = out.module.find_proc("main").unwrap();
        let mut mach = Machine::new(&out.module, NullSink);
        mach.run(main, 10_000_000).unwrap();
    }

    #[test]
    fn uncompressed_emits_more_ptwrites() {
        let m = codegen::generate(&spec(Compose::Single(Pattern::strided(1)), OptLevel::O0));
        let comp = Instrumenter::default().instrument(&m);
        let unc = Instrumenter::new(InstrumentConfig::uncompressed()).instrument(&m);
        assert!(unc.stats.ptwrites_inserted > comp.stats.ptwrites_inserted);
        assert!(unc.stats.instrumented_loads >= comp.stats.instrumented_loads);
    }
}
