//! Module-wide load classification.
//!
//! Runs the per-procedure data-dependence analysis of `memgaze-isa` over
//! every procedure of a load module and keys the result by instruction
//! address, attaching the addressing-mode literals the annotation file
//! needs (paper §III-A: "The literals are extracted, keyed by instruction
//! address, and placed in the auxiliary annotation file").

use memgaze_isa::{
    AbsInterp, AbsResult, AddrKind, Cfg, DataflowAnalysis, Instr, LoadModule, LoopForest,
    ModuleAbsInterp,
};
use memgaze_model::{Ip, LoadClass};
use std::collections::BTreeMap;

/// Classification and addressing facts for one static load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifiedLoad {
    /// Original instruction address.
    pub ip: Ip,
    /// Which procedure/block/index it lives at.
    pub proc: memgaze_isa::ProcId,
    /// Containing basic block.
    pub block: memgaze_isa::BlockId,
    /// Instruction index within the block body.
    pub idx: usize,
    /// Final static class: the dataflow answer, upgraded where the
    /// abstract interpreter proved something strictly more regular.
    pub kind: AddrKind,
    /// Raw data-dependence classification, before any upgrade.
    pub dataflow_kind: AddrKind,
    /// What the abstract interpreter proved about the address.
    pub absint: AbsResult,
    /// The absint proof collapsed to a load class (`None` = no proof).
    pub absint_class: Option<LoadClass>,
    /// Literal scale factor `k`.
    pub scale: u8,
    /// Literal displacement `o`.
    pub disp: i64,
    /// Number of source registers (1 or 2; 0 for globals).
    pub num_sources: usize,
    /// Source line of the containing block.
    pub src_line: u32,
}

impl ClassifiedLoad {
    /// The trace-model load class.
    pub fn class(&self) -> LoadClass {
        self.kind.to_load_class()
    }

    /// True when the absint proof upgraded the dataflow classification.
    pub fn upgraded(&self) -> bool {
        self.kind != self.dataflow_kind
    }
}

/// Regularity rank: higher classes compress better and may be elided or
/// implied rather than traced.
fn regularity(c: LoadClass) -> u8 {
    match c {
        LoadClass::Constant => 2,
        LoadClass::Strided => 1,
        LoadClass::Irregular => 0,
    }
}

/// Fuse the two oracles: take the absint class only when it is strictly
/// more regular than the dataflow answer. Both analyses are sound, so a
/// *more* regular proof subsumes a conservative "irregular"; a *less*
/// regular absint verdict (e.g. `ProvenIrregular` against a dataflow
/// `Strided`) would indicate a bug and is surfaced by the differential
/// lint pass instead of silently downgrading here.
fn fuse(dataflow: AddrKind, absint: AbsResult, absint_class: Option<LoadClass>) -> AddrKind {
    let Some(ac) = absint_class else {
        return dataflow;
    };
    if regularity(ac) <= regularity(dataflow.to_load_class()) {
        return dataflow;
    }
    match ac {
        LoadClass::Constant => AddrKind::Constant,
        LoadClass::Strided => AddrKind::Strided {
            // `Strided` absint class only arises from a nonzero proven
            // stride, so this is always present.
            stride: absint.stride().unwrap_or(0),
        },
        LoadClass::Irregular => dataflow,
    }
}

/// Classification of every load in a module, keyed by instruction address.
#[derive(Debug, Clone, Default)]
pub struct ModuleClassification {
    loads: BTreeMap<Ip, ClassifiedLoad>,
}

impl ModuleClassification {
    /// Analyze all procedures of `module`: interprocedural summaries
    /// first, then per-procedure dataflow and abstract interpretation,
    /// fused per load.
    pub fn analyze(module: &LoadModule) -> ModuleClassification {
        let layout = module.layout();
        let mai = ModuleAbsInterp::analyze(module);
        let mut loads = BTreeMap::new();
        for proc in &module.procs {
            let cfg = Cfg::build(proc);
            let forest = LoopForest::build(proc, &cfg);
            let df = DataflowAnalysis::analyze_in(proc, &forest, mai.summaries());
            let ai = mai.proc(proc.id);
            for block in &proc.blocks {
                for (idx, ins) in block.instrs.iter().enumerate() {
                    if let Instr::Load { addr, .. } = ins {
                        let dataflow_kind = df
                            .load_kind(block.id, idx)
                            .expect("load must have a classification");
                        let absint = ai
                            .load_result(block.id, idx)
                            .expect("load must have an absint result");
                        let absint_class = AbsInterp::proven_class(absint, addr);
                        let kind = fuse(dataflow_kind, absint, absint_class);
                        let ip = layout.ip_of(proc.id, block.id, idx);
                        loads.insert(
                            ip,
                            ClassifiedLoad {
                                ip,
                                proc: proc.id,
                                block: block.id,
                                idx,
                                kind,
                                dataflow_kind,
                                absint,
                                absint_class,
                                scale: addr.scale,
                                disp: addr.disp,
                                num_sources: addr.num_sources(),
                                src_line: block.src_line,
                            },
                        );
                    }
                }
            }
        }
        ModuleClassification { loads }
    }

    /// The classification of the load at `ip`.
    pub fn get(&self, ip: Ip) -> Option<&ClassifiedLoad> {
        self.loads.get(&ip)
    }

    /// All classified loads in address order.
    pub fn loads(&self) -> impl Iterator<Item = &ClassifiedLoad> + '_ {
        self.loads.values()
    }

    /// Number of static loads.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// True if the module has no loads.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};

    #[test]
    fn classifies_generated_kernel() {
        let m = codegen::generate(&UKernelSpec {
            compose: Compose::Single(Pattern::Irregular),
            elems: 32,
            reps: 1,
            opt: OptLevel::O0,
        });
        let c = ModuleClassification::analyze(&m);
        assert!(!c.is_empty());
        let mut constant = 0;
        let mut strided = 0;
        let mut irregular = 0;
        for l in c.loads() {
            match l.kind {
                AddrKind::Constant => constant += 1,
                AddrKind::Strided { .. } => strided += 1,
                AddrKind::Irregular => irregular += 1,
            }
        }
        // O0 irregular kernel: index load (strided), data load (irregular),
        // plus frame reloads (constant).
        assert!(constant >= 1, "constants: {constant}");
        assert!(strided >= 1, "strided: {strided}");
        assert!(irregular >= 1, "irregular: {irregular}");
    }

    #[test]
    fn two_source_loads_flagged() {
        let m = codegen::generate(&UKernelSpec {
            compose: Compose::Single(Pattern::strided(1)),
            elems: 16,
            reps: 1,
            opt: OptLevel::O3,
        });
        let c = ModuleClassification::analyze(&m);
        // Strided loads use base+index addressing: two sources.
        let strided: Vec<_> = c
            .loads()
            .filter(|l| matches!(l.kind, AddrKind::Strided { .. }))
            .collect();
        assert!(!strided.is_empty());
        assert!(strided.iter().all(|l| l.num_sources == 2));
        assert!(strided.iter().all(|l| l.scale == 8));
    }

    #[test]
    fn lookup_by_ip_matches_layout() {
        let m = codegen::generate(&UKernelSpec {
            compose: Compose::Single(Pattern::strided(2)),
            elems: 16,
            reps: 1,
            opt: OptLevel::O3,
        });
        let c = ModuleClassification::analyze(&m);
        let layout = m.layout();
        for l in c.loads() {
            assert_eq!(layout.locate(l.ip), Some((l.proc, l.block, l.idx)));
        }
    }
}
