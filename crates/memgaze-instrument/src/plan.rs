//! Proxy selection and the instrumentation plan (paper §III-B, Fig. 2).
//!
//! Per basic block: Strided and Irregular loads are always instrumented;
//! Constant loads are never instrumented directly. Their execution count
//! is implied by a *proxy* — a Strided/Irregular load in the same block if
//! one exists, otherwise the block's first Constant load (which is then
//! instrumented itself). The proxy's annotation carries the number of
//! implied Constant loads, making the compression non-lossy.

use crate::classify::ModuleClassification;
use crate::InstrumentConfig;
use memgaze_isa::{AddrKind, LoadModule};
use memgaze_model::Ip;
use std::collections::BTreeMap;

/// What the plan decides for one static load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedLoad {
    /// Whether a `ptwrite` (per source register) precedes this load.
    pub instrument: bool,
    /// Constant loads this load stands proxy for (0 for non-proxies).
    pub implied_const: u32,
    /// Elided proven-strided load: not instrumented because its address
    /// sequence is reconstructible from the annotation's stride literal.
    pub elided: bool,
}

/// The full instrumentation plan, keyed by original load address.
#[derive(Debug, Clone, Default)]
pub struct InstrPlan {
    decisions: BTreeMap<Ip, PlannedLoad>,
}

impl InstrPlan {
    /// Build the plan for `module` under `config`.
    pub fn build(
        module: &LoadModule,
        classification: &ModuleClassification,
        config: &InstrumentConfig,
    ) -> InstrPlan {
        let layout = module.layout();
        let mut decisions = BTreeMap::new();

        for proc in &module.procs {
            let in_roi = config.in_roi(&proc.name);
            for block in &proc.blocks {
                // Gather this block's loads in order. A load with no
                // source register (global-absolute addressing) cannot be
                // `ptwrite`n without an extra register, which the paper's
                // scheme deliberately avoids (§III-A); such loads are only
                // ever implied by a proxy.
                let loads: Vec<(Ip, AddrKind, usize, Option<i64>)> = block
                    .load_positions()
                    .map(|idx| {
                        let ip = layout.ip_of(proc.id, block.id, idx);
                        let cl = classification.get(ip).expect("classified load");
                        (ip, cl.kind, cl.num_sources, cl.absint.stride())
                    })
                    .collect();
                if loads.is_empty() {
                    continue;
                }
                if !in_roi {
                    for (ip, _, _, _) in loads {
                        decisions.insert(
                            ip,
                            PlannedLoad {
                                instrument: false,
                                implied_const: 0,
                                elided: false,
                            },
                        );
                    }
                    continue;
                }
                if !config.compresses() {
                    // Uncompressed: every instrumentable load is
                    // instrumented, none imply others.
                    for (ip, _, srcs, _) in loads {
                        decisions.insert(
                            ip,
                            PlannedLoad {
                                instrument: srcs > 0,
                                implied_const: 0,
                                elided: false,
                            },
                        );
                    }
                    continue;
                }

                let const_count = loads
                    .iter()
                    .filter(|(_, k, _, _)| *k == AddrKind::Constant)
                    .count() as u32;
                // A load may be elided only when both oracles agree on the
                // same nonzero stride: the final class says Strided{s} and
                // the abstract interpreter *proved* that exact s. The
                // annotation then reconstructs the address sequence.
                let mut elided: Vec<bool> = loads
                    .iter()
                    .map(|(_, k, srcs, abs)| {
                        config.elides()
                            && *srcs > 0
                            && matches!(k, AddrKind::Strided { stride }
                                        if *stride != 0 && *abs == Some(*stride))
                    })
                    .collect();
                // Proxy preference (Fig. 2): first instrumentable
                // non-elided Strided/Irregular load, else first
                // instrumentable Constant load.
                let mut proxy_pos = loads
                    .iter()
                    .enumerate()
                    .position(|(i, (_, k, s, _))| {
                        !elided[i] && !matches!(k, AddrKind::Constant) && *s > 0
                    })
                    .or_else(|| {
                        loads
                            .iter()
                            .position(|(_, k, s, _)| matches!(k, AddrKind::Constant) && *s > 0)
                    });
                // Constant loads need a proxy to imply their counts; if
                // elision removed every candidate, un-elide one to serve.
                if proxy_pos.is_none() && const_count > 0 {
                    if let Some(i) = elided.iter().position(|&e| e) {
                        elided[i] = false;
                        proxy_pos = Some(i);
                    }
                }

                for (i, (ip, k, srcs, _)) in loads.iter().enumerate() {
                    let is_proxy = proxy_pos == Some(i);
                    // Strided/Irregular loads are always instrumented when
                    // possible (unless elided); a Constant load only when
                    // it is the proxy.
                    let instrument = match k {
                        AddrKind::Constant => is_proxy,
                        _ => !elided[i] && *srcs > 0,
                    };
                    // The proxy implies all Constant loads in the block —
                    // minus itself when the proxy *is* a Constant load
                    // (its own execution is observed directly).
                    let implied_const = if is_proxy {
                        if matches!(k, AddrKind::Constant) {
                            const_count.saturating_sub(1)
                        } else {
                            const_count
                        }
                    } else {
                        0
                    };
                    decisions.insert(
                        *ip,
                        PlannedLoad {
                            instrument,
                            implied_const,
                            elided: elided[i],
                        },
                    );
                }
            }
        }
        InstrPlan { decisions }
    }

    /// The decision for the load at `ip`.
    pub fn get(&self, ip: Ip) -> Option<PlannedLoad> {
        self.decisions.get(&ip).copied()
    }

    /// Iterate all decisions in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ip, &PlannedLoad)> + '_ {
        self.decisions.iter()
    }

    /// Number of instrumented loads.
    pub fn num_instrumented(&self) -> u64 {
        self.decisions.values().filter(|d| d.instrument).count() as u64
    }

    /// Number of elided proven-strided loads.
    pub fn num_elided(&self) -> u64 {
        self.decisions.values().filter(|d| d.elided).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_isa::builder::{ModuleBuilder, ProcBuilder};
    use memgaze_isa::{AddrMode, Reg};

    /// A straight-line proc: [const, const, irregular, const].
    fn mixed_block_module() -> LoadModule {
        let mut mb = ModuleBuilder::new("m");
        let mut pb = ProcBuilder::new("f", "f.c");
        pb.load(Reg::gp(0), AddrMode::base_disp(Reg::FP, -8));
        pb.load(Reg::gp(1), AddrMode::base_disp(Reg::FP, -16));
        pb.load(Reg::gp(2), AddrMode::base_disp(Reg::gp(0), 0));
        pb.load(Reg::gp(3), AddrMode::base_disp(Reg::FP, -24));
        pb.ret();
        mb.add(pb);
        mb.finish()
    }

    /// A straight-line proc with only constant loads.
    fn const_only_module() -> LoadModule {
        let mut mb = ModuleBuilder::new("m");
        let mut pb = ProcBuilder::new("f", "f.c");
        pb.load(Reg::gp(0), AddrMode::base_disp(Reg::FP, -8));
        pb.load(Reg::gp(1), AddrMode::base_disp(Reg::FP, -16));
        pb.load(Reg::gp(2), AddrMode::global(0x6000));
        pb.ret();
        mb.add(pb);
        mb.finish()
    }

    #[test]
    fn noncost_proxy_carries_all_constants() {
        let m = mixed_block_module();
        let c = ModuleClassification::analyze(&m);
        let plan = InstrPlan::build(&m, &c, &InstrumentConfig::default());
        let decisions: Vec<_> = plan.iter().map(|(_, d)| *d).collect();
        // Loads in address order: const, const, irregular(proxy), const.
        assert_eq!(decisions.len(), 4);
        assert!(!decisions[0].instrument);
        assert!(!decisions[1].instrument);
        assert!(decisions[2].instrument);
        assert_eq!(decisions[2].implied_const, 3);
        assert!(!decisions[3].instrument);
        assert_eq!(plan.num_instrumented(), 1);
    }

    #[test]
    fn const_only_block_instruments_first_as_proxy() {
        let m = const_only_module();
        let c = ModuleClassification::analyze(&m);
        let plan = InstrPlan::build(&m, &c, &InstrumentConfig::default());
        let decisions: Vec<_> = plan.iter().map(|(_, d)| *d).collect();
        assert!(decisions[0].instrument);
        assert_eq!(decisions[0].implied_const, 2);
        assert!(!decisions[1].instrument);
        assert!(!decisions[2].instrument);
    }

    #[test]
    fn uncompressed_instruments_everything() {
        let m = mixed_block_module();
        let c = ModuleClassification::analyze(&m);
        let plan = InstrPlan::build(&m, &c, &InstrumentConfig::uncompressed());
        assert_eq!(plan.num_instrumented(), 4);
        assert!(plan.iter().all(|(_, d)| d.implied_const == 0));
    }

    #[test]
    fn out_of_roi_gets_nothing() {
        let m = mixed_block_module();
        let c = ModuleClassification::analyze(&m);
        let plan = InstrPlan::build(&m, &c, &InstrumentConfig::with_roi(["other"]));
        assert_eq!(plan.num_instrumented(), 0);
        assert_eq!(plan.iter().count(), 4);
    }

    /// Fig. 2 accounting: with one proxy per block, the implied counts
    /// plus elisions reconstruct the block's total loads.
    #[test]
    fn implied_counts_conserve_loads() {
        for m in [mixed_block_module(), const_only_module()] {
            for config in [InstrumentConfig::default(), InstrumentConfig::eliding()] {
                let c = ModuleClassification::analyze(&m);
                let plan = InstrPlan::build(&m, &c, &config);
                let instrumented: u64 = plan.num_instrumented();
                let implied: u64 = plan.iter().map(|(_, d)| d.implied_const as u64).sum();
                assert_eq!(instrumented + implied + plan.num_elided(), c.len() as u64);
            }
        }
    }

    #[test]
    fn eliding_drops_proven_strided_loads() {
        use memgaze_isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};
        let m = codegen::generate(&UKernelSpec {
            compose: Compose::Single(Pattern::strided(1)),
            elems: 64,
            reps: 1,
            opt: OptLevel::O3,
        });
        let c = ModuleClassification::analyze(&m);
        let base = InstrPlan::build(&m, &c, &InstrumentConfig::default());
        let elide = InstrPlan::build(&m, &c, &InstrumentConfig::eliding());
        assert_eq!(base.num_elided(), 0);
        assert!(elide.num_elided() > 0, "no load was elided");
        assert!(elide.num_instrumented() < base.num_instrumented());
        // Conservation holds under elision too.
        let implied: u64 = elide.iter().map(|(_, d)| d.implied_const as u64).sum();
        assert_eq!(
            elide.num_instrumented() + implied + elide.num_elided(),
            c.len() as u64
        );
    }

    #[test]
    fn elision_keeps_a_proxy_for_constants() {
        // O0 strided kernel: frame reloads (Constant) share blocks with the
        // strided data load. If elision removes the only candidate proxy,
        // one load must be un-elided so the constants stay implied.
        use memgaze_isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};
        let m = codegen::generate(&UKernelSpec {
            compose: Compose::Single(Pattern::strided(1)),
            elems: 64,
            reps: 1,
            opt: OptLevel::O0,
        });
        let c = ModuleClassification::analyze(&m);
        let plan = InstrPlan::build(&m, &c, &InstrumentConfig::eliding());
        let implied: u64 = plan.iter().map(|(_, d)| d.implied_const as u64).sum();
        assert_eq!(
            plan.num_instrumented() + implied + plan.num_elided(),
            c.len() as u64
        );
    }
}
