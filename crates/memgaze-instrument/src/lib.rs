//! Static binary analysis and `ptwrite` instrumentation — the paper's
//! DynInst-based instrumentor (paper §III).
//!
//! The instrumentor takes a load module, classifies every load as
//! Constant / Strided / Irregular from data dependencies ([`classify`]),
//! selects per-basic-block proxies so Constant loads need no
//! instrumentation ([`plan`], paper Fig. 2), and rewrites the module with
//! `ptwrite` instructions inserted *before* each instrumented load
//! ([`rewrite`]) — one per source register, so a two-source load costs two
//! packets. It emits the auxiliary annotation file (classes, literal
//! scale/offset, implied Constant counts) and the recovered source mapping
//! (§III-D).
//!
//! ```
//! use memgaze_isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};
//! use memgaze_instrument::{InstrumentConfig, Instrumenter};
//!
//! let module = codegen::generate(&UKernelSpec {
//!     compose: Compose::Single(Pattern::strided(2)),
//!     elems: 64,
//!     reps: 1,
//!     opt: OptLevel::O3,
//! });
//! let out = Instrumenter::new(InstrumentConfig::default()).instrument(&module);
//! assert!(out.stats.instrumented_loads > 0);
//! assert!(out.stats.static_kappa() >= 1.0);
//! ```

pub mod classify;
pub mod lint;
pub mod plan;
pub mod rewrite;

pub use classify::{ClassifiedLoad, ModuleClassification};
pub use lint::{lint_module, DiffSummary, LintReport};
pub use plan::{InstrPlan, PlannedLoad};
pub use rewrite::{Instrumented, PtwInfo, PtwRole};

use memgaze_isa::LoadModule;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Instrumentation configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstrumentConfig {
    /// Region of interest: procedure names to instrument. `None`
    /// instruments every procedure. Mirrors the paper's selective
    /// instrumentation from hotspot analysis (§II).
    pub roi: Option<BTreeSet<String>>,
    /// When false, Constant loads are instrumented too (no compression) —
    /// used to produce the paper's uncompressed "All⁺" baselines.
    pub skip_constant_loads: Option<bool>,
    /// When true, loads whose stride the abstract interpreter *proved*
    /// (dataflow and absint agree on a nonzero stride) are elided from
    /// instrumentation: their address sequence is reconstructible from
    /// the annotation alone. Default off — the baseline pipeline is
    /// unchanged unless this is opted into.
    pub elide_proven_strided: Option<bool>,
}

impl InstrumentConfig {
    /// Compressing configuration limited to the given procedures.
    pub fn with_roi<I, S>(names: I) -> InstrumentConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        InstrumentConfig {
            roi: Some(names.into_iter().map(Into::into).collect()),
            skip_constant_loads: None,
            elide_proven_strided: None,
        }
    }

    /// Uncompressed configuration (every load instrumented).
    pub fn uncompressed() -> InstrumentConfig {
        InstrumentConfig {
            roi: None,
            skip_constant_loads: Some(false),
            elide_proven_strided: None,
        }
    }

    /// Compressing configuration that also elides proven-strided loads.
    pub fn eliding() -> InstrumentConfig {
        InstrumentConfig {
            roi: None,
            skip_constant_loads: None,
            elide_proven_strided: Some(true),
        }
    }

    /// Whether Constant loads are compressed away (default true).
    pub fn compresses(&self) -> bool {
        self.skip_constant_loads.unwrap_or(true)
    }

    /// Whether proven-strided loads are elided (default false).
    pub fn elides(&self) -> bool {
        self.elide_proven_strided.unwrap_or(false)
    }

    /// Whether the procedure named `name` is inside the region of
    /// interest.
    pub fn in_roi(&self, name: &str) -> bool {
        self.roi.as_ref().is_none_or(|s| s.contains(name))
    }
}

/// Static instrumentation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct InstrStats {
    /// Static Constant loads in the (ROI part of the) module.
    pub constant_loads: u64,
    /// Static Strided loads.
    pub strided_loads: u64,
    /// Static Irregular loads.
    pub irregular_loads: u64,
    /// Loads that received `ptwrite` instrumentation.
    pub instrumented_loads: u64,
    /// Proven-strided loads elided from instrumentation entirely.
    pub elided_loads: u64,
    /// `ptwrite` instructions inserted (two-source loads get two).
    pub ptwrites_inserted: u64,
    /// Basic blocks examined.
    pub blocks: u64,
}

impl InstrStats {
    /// Total static loads.
    pub fn total_loads(&self) -> u64 {
        self.constant_loads + self.strided_loads + self.irregular_loads
    }

    /// Static compression ratio: total / instrumented loads (≥ 1). The
    /// *dynamic* κ of Eq. 2 depends on execution counts; this is its
    /// static analogue.
    pub fn static_kappa(&self) -> f64 {
        if self.instrumented_loads == 0 {
            1.0
        } else {
            self.total_loads() as f64 / self.instrumented_loads as f64
        }
    }
}

/// The instrumentor.
#[derive(Debug, Clone, Default)]
pub struct Instrumenter {
    config: InstrumentConfig,
}

impl Instrumenter {
    /// An instrumentor with the given configuration.
    pub fn new(config: InstrumentConfig) -> Instrumenter {
        Instrumenter { config }
    }

    /// Analyze and rewrite `module` (paper Fig. 1, Step 1): classify,
    /// plan, and insert `ptwrite`s, producing the new executable plus the
    /// auxiliary annotation file and source map.
    pub fn instrument(&self, module: &LoadModule) -> Instrumented {
        let classification = {
            let _span = memgaze_obs::span("pipeline.classify");
            ModuleClassification::analyze(module)
        };
        let plan = InstrPlan::build(module, &classification, &self.config);
        {
            let _span = memgaze_obs::span("pipeline.rewrite");
            rewrite::apply(module, &classification, &plan, &self.config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roi_filtering() {
        let c = InstrumentConfig::with_roi(["kernel"]);
        assert!(c.in_roi("kernel"));
        assert!(!c.in_roi("main"));
        assert!(c.compresses());
        let all = InstrumentConfig::default();
        assert!(all.in_roi("anything"));
        assert!(!InstrumentConfig::uncompressed().compresses());
    }

    #[test]
    fn static_kappa_degenerate() {
        let s = InstrStats::default();
        assert_eq!(s.static_kappa(), 1.0);
        let s = InstrStats {
            constant_loads: 3,
            strided_loads: 1,
            irregular_loads: 0,
            instrumented_loads: 2,
            elided_loads: 0,
            ptwrites_inserted: 2,
            blocks: 1,
        };
        assert!((s.static_kappa() - 2.0).abs() < 1e-12);
        assert_eq!(s.total_loads(), 4);
    }
}
