//! Lint framework: differential classification checking and the
//! instrumentation-plan checker.
//!
//! Three layers of defense against silent instrumentation bugs (a load
//! misclassified as Constant is dropped from the trace and corrupts every
//! downstream metric — paper §III-B):
//!
//! 1. the multi-pass IR verifier of `memgaze_isa::verify`, run over both
//!    the original and the rewritten module;
//! 2. a **differential classification pass**: the affine
//!    abstract-interpretation oracle (`memgaze_isa::absint`) re-derives
//!    every load's class independently of `dataflow`. Where the oracle
//!    has a *proof* and the classifier disagrees, that is a bug: a
//!    provably-striding load classified Constant ([`LintId::UnsoundConstant`])
//!    would be compressed away unsoundly; a provably-regular load
//!    classified Irregular ([`LintId::LostCompression`]) costs trace
//!    bandwidth. Where the oracle has no proof it stays silent —
//!    `Unknown` is compatible with everything;
//! 3. an **instrumentation-plan checker** over `rewrite::apply` output:
//!    `ptwrite` groups are complete and well-ordered, the address remap
//!    is injective and order-preserving, source-map recovery round-trips
//!    into the original module, and annotation implied-Constant counts
//!    reconcile with the plan and per-block load counts.

use crate::classify::ModuleClassification;
use crate::plan::InstrPlan;
use crate::rewrite::{Instrumented, PtwInfo, PtwRole};
use crate::{InstrumentConfig, Instrumenter};
use memgaze_isa::absint::AbsResult;
use memgaze_isa::verify::{self, Diagnostic, LintId, Severity, Site};
use memgaze_isa::{AddrKind, Instr, LoadModule};
use memgaze_model::{Ip, LoadClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate outcome of the differential classification pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffSummary {
    /// Static loads compared.
    pub loads: u64,
    /// Both oracles prove the same class (and stride, when strided).
    pub agree: u64,
    /// The abstract interpreter has no proof (compatible, not counted as
    /// agreement).
    pub absint_unknown: u64,
    /// Agreements where the absint proof *upgraded* the raw dataflow
    /// answer to a more regular class (subset of `agree`).
    pub upgraded: u64,
    /// The oracle proves a strictly more regular class than assigned
    /// (warnings: compression left on the table).
    pub lost_compression: u64,
    /// The oracle's proof contradicts the assigned class or stride
    /// (errors: the compression would be unsound).
    pub unsound: u64,
}

impl DiffSummary {
    /// Fraction of compared loads where both oracles agree outright.
    pub fn agreement_rate(&self) -> f64 {
        if self.loads == 0 {
            1.0
        } else {
            self.agree as f64 / self.loads as f64
        }
    }

    /// Fold another summary into this one.
    pub fn merge(&mut self, other: &DiffSummary) {
        self.loads += other.loads;
        self.agree += other.agree;
        self.absint_unknown += other.absint_unknown;
        self.upgraded += other.upgraded;
        self.lost_compression += other.lost_compression;
        self.unsound += other.unsound;
    }
}

/// Result of linting one module end to end.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Module name.
    pub module: String,
    /// All diagnostics from every pass, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Differential classification summary.
    pub differential: DiffSummary,
}

impl LintReport {
    /// Whether any error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Count diagnostics of a severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }
}

fn regularity(class: LoadClass) -> u8 {
    match class {
        LoadClass::Constant => 2,
        LoadClass::Strided => 1,
        LoadClass::Irregular => 0,
    }
}

/// Run the differential classification pass over every load of `module`.
///
/// The comparison is between the absint *proof* and the *final* class
/// the instrumentor will act on (dataflow fused with the proof). A proof
/// that is less regular than the final class is a soundness error; one
/// that is more regular means an upgrade was computed but not consumed
/// (a fusion bug, surfaced as lost compression).
pub fn differential_pass(
    module: &LoadModule,
    classification: &ModuleClassification,
) -> (Vec<Diagnostic>, DiffSummary) {
    let mut diags = Vec::new();
    let mut summary = DiffSummary::default();
    for cl in classification.loads() {
        let proc_name = &module.proc(cl.proc).name;
        summary.loads += 1;
        let site = || Site::instr(&module.name, cl.proc, cl.block, cl.idx, Some(cl.ip));
        let Some(ai_class) = cl.absint_class else {
            summary.absint_unknown += 1;
            continue;
        };
        let final_class = cl.class();
        if ai_class == final_class {
            // Same class; for Strided both sides carry a stride — they
            // must be the same number.
            if let (AddrKind::Strided { stride }, AbsResult::Proven { stride: s, .. }) =
                (cl.kind, cl.absint)
            {
                if stride != s {
                    summary.unsound += 1;
                    diags.push(Diagnostic::error(
                        LintId::StrideMismatch,
                        site(),
                        format!(
                            "{proc_name}: classifier stride {stride} but abstract \
                             interpretation proves {s}"
                        ),
                    ));
                    continue;
                }
            }
            summary.agree += 1;
            if cl.upgraded() {
                summary.upgraded += 1;
            }
        } else if regularity(ai_class) < regularity(final_class) {
            // Oracle proves the address is LESS regular than the class
            // the instrumentor acts on: compression would drop packets.
            summary.unsound += 1;
            let lint = if final_class == LoadClass::Constant {
                LintId::UnsoundConstant
            } else {
                LintId::UnsoundStrided
            };
            diags.push(Diagnostic::error(
                lint,
                site(),
                format!(
                    "{proc_name}: classified {final_class:?} but abstract interpretation \
                     proves {ai_class:?} ({:?})",
                    cl.absint
                ),
            ));
        } else {
            summary.lost_compression += 1;
            diags.push(Diagnostic::warning(
                LintId::LostCompression,
                site(),
                format!(
                    "{proc_name}: classified {final_class:?} but abstract interpretation \
                     proves {ai_class:?} ({:?}) — upgrade computed but not consumed",
                    cl.absint
                ),
            ));
        }
    }
    (diags, summary)
}

/// Check `rewrite::apply` output against the plan it was built from.
///
/// `classification` and `plan` must be recomputed from the *original*
/// module with the same `config` (they are deterministic).
pub fn check_instrumented(
    orig: &LoadModule,
    inst: &Instrumented,
    classification: &ModuleClassification,
    plan: &InstrPlan,
    config: &InstrumentConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let name = &inst.module.name;
    let orig_layout = orig.layout();
    let new_layout = inst.module.layout();

    // --- ptwrite groups ---------------------------------------------------
    // Group ptw_map entries by the load they instrument; BTreeMap keys are
    // new addresses, so each group comes out in address order.
    let mut groups: BTreeMap<Ip, Vec<(Ip, PtwInfo)>> = BTreeMap::new();
    for (&ip, &info) in &inst.ptw_map {
        groups.entry(info.load_ip).or_default().push((ip, info));
    }
    for (&load_ip, decision) in plan.iter() {
        let cl = classification
            .get(load_ip)
            .expect("planned load classified");
        let site = || Site::instr(name, cl.proc, cl.block, cl.idx, Some(load_ip));
        let expected = if decision.instrument {
            cl.num_sources
        } else {
            0
        };
        let group = groups.remove(&load_ip).unwrap_or_default();
        if group.len() < expected {
            diags.push(Diagnostic::error(
                LintId::MissingPtwrite,
                site(),
                format!(
                    "load has {} ptwrites, plan requires {expected}",
                    group.len()
                ),
            ));
            continue;
        }
        if group.len() > expected {
            diags.push(Diagnostic::error(
                LintId::DuplicatePtwrite,
                site(),
                format!(
                    "load has {} ptwrites, plan requires {expected}",
                    group.len()
                ),
            ));
            continue;
        }
        // Role order (Base before Index), exactly one `last` on the final
        // entry, and payload registers matching the addressing mode.
        let roles: Vec<PtwRole> = group.iter().map(|(_, i)| i.role).collect();
        let mut expected_roles: Vec<PtwRole> = Vec::new();
        if base_reg_of(orig, cl.proc, cl.block, cl.idx).is_some() {
            expected_roles.push(PtwRole::Base);
        }
        if index_reg_of(orig, cl.proc, cl.block, cl.idx).is_some() {
            expected_roles.push(PtwRole::Index);
        }
        if expected > 0 && roles != expected_roles {
            diags.push(Diagnostic::error(
                LintId::PtwriteGroupOrder,
                site(),
                format!("ptwrite roles {roles:?}, expected {expected_roles:?}"),
            ));
        }
        let lasts: Vec<bool> = group.iter().map(|(_, i)| i.last).collect();
        if expected > 0
            && (lasts.iter().filter(|&&l| l).count() != 1 || lasts.last() != Some(&true))
        {
            diags.push(Diagnostic::error(
                LintId::PtwriteGroupOrder,
                site(),
                format!("bad `last` marking {lasts:?} in ptwrite group"),
            ));
        }
        // Each entry must point at an actual Ptwrite of the right register
        // placed before the load in the same block.
        for (ptw_ip, info) in &group {
            match located_instr(&inst.module, &new_layout, *ptw_ip) {
                Some(Instr::Ptwrite { src }) => {
                    let want = match info.role {
                        PtwRole::Base => base_reg_of(orig, cl.proc, cl.block, cl.idx),
                        PtwRole::Index => index_reg_of(orig, cl.proc, cl.block, cl.idx),
                    };
                    if want != Some(src) {
                        diags.push(Diagnostic::error(
                            LintId::OrphanPtwrite,
                            site(),
                            format!(
                                "ptwrite at {ptw_ip} writes {src}, expected {want:?} for \
                                 role {:?}",
                                info.role
                            ),
                        ));
                    }
                }
                other => diags.push(Diagnostic::error(
                    LintId::OrphanPtwrite,
                    site(),
                    format!("ptw_map entry {ptw_ip} points at {other:?}, not a ptwrite"),
                )),
            }
        }
    }
    // Groups not consumed above instrument a load the plan doesn't know.
    for (load_ip, group) in groups {
        diags.push(Diagnostic::error(
            LintId::OrphanPtwrite,
            Site::module(name),
            format!("{} ptwrites for unplanned load {load_ip}", group.len()),
        ));
    }
    // Reverse direction: every Ptwrite instruction has a ptw_map entry.
    for proc in &inst.module.procs {
        for block in &proc.blocks {
            for (idx, ins) in block.instrs.iter().enumerate() {
                if ins.is_ptwrite() {
                    let ip = new_layout.ip_of(proc.id, block.id, idx);
                    if !inst.ptw_map.contains_key(&ip) {
                        diags.push(Diagnostic::error(
                            LintId::OrphanPtwrite,
                            Site::instr(name, proc.id, block.id, idx, Some(ip)),
                            "ptwrite instruction missing from ptw_map".to_string(),
                        ));
                    }
                }
            }
        }
    }

    // --- source map: total, round-tripping, injective, order-preserving ---
    let mut remap: Vec<Ip> = Vec::new();
    for proc in &inst.module.procs {
        for block in &proc.blocks {
            for idx in 0..block.len() {
                let new_ip = new_layout.ip_of(proc.id, block.id, idx);
                let Some(loc) = inst.source_map.resolve(new_ip) else {
                    diags.push(Diagnostic::error(
                        LintId::SourceMapMissing,
                        Site::instr(name, proc.id, block.id, idx, Some(new_ip)),
                        "new instruction has no source-map entry".to_string(),
                    ));
                    continue;
                };
                if orig_layout.locate(loc.orig_ip).is_none() {
                    diags.push(Diagnostic::error(
                        LintId::SourceMapDangling,
                        Site::instr(name, proc.id, block.id, idx, Some(new_ip)),
                        format!(
                            "source-map target {} is not an original instruction",
                            loc.orig_ip
                        ),
                    ));
                    continue;
                }
                // Inserted ptwrites legitimately share their load's origin;
                // every other instruction must map to a distinct original
                // in the original order.
                let is_ptw = idx < block.instrs.len() && block.instrs[idx].is_ptwrite();
                if !is_ptw {
                    remap.push(loc.orig_ip);
                }
            }
        }
    }
    for w in remap.windows(2) {
        if w[1] == w[0] {
            diags.push(Diagnostic::error(
                LintId::RemapNotInjective,
                Site::module(name),
                format!("two non-inserted instructions map to original {}", w[0]),
            ));
        } else if w[1] < w[0] {
            diags.push(Diagnostic::error(
                LintId::RemapOrderViolation,
                Site::module(name),
                format!("original order inverted: {} after {}", w[1], w[0]),
            ));
        }
    }

    // --- annotations reconcile with classification and plan ---------------
    for cl in classification.loads() {
        let site = || Site::instr(name, cl.proc, cl.block, cl.idx, Some(cl.ip));
        let Some(a) = inst.annots.get(cl.ip) else {
            diags.push(Diagnostic::error(
                LintId::AnnotationMismatch,
                site(),
                "load has no annotation".to_string(),
            ));
            continue;
        };
        if a.class != cl.class() || a.scale != cl.scale || a.offset != cl.disp {
            diags.push(Diagnostic::error(
                LintId::AnnotationMismatch,
                site(),
                format!(
                    "annotation (class {:?}, scale {}, offset {}) disagrees with \
                     classification (class {:?}, scale {}, offset {})",
                    a.class,
                    a.scale,
                    a.offset,
                    cl.class(),
                    cl.scale,
                    cl.disp
                ),
            ));
        }
        let planned = plan.get(cl.ip).expect("classified load planned");
        if a.implied_const != planned.implied_const {
            diags.push(Diagnostic::error(
                LintId::ImpliedCountMismatch,
                site(),
                format!(
                    "annotation implies {} constant loads, plan says {}",
                    a.implied_const, planned.implied_const
                ),
            ));
        }
    }
    if inst.annots.len() != classification.len() {
        diags.push(Diagnostic::error(
            LintId::AnnotationMismatch,
            Site::module(name),
            format!(
                "{} annotations for {} classified loads",
                inst.annots.len(),
                classification.len()
            ),
        ));
    }
    // Per-block conservation (Fig. 2): in a compressed ROI block with any
    // instrumentation, observed + implied loads reconstruct the block's
    // static load count.
    if config.compresses() {
        for proc in &orig.procs {
            if !config.in_roi(&proc.name) {
                continue;
            }
            for block in &proc.blocks {
                let loads: Vec<Ip> = block
                    .load_positions()
                    .map(|idx| orig_layout.ip_of(proc.id, block.id, idx))
                    .collect();
                if loads.is_empty() {
                    continue;
                }
                let decisions: Vec<_> = loads
                    .iter()
                    .map(|ip| plan.get(*ip).expect("planned"))
                    .collect();
                let instrumented = decisions.iter().filter(|d| d.instrument).count() as u64;
                let implied: u64 = decisions.iter().map(|d| d.implied_const as u64).sum();
                let elided = decisions.iter().filter(|d| d.elided).count() as u64;
                if (instrumented > 0 || elided > 0)
                    && instrumented + implied + elided != loads.len() as u64
                {
                    diags.push(Diagnostic::error(
                        LintId::ImpliedCountMismatch,
                        Site {
                            proc: Some(proc.id),
                            block: Some(block.id),
                            ..Site::module(name)
                        },
                        format!(
                            "{}: block observes {instrumented} + implies {implied} + \
                             elides {elided} loads but contains {}",
                            proc.name,
                            loads.len()
                        ),
                    ));
                }
            }
        }
    }

    // --- stats reconcile ---------------------------------------------------
    let mut counts = (0u64, 0u64, 0u64);
    for cl in classification.loads() {
        if !config.in_roi(&orig.proc(cl.proc).name) {
            continue;
        }
        match cl.kind {
            AddrKind::Constant => counts.0 += 1,
            AddrKind::Strided { .. } => counts.1 += 1,
            AddrKind::Irregular => counts.2 += 1,
        }
    }
    let s = &inst.stats;
    let expect = [
        ("constant_loads", s.constant_loads, counts.0),
        ("strided_loads", s.strided_loads, counts.1),
        ("irregular_loads", s.irregular_loads, counts.2),
        (
            "instrumented_loads",
            s.instrumented_loads,
            plan.num_instrumented(),
        ),
        ("elided_loads", s.elided_loads, plan.num_elided()),
        (
            "ptwrites_inserted",
            s.ptwrites_inserted,
            inst.ptw_map.len() as u64,
        ),
        (
            "blocks",
            s.blocks,
            orig.procs.iter().map(|p| p.blocks.len() as u64).sum(),
        ),
    ];
    for (field, got, want) in expect {
        if got != want {
            diags.push(Diagnostic::error(
                LintId::StatsMismatch,
                Site::module(name),
                format!("stats.{field} = {got}, recomputed {want}"),
            ));
        }
    }
    diags
}

fn located_instr(
    module: &LoadModule,
    layout: &memgaze_isa::module::ModuleLayout,
    ip: Ip,
) -> Option<Instr> {
    let (p, b, idx) = layout.locate(ip)?;
    module.proc(p).block(b).instrs.get(idx).copied()
}

fn base_reg_of(
    module: &LoadModule,
    proc: memgaze_isa::ProcId,
    block: memgaze_isa::BlockId,
    idx: usize,
) -> Option<memgaze_isa::Reg> {
    module.proc(proc).block(block).instrs[idx]
        .addr_mode()
        .and_then(|a| a.base)
}

fn index_reg_of(
    module: &LoadModule,
    proc: memgaze_isa::ProcId,
    block: memgaze_isa::BlockId,
    idx: usize,
) -> Option<memgaze_isa::Reg> {
    module.proc(proc).block(block).instrs[idx]
        .addr_mode()
        .and_then(|a| a.index)
}

/// Lint a module end to end: verify the original IR, run the differential
/// classification pass, instrument under `config`, verify the rewritten
/// module, and check the plan artifacts.
pub fn lint_module(module: &LoadModule, config: &InstrumentConfig) -> LintReport {
    let mut diagnostics = verify::verify_module(module);
    let structural_errors = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let mut differential = DiffSummary::default();
    // Instrumenting a structurally broken module would panic; stop at the
    // verifier's findings in that case.
    if !structural_errors {
        let classification = ModuleClassification::analyze(module);
        let (diff_diags, summary) = differential_pass(module, &classification);
        diagnostics.extend(diff_diags);
        differential = summary;

        let plan = InstrPlan::build(module, &classification, config);
        let inst = Instrumenter::new(config.clone()).instrument(module);
        diagnostics.extend(verify::verify_module(&inst.module));
        diagnostics.extend(check_instrumented(
            module,
            &inst,
            &classification,
            &plan,
            config,
        ));
    }
    LintReport {
        module: module.name.clone(),
        diagnostics,
        differential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};

    fn gen(compose: Compose, opt: OptLevel) -> LoadModule {
        codegen::generate(&UKernelSpec {
            compose,
            elems: 64,
            reps: 2,
            opt,
        })
    }

    #[test]
    fn clean_generated_modules_lint_without_errors() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            for compose in [
                Compose::Single(Pattern::strided(1)),
                Compose::Single(Pattern::Irregular),
                Compose::Serial(vec![Pattern::strided(2), Pattern::Irregular]),
            ] {
                let m = gen(compose.clone(), opt);
                let report = lint_module(&m, &InstrumentConfig::default());
                let errors: Vec<_> = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .collect();
                assert!(errors.is_empty(), "{opt:?} {compose:?}: {errors:?}");
                assert_eq!(report.differential.unsound, 0);
                assert!(report.differential.loads > 0);
            }
        }
    }

    #[test]
    fn differential_flags_corrupted_annotation() {
        use memgaze_model::LoadClass;
        let m = gen(Compose::Single(Pattern::strided(1)), OptLevel::O0);
        let config = InstrumentConfig::default();
        let classification = ModuleClassification::analyze(&m);
        let plan = InstrPlan::build(&m, &classification, &config);
        let mut inst = Instrumenter::default().instrument(&m);
        // Flip one annotation's class.
        let (&ip, annot) = inst.annots.iter().next().expect("has annotations");
        let mut bad = *annot;
        bad.class = match bad.class {
            LoadClass::Constant => LoadClass::Irregular,
            _ => LoadClass::Constant,
        };
        inst.annots.insert(ip, bad);
        let diags = check_instrumented(&m, &inst, &classification, &plan, &config);
        assert!(diags.iter().any(|d| d.lint == LintId::AnnotationMismatch));
    }

    #[test]
    fn checker_flags_remapped_ptwrite() {
        let m = gen(Compose::Single(Pattern::Irregular), OptLevel::O3);
        let config = InstrumentConfig::default();
        let classification = ModuleClassification::analyze(&m);
        let plan = InstrPlan::build(&m, &classification, &config);
        let mut inst = Instrumenter::default().instrument(&m);
        // Point one ptwrite at a different load.
        let ips: Vec<Ip> = inst.ptw_map.keys().copied().collect();
        let loads: Vec<Ip> = inst.ptw_map.values().map(|i| i.load_ip).collect();
        let victim = ips[0];
        let other_load = loads.iter().find(|&&l| l != loads[0]).copied().unwrap();
        inst.ptw_map.get_mut(&victim).unwrap().load_ip = other_load;
        let diags = check_instrumented(&m, &inst, &classification, &plan, &config);
        assert!(
            diags.iter().any(|d| matches!(
                d.lint,
                LintId::MissingPtwrite | LintId::DuplicatePtwrite | LintId::PtwriteGroupOrder
            )),
            "{diags:?}"
        );
    }
}
