//! A deliberately small HTTP/1.1 implementation over [`std::io`].
//!
//! The server speaks exactly the subset its protocol needs — request
//! line, headers, `Content-Length` and `chunked` bodies, keep-alive —
//! with hard caps on header and body size so a hostile peer cannot make
//! a handler allocate unboundedly. No external dependency, same as the
//! rest of the workspace's infrastructure crates.

use std::io::{BufRead, Read, Write};

/// Upper bound on the request line plus all headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on header count.
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request target as sent (no query parsing; the protocol is
    /// path-shaped).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (empty when the request had none).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive connection.
    Closed,
    /// The bytes on the wire were not HTTP we understand.
    Malformed(String),
    /// The head or body exceeded a hard cap.
    TooLarge {
        /// The cap that was exceeded, in bytes.
        limit: usize,
    },
    /// The socket failed mid-request (disconnect, timeout).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(d) => write!(f, "malformed request: {d}"),
            HttpError::TooLarge { limit } => write!(f, "request exceeds {limit} bytes"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, bounding total bytes.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = r.read(&mut byte)?;
        if n == 0 {
            if line.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed("eof mid-line".into()));
        }
        *budget = budget.checked_sub(1).ok_or(HttpError::TooLarge {
            limit: MAX_HEAD_BYTES,
        })?;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-utf8 header line".into()));
        }
        line.push(byte[0]);
    }
}

/// Read exactly `n` body bytes, or fail as truncated.
fn read_exact_body(r: &mut impl BufRead, n: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    let got = r.take(n as u64).read_to_end(&mut body)?;
    if got != n {
        return Err(HttpError::Malformed(format!(
            "body truncated: got {got} of {n} bytes"
        )));
    }
    Ok(body)
}

/// Decode a `Transfer-Encoding: chunked` body, bounded by `max_body`.
fn read_chunked_body(r: &mut impl BufRead, max_body: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let mut size_budget = 128usize;
        let size_line = read_line(r, &mut size_budget)?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size {size_hex:?}")))?;
        if size == 0 {
            // Trailer section: zero or more header lines, then a blank.
            loop {
                let mut budget = 1024usize;
                if read_line(r, &mut budget)?.is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > max_body {
            return Err(HttpError::TooLarge { limit: max_body });
        }
        body.extend_from_slice(&read_exact_body(r, size)?);
        let mut crlf_budget = 8usize;
        if !read_line(r, &mut crlf_budget)?.is_empty() {
            return Err(HttpError::Malformed("missing chunk terminator".into()));
        }
    }
}

/// Read one request. `Ok(None)` is never returned — a cleanly closed
/// idle connection surfaces as [`HttpError::Closed`], which callers
/// treat as the end of keep-alive, not a fault.
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_line(r, &mut head_budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line without target".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut head_budget)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge {
                limit: MAX_HEAD_BYTES,
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let chunked = req
        .header("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    if chunked {
        req.body = read_chunked_body(r, max_body)?;
    } else if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
        if len > max_body {
            return Err(HttpError::TooLarge { limit: max_body });
        }
        req.body = read_exact_body(r, len)?;
    }
    Ok(req)
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the computed `Content-Length`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

/// Reason phrase for the handful of status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

impl Response {
    /// An empty response with this status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A JSON response (the caller supplies ready-rendered JSON).
    pub fn json(status: u16, body: String) -> Response {
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(body.into_bytes())
    }

    /// A binary (`application/octet-stream`) response.
    pub fn binary(status: u16, body: Vec<u8>) -> Response {
        Response::new(status)
            .header("Content-Type", "application/octet-stream")
            .with_body(body)
    }

    /// Append a header.
    pub fn header(mut self, name: &str, value: impl std::fmt::Display) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Set the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serialize onto the wire with a correct `Content-Length`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Escape a string for a JSON body.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lower-case hex of `bytes` (delta frames travel inside JSON lines).
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex`]; `None` on odd length or non-hex digits.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), 1 << 20)
    }

    #[test]
    fn parses_content_length_body() {
        let req =
            parse(b"POST /sessions HTTP/1.1\r\nContent-Length: 5\r\nX-K: v\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.header("x-k"), Some("v"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_chunked_body() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let req = parse(raw).unwrap();
        assert_eq!(req.body, b"wikipedia");
    }

    #[test]
    fn rejects_oversized_bodies_typed() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        match read_request(&mut BufReader::new(&raw[..]), 1024) {
            Err(HttpError::TooLarge { limit }) => assert_eq!(limit, 1024),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffff\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..]), 1024),
            Err(HttpError::TooLarge { .. })
        ));
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn truncated_body_is_malformed() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi";
        assert!(matches!(parse(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_roundtrips_on_the_wire() {
        let mut wire = Vec::new();
        Response::json(201, "{\"id\":\"s1\"}".into())
            .header("Retry-After", 2)
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"id\":\"s1\"}"));
    }

    #[test]
    fn hex_roundtrips() {
        let data = [0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(unhex(&hex(&data)).unwrap(), data);
        assert_eq!(unhex("zz"), None);
        assert_eq!(unhex("abc"), None);
    }
}
