//! Session lifecycle: create → feed → seal → query, with admission
//! control and live delta publication.
//!
//! A session owns an ordered sequence of shard uploads. Each upload is
//! a complete v2 MGZT container (header + shard frames + trailer) whose
//! frames are decoded through [`ShardReader`] and analyzed shard by
//! shard into [`PartialReport`] delta frames — the same per-shard
//! partials the fan-out coordinator and the store's result cache merge,
//! so the sealed report inherits their proven merge laws: folding the
//! per-shard partials in feed order and finishing once is bit-identical
//! to a resident [`StreamingAnalyzer`](memgaze_analysis::StreamingAnalyzer)
//! pass over the same shards.
//!
//! Concurrency discipline is a *combining lock*: uploads enter a
//! bounded FIFO queue under the session mutex, and whichever handler
//! finds no drainer active becomes the drainer, analyzing queued
//! uploads (lock released during analysis) until the queue is empty.
//! Shard order is strict, memory is bounded by `queue_depth` ×
//! `max_upload_bytes`, and no session ever needs a dedicated thread.

use crate::error::ServeError;
use crate::http::hex;
use crate::ServeConfig;
use memgaze_analysis::{
    AnomalyMark, PartialReport, StreamingAnalyzer, StreamingReport, WindowRing, WindowStats,
};
use memgaze_model::{AuxAnnotations, ShardReader, SymbolTable, TraceMeta};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Everything a seal produces, shared out read-only.
#[derive(Debug)]
pub struct SealedReport {
    /// The merged [`PartialReport`], encoded with the MGZP codec.
    pub partial_bytes: Vec<u8>,
    /// Accumulated trace metadata (header fields from the first upload,
    /// trailer totals summed across uploads).
    pub meta: TraceMeta,
    /// Shards fed across all uploads.
    pub shards: u64,
    /// Samples fed across all uploads.
    pub samples: u64,
}

impl SealedReport {
    /// Decode and finish into the final report — the client-side half
    /// of the bit-identity contract.
    pub fn finish(&self) -> Result<StreamingReport, String> {
        let partial = PartialReport::decode(&self.partial_bytes).map_err(|e| e.to_string())?;
        Ok(partial.finish(&self.meta))
    }
}

/// Point-in-time session status.
#[derive(Debug, Clone, Copy)]
pub struct SessionStatus {
    /// Whether the session has been sealed.
    pub sealed: bool,
    /// Shards analyzed so far.
    pub shards: u64,
    /// Samples analyzed so far.
    pub samples: u64,
    /// Upload bytes accepted so far (analyzed + queued).
    pub bytes: u64,
    /// Uploads waiting in the queue right now.
    pub queued: usize,
    /// High-water mark of `bytes` (equals `bytes`; uploads are never
    /// returned).
    pub peak_bytes: u64,
}

/// What one feed call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeedSummary {
    /// Shards this call analyzed (its own upload and any it drained for
    /// other callers).
    pub shards: u64,
    /// Samples this call analyzed.
    pub samples: u64,
    /// Uploads still queued when the call returned (nonzero only when
    /// another handler was draining).
    pub queued: usize,
}

/// Per-shard analysis output, before it is folded into session state.
struct UploadAnalysis {
    header_meta: TraceMeta,
    trailer: TraceMeta,
    shards: Vec<(PartialReport, u64)>,
}

struct SessionInner {
    sealed: Option<Arc<SealedReport>>,
    /// First decode failure; poisons the session (data completeness can
    /// no longer be guaranteed).
    error: Option<String>,
    queue: VecDeque<Vec<u8>>,
    queued_bytes: u64,
    /// True while some handler is the active drainer.
    draining: bool,
    accepted_bytes: u64,
    shards: u64,
    samples: u64,
    meta: Option<TraceMeta>,
    partials: Vec<PartialReport>,
    subscribers: Vec<TcpStream>,
    last_touch: Instant,
    /// Per-shard partial clones accumulated toward the next rolling
    /// watch window.
    window_partials: Vec<PartialReport>,
    window_samples: u64,
    /// Rolling window ring + drift detection for this session.
    ring: WindowRing,
}

/// One live analysis session.
pub struct Session {
    /// Session id, unique within the server.
    pub id: String,
    inner: Mutex<SessionInner>,
    idle: Condvar,
    /// Server-wide watch-event hub this session publishes windows to.
    hub: Arc<WatchHub>,
}

/// The server-wide `GET /watch/events` fan-out point: every session's
/// closed windows and anomaly marks are published to every subscriber.
#[derive(Default)]
pub struct WatchHub {
    subscribers: Mutex<Vec<TcpStream>>,
}

impl WatchHub {
    fn subs(&self) -> MutexGuard<'_, Vec<TcpStream>> {
        self.subscribers.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register a live watch subscriber.
    pub fn subscribe(&self, stream: TcpStream) {
        self.subs().push(stream);
        memgaze_obs::counter!("serve.watch_subscribers").add(1);
    }

    /// Watch subscribers right now.
    pub fn subscriber_count(&self) -> usize {
        self.subs().len()
    }

    /// Publish one event to every watch subscriber.
    pub fn publish(&self, event: &str, data: &str) {
        publish(&mut self.subs(), event, data);
    }

    /// Publish the final `drained` event and close every subscriber.
    pub fn close(&self, sessions_sealed: usize) {
        let mut subs = self.subs();
        publish(
            &mut subs,
            "drained",
            &format!("{{\"sessions_sealed\":{sessions_sealed}}}"),
        );
        subs.clear();
    }
}

/// Poison-proof lock: a handler that panicked while holding the mutex
/// must not take the whole session (and with it the daemon's ability to
/// answer for this id) down with it.
fn lock(m: &Mutex<SessionInner>) -> MutexGuard<'_, SessionInner> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Session {
    fn new(id: String, live: memgaze_analysis::LiveConfig, hub: Arc<WatchHub>) -> Session {
        Session {
            id,
            inner: Mutex::new(SessionInner {
                sealed: None,
                error: None,
                queue: VecDeque::new(),
                queued_bytes: 0,
                draining: false,
                accepted_bytes: 0,
                shards: 0,
                samples: 0,
                meta: None,
                partials: Vec::new(),
                subscribers: Vec::new(),
                last_touch: Instant::now(),
                window_partials: Vec::new(),
                window_samples: 0,
                ring: WindowRing::new(live),
            }),
            idle: Condvar::new(),
            hub,
        }
    }

    /// Current status snapshot.
    pub fn status(&self) -> SessionStatus {
        let g = lock(&self.inner);
        SessionStatus {
            sealed: g.sealed.is_some(),
            shards: g.shards,
            samples: g.samples,
            bytes: g.accepted_bytes,
            queued: g.queue.len(),
            peak_bytes: g.accepted_bytes,
        }
    }

    /// Admission check + enqueue, without draining. Split out from
    /// [`feed`](Self::feed) so the rejection paths are directly
    /// testable.
    pub fn try_enqueue(&self, body: Vec<u8>, cfg: &ServeConfig) -> Result<usize, ServeError> {
        let mut g = lock(&self.inner);
        g.last_touch = Instant::now();
        if g.sealed.is_some() {
            return Err(ServeError::Sealed {
                id: self.id.clone(),
            });
        }
        if let Some(detail) = &g.error {
            return Err(ServeError::Decode {
                session: self.id.clone(),
                detail: detail.clone(),
            });
        }
        let would_hold = g.accepted_bytes + body.len() as u64;
        if would_hold > cfg.session_bytes {
            memgaze_obs::counter!("serve.rejected").add(1);
            return Err(ServeError::ByteBudget {
                session: self.id.clone(),
                budget: cfg.session_bytes,
                would_hold,
            });
        }
        if g.queue.len() >= cfg.queue_depth {
            memgaze_obs::counter!("serve.rejected").add(1);
            return Err(ServeError::QueueFull {
                session: self.id.clone(),
                depth: cfg.queue_depth,
            });
        }
        g.accepted_bytes = would_hold;
        g.queued_bytes += body.len() as u64;
        g.queue.push_back(body);
        Ok(g.queue.len())
    }

    /// Feed one uploaded container: enqueue, then drain the queue if no
    /// other handler is already doing so. Deltas are published to
    /// subscribers as each shard's partial lands.
    pub fn feed(&self, body: Vec<u8>, cfg: &ServeConfig) -> Result<FeedSummary, ServeError> {
        let mut span = memgaze_obs::span("serve.feed");
        if span.is_active() {
            span.set_label(format!("{} ({} bytes)", self.id, body.len()));
        }
        self.try_enqueue(body, cfg)?;
        let mut g = lock(&self.inner);
        if g.draining {
            // Another handler owns the drain; our upload keeps FIFO
            // order in its queue.
            return Ok(FeedSummary {
                queued: g.queue.len(),
                ..FeedSummary::default()
            });
        }
        g.draining = true;
        let outcome = self.drain_queue(g, cfg);
        let mut g = lock(&self.inner);
        g.draining = false;
        g.last_touch = Instant::now();
        drop(g);
        self.idle.notify_all();
        outcome
    }

    /// Drain the pending queue in FIFO order; the caller must have set
    /// `draining`. The lock is released while a batch is analyzed so
    /// concurrent feeds can still enqueue.
    fn drain_queue<'a>(
        &'a self,
        mut g: MutexGuard<'a, SessionInner>,
        cfg: &ServeConfig,
    ) -> Result<FeedSummary, ServeError> {
        let mut summary = FeedSummary::default();
        while let Some(upload) = g.queue.pop_front() {
            g.queued_bytes = g.queued_bytes.saturating_sub(upload.len() as u64);
            drop(g);
            let started = Instant::now();
            let analyzed = analyze_upload(&upload, cfg);
            memgaze_obs::histogram!("serve.feed_us")
                .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
            g = lock(&self.inner);
            match analyzed {
                Ok(an) => {
                    if let Err(e) = self.absorb(&mut g, an, &mut summary, cfg) {
                        g.error = Some(e.to_string());
                        return Err(e);
                    }
                }
                Err(e) => {
                    let err = ServeError::decode(&self.id, &e);
                    g.error = Some(err.to_string());
                    memgaze_obs::counter!("serve.decode_failures").add(1);
                    return Err(err);
                }
            }
        }
        summary.queued = 0;
        Ok(summary)
    }

    /// Fold one analyzed upload into session state and publish deltas.
    fn absorb(
        &self,
        g: &mut MutexGuard<'_, SessionInner>,
        an: UploadAnalysis,
        summary: &mut FeedSummary,
        cfg: &ServeConfig,
    ) -> Result<(), ServeError> {
        match &mut g.meta {
            None => {
                let mut meta = an.header_meta.clone();
                meta.total_loads = an.trailer.total_loads;
                meta.total_instrumented_loads = an.trailer.total_instrumented_loads;
                g.meta = Some(meta);
            }
            Some(meta) => {
                if meta.workload != an.header_meta.workload
                    || meta.period != an.header_meta.period
                    || meta.buffer_bytes != an.header_meta.buffer_bytes
                {
                    return Err(ServeError::MetaMismatch {
                        detail: format!(
                            "upload ({}, period {}, buffer {}) vs session ({}, period {}, buffer {})",
                            an.header_meta.workload,
                            an.header_meta.period,
                            an.header_meta.buffer_bytes,
                            meta.workload,
                            meta.period,
                            meta.buffer_bytes
                        ),
                    });
                }
                meta.total_loads += an.trailer.total_loads;
                meta.total_instrumented_loads += an.trailer.total_instrumented_loads;
            }
        }
        for (partial, samples) in an.shards {
            let shard_no = g.shards;
            g.shards += 1;
            g.samples += samples;
            summary.shards += 1;
            summary.samples += samples;
            memgaze_obs::counter!("serve.shards_fed").add(1);
            if !g.subscribers.is_empty() {
                let data = format!(
                    "{{\"session\":\"{}\",\"shard\":{},\"samples\":{},\"partial\":\"{}\"}}",
                    self.id,
                    shard_no,
                    samples,
                    hex(&partial.encode())
                );
                publish(&mut g.subscribers, "shard", &data);
            }
            g.window_partials.push(partial.clone());
            g.window_samples += samples;
            g.partials.push(partial);
            if g.window_partials.len() >= cfg.watch_window_shards.max(1) {
                self.close_watch_window(g, cfg);
            }
        }
        Ok(())
    }

    /// Fold the accumulated per-shard partials into one rolling window,
    /// push it through the drift ring, and publish `window`/`anomaly`
    /// events on the server-wide watch hub.
    fn close_watch_window(&self, g: &mut MutexGuard<'_, SessionInner>, cfg: &ServeConfig) {
        let partials = std::mem::take(&mut g.window_partials);
        let samples = std::mem::replace(&mut g.window_samples, 0);
        let merged = match PartialReport::merge_many(
            partials,
            cfg.analysis.footprint_block,
            cfg.analysis.reuse_block,
            &cfg.locality_sizes,
        ) {
            Ok(m) => m,
            Err(_) => return, // incompatible partials cannot form a window
        };
        let mut meta = g
            .meta
            .clone()
            .unwrap_or_else(|| TraceMeta::new("watch-window", 1, 0));
        meta.total_loads = samples * meta.period;
        meta.total_instrumented_loads = 0;
        let report = merged.finish(&meta);
        let (stats, marks) = g.ring.push(report);
        memgaze_obs::counter!("serve.watch_windows").add(1);
        self.hub.publish("window", &window_json(&self.id, &stats));
        for m in &marks {
            memgaze_obs::counter!("serve.watch_anomalies").add(1);
            self.hub.publish("anomaly", &anomaly_json(&self.id, m));
        }
    }

    /// Seal the session: wait out any active drainer, drain whatever is
    /// still queued, merge all per-shard partials, and freeze the
    /// outcome. Idempotent — a second seal returns the same report.
    pub fn seal(&self, cfg: &ServeConfig) -> Result<Arc<SealedReport>, ServeError> {
        let mut span = memgaze_obs::span("serve.seal");
        if span.is_active() {
            span.set_label(self.id.clone());
        }
        let mut g = lock(&self.inner);
        while g.draining {
            g = self.idle.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        if let Some(sealed) = &g.sealed {
            return Ok(Arc::clone(sealed));
        }
        if let Some(detail) = &g.error {
            return Err(ServeError::Decode {
                session: self.id.clone(),
                detail: detail.clone(),
            });
        }
        // Become the drainer for anything still queued.
        if !g.queue.is_empty() {
            g.draining = true;
            let outcome = self.drain_queue(g, cfg);
            g = lock(&self.inner);
            g.draining = false;
            self.idle.notify_all();
            outcome?;
        }

        // Flush a trailing partial watch window so the live view covers
        // the stream's tail before the final `sealed` event.
        if !g.window_partials.is_empty() {
            self.close_watch_window(&mut g, cfg);
        }
        let partials = std::mem::take(&mut g.partials);
        let merged = PartialReport::merge_many(
            partials,
            cfg.analysis.footprint_block,
            cfg.analysis.reuse_block,
            &cfg.locality_sizes,
        )
        .map_err(|e| ServeError::BadRequest {
            detail: format!("merge failed: {e}"),
        })?;
        let meta = g
            .meta
            .clone()
            .unwrap_or_else(|| TraceMeta::new("empty-session", 1, 0));
        let sealed = Arc::new(SealedReport {
            partial_bytes: merged.encode(),
            meta,
            shards: g.shards,
            samples: g.samples,
        });
        g.sealed = Some(Arc::clone(&sealed));
        g.last_touch = Instant::now();
        let data = format!(
            "{{\"session\":\"{}\",\"shards\":{},\"samples\":{}}}",
            self.id, sealed.shards, sealed.samples
        );
        publish(&mut g.subscribers, "sealed", &data);
        // Closing the streams ends every subscriber's event loop.
        g.subscribers.clear();
        memgaze_obs::counter!("serve.sessions_sealed").add(1);
        Ok(sealed)
    }

    /// The sealed report, if the session has been sealed.
    pub fn sealed(&self) -> Result<Arc<SealedReport>, ServeError> {
        let g = lock(&self.inner);
        match &g.sealed {
            Some(s) => Ok(Arc::clone(s)),
            None => Err(ServeError::NotSealed {
                id: self.id.clone(),
            }),
        }
    }

    /// Register a live-delta subscriber. The stream receives one SSE
    /// `shard` event per future shard and a final `sealed` event.
    ///
    /// If a seal won the race between the route's sealed check and this
    /// registration (e.g. SIGTERM drain), the client already holds an
    /// open SSE stream — so the final `sealed` event is written to it
    /// directly before the socket closes, never a torn stream.
    pub fn subscribe(&self, stream: TcpStream) -> Result<(), ServeError> {
        let mut g = lock(&self.inner);
        if let Some(sealed) = &g.sealed {
            let data = format!(
                "{{\"session\":\"{}\",\"shards\":{},\"samples\":{}}}",
                self.id, sealed.shards, sealed.samples
            );
            let mut late = vec![stream];
            publish(&mut late, "sealed", &data);
            return Ok(());
        }
        g.subscribers.push(stream);
        memgaze_obs::counter!("serve.subscribers").add(1);
        Ok(())
    }

    /// Live delta subscribers right now.
    pub fn subscriber_count(&self) -> usize {
        lock(&self.inner).subscribers.len()
    }

    /// Seconds since the session was last touched.
    pub fn idle_for(&self) -> std::time::Duration {
        lock(&self.inner).last_touch.elapsed()
    }
}

/// Render one closed window as a watch-hub event payload.
fn window_json(session: &str, s: &WindowStats) -> String {
    format!(
        "{{\"session\":\"{session}\",\"window\":{},\"samples\":{},\"observed\":{},\
         \"f_hat_bytes\":{:.3},\"delta_f\":{:.6},\"df_irr_pct\":{:.3},\"a_const_pct\":{:.3},\
         \"mean_d\":{:.3},\"kappa\":{:.6}}}",
        s.window,
        s.samples,
        s.observed,
        s.f_hat_bytes,
        s.delta_f,
        s.delta_f_irr_pct,
        s.a_const_pct,
        s.mean_d,
        s.kappa
    )
}

/// Render one anomaly mark as a watch-hub event payload.
fn anomaly_json(session: &str, m: &AnomalyMark) -> String {
    format!(
        "{{\"session\":\"{session}\",\"window\":{},\"metric\":\"{}\",\"ratio\":{:.3},\
         \"detail\":\"{}\"}}",
        m.window,
        m.kind.metric(),
        m.ratio,
        crate::http::json_escape(&m.detail())
    )
}

/// Write one SSE event to every subscriber, dropping the dead ones.
fn publish(subscribers: &mut Vec<TcpStream>, event: &str, data: &str) {
    let _span = memgaze_obs::span("serve.publish");
    subscribers.retain_mut(|s| {
        write!(s, "event: {event}\ndata: {data}\n\n")
            .and_then(|_| s.flush())
            .is_ok()
    });
    memgaze_obs::counter!("serve.deltas_published").add(1);
}

/// Decode one uploaded container and analyze each shard into its
/// partial — a transient [`StreamingAnalyzer`] per shard over empty
/// annotations (the wire protocol carries traces, not annotation
/// sidecars), exactly the per-frame unit the store's result cache
/// proved merge-equivalent to a resident pass.
fn analyze_upload(
    body: &[u8],
    cfg: &ServeConfig,
) -> Result<UploadAnalysis, memgaze_model::ModelError> {
    let _span = memgaze_obs::span("serve.parse");
    let annots = AuxAnnotations::new();
    let symbols = SymbolTable::new();
    let mut reader = ShardReader::new(body)?;
    let header_meta = reader.meta().clone();
    let mut shards = Vec::new();
    for shard in reader.by_ref() {
        let shard = shard?;
        let mut sa = StreamingAnalyzer::new(&annots, &symbols, cfg.analysis)
            .with_locality_sizes(&cfg.locality_sizes);
        sa.ingest_shard(&shard.samples);
        shards.push((sa.into_partial(), shard.samples.len() as u64));
    }
    let trailer = reader.meta().clone();
    Ok(UploadAnalysis {
        header_meta,
        trailer,
        shards,
    })
}

/// The server's session table: creation, lookup, idle reaping, and the
/// drain switch that turns new work away during shutdown.
pub struct Registry {
    /// Shared admission-control and analysis configuration.
    pub cfg: ServeConfig,
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    hub: Arc<WatchHub>,
}

impl Registry {
    /// A registry enforcing `cfg`'s limits.
    pub fn new(cfg: ServeConfig) -> Registry {
        Registry {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            hub: Arc::new(WatchHub::default()),
        }
    }

    /// The server-wide watch-event hub.
    pub fn watch_hub(&self) -> &Arc<WatchHub> {
        &self.hub
    }

    fn table(&self) -> MutexGuard<'_, HashMap<String, Arc<Session>>> {
        self.sessions.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Create a session, enforcing the live-session cap.
    pub fn create(&self) -> Result<Arc<Session>, ServeError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(ServeError::Draining);
        }
        let mut table = self.table();
        if table.len() >= self.cfg.max_sessions {
            memgaze_obs::counter!("serve.rejected").add(1);
            return Err(ServeError::SessionLimit {
                limit: self.cfg.max_sessions,
            });
        }
        let id = format!("s{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let session = Arc::new(Session::new(
            id.clone(),
            self.cfg.watch_live,
            Arc::clone(&self.hub),
        ));
        table.insert(id, Arc::clone(&session));
        memgaze_obs::counter!("serve.sessions_created").add(1);
        memgaze_obs::gauge!("serve.live_sessions").set_max(table.len() as u64);
        Ok(session)
    }

    /// Look up a session by id.
    pub fn get(&self, id: &str) -> Result<Arc<Session>, ServeError> {
        self.table()
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::UnknownSession { id: id.to_string() })
    }

    /// Whether feeds should be refused because the server is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Remove a session (client delete or reaper). Handlers still
    /// holding its `Arc` finish safely; new lookups see 404.
    pub fn remove(&self, id: &str) -> bool {
        self.table().remove(id).is_some()
    }

    /// Session ids currently live, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.table().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Drop sessions idle past the configured timeout. Returns how many
    /// were reaped.
    pub fn reap_idle(&self) -> usize {
        let timeout = self.cfg.idle_timeout;
        let mut table = self.table();
        let before = table.len();
        table.retain(|_, s| s.idle_for() < timeout);
        let reaped = before - table.len();
        if reaped > 0 {
            memgaze_obs::counter!("serve.sessions_reaped").add(reaped as u64);
        }
        reaped
    }

    /// Enter drain mode and seal every open session, flushing deltas.
    /// Returns `(sessions sealed, seal failures)`.
    pub fn seal_all(&self) -> (usize, usize) {
        self.draining.store(true, Ordering::SeqCst);
        let sessions: Vec<Arc<Session>> = self.table().values().cloned().collect();
        let mut sealed = 0usize;
        let mut failures = 0usize;
        for s in sessions {
            let already = s.status().sealed;
            match s.seal(&self.cfg) {
                Ok(_) if !already => sealed += 1,
                Ok(_) => {}
                Err(_) => failures += 1,
            }
        }
        // Watch subscribers get a final `drained` event, then close.
        self.hub.close(sealed);
        (sealed, failures)
    }
}
