//! In-process HTTP client harness.
//!
//! Tests, the CI smoke, and the bench driver all speak to the server
//! through this client — over real sockets, through the real parser —
//! so the bit-identity proof covers the wire format, not just the
//! session logic. Each request uses a fresh connection; uploads can be
//! sent either with `Content-Length` or as `chunked` transfer in any
//! chunk size, which is how the chunking axis of the equivalence matrix
//! is driven.

use crate::http::unhex;
use crate::session::SealedReport;
use memgaze_model::TraceMeta;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Blocking client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr }
    }

    /// Send one request on a fresh connection. `chunk` switches the
    /// body to chunked transfer encoding with the given chunk size.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        chunk: Option<usize>,
    ) -> std::io::Result<HttpResponse> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        write_request(&mut stream, method, path, body, chunk)?;
        read_response(&mut BufReader::new(stream))
    }

    /// `POST /sessions` → new session id.
    pub fn create_session(&self) -> Result<String, String> {
        let resp = self
            .request("POST", "/sessions", &[], None)
            .map_err(|e| e.to_string())?;
        if resp.status != 201 {
            return Err(format!("create: status {}: {}", resp.status, resp.text()));
        }
        json_str_field(&resp.text(), "id").ok_or_else(|| "create: no id in response".to_string())
    }

    /// Feed one container upload, optionally chunked.
    pub fn feed(
        &self,
        id: &str,
        container: &[u8],
        chunk: Option<usize>,
    ) -> std::io::Result<HttpResponse> {
        self.request("POST", &format!("/sessions/{id}/shards"), container, chunk)
    }

    /// Seal and pull the report: merged partial from the body, metadata
    /// from the `X-Memgaze-*` headers.
    pub fn seal(&self, id: &str) -> Result<SealedReport, String> {
        let resp = self
            .request("POST", &format!("/sessions/{id}/seal"), &[], None)
            .map_err(|e| e.to_string())?;
        if resp.status != 200 {
            return Err(format!("seal: status {}: {}", resp.status, resp.text()));
        }
        sealed_from_response(&resp)
    }

    /// Subscribe to a session's delta stream; returns the raw SSE
    /// events `(event, data)` read until the server closes the stream.
    pub fn subscribe_collect(&self, id: &str) -> std::io::Result<SseCollector> {
        self.sse_collect(&format!("/sessions/{id}/deltas"))
    }

    /// Subscribe to the server-wide watch stream (`GET /watch/events`):
    /// rolling-window reports and anomaly marks from every session.
    pub fn watch_collect(&self) -> std::io::Result<SseCollector> {
        self.sse_collect("/watch/events")
    }

    fn sse_collect(&self, path: &str) -> std::io::Result<SseCollector> {
        let mut stream = TcpStream::connect(self.addr)?;
        write_request(&mut stream, "GET", path, &[], None)?;
        let mut reader = BufReader::new(stream);
        // Consume the response head; events follow until EOF.
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            if line == "\r\n" || line == "\n" {
                break;
            }
        }
        Ok(SseCollector { reader })
    }
}

/// Incremental reader over an open SSE stream.
pub struct SseCollector {
    reader: BufReader<TcpStream>,
}

impl SseCollector {
    /// Read events until the server closes the stream.
    pub fn collect(mut self) -> Vec<(String, String)> {
        let mut events = Vec::new();
        let mut event = String::new();
        let mut data = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let line = line.trim_end();
            if line.is_empty() {
                if !event.is_empty() || !data.is_empty() {
                    events.push((std::mem::take(&mut event), std::mem::take(&mut data)));
                }
            } else if let Some(v) = line.strip_prefix("event: ") {
                event = v.to_string();
            } else if let Some(v) = line.strip_prefix("data: ") {
                data = v.to_string();
            }
        }
        events
    }
}

/// Write a request, with either `Content-Length` or chunked transfer.
fn write_request(
    w: &mut impl Write,
    method: &str,
    path: &str,
    body: &[u8],
    chunk: Option<usize>,
) -> std::io::Result<()> {
    match chunk {
        Some(size) if !body.is_empty() => {
            write!(
                w,
                "{method} {path} HTTP/1.1\r\nHost: memgaze\r\nTransfer-Encoding: chunked\r\n\r\n"
            )?;
            for piece in body.chunks(size.max(1)) {
                write!(w, "{:x}\r\n", piece.len())?;
                w.write_all(piece)?;
                write!(w, "\r\n")?;
            }
            write!(w, "0\r\n\r\n")?;
        }
        _ => {
            write!(
                w,
                "{method} {path} HTTP/1.1\r\nHost: memgaze\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )?;
            w.write_all(body)?;
        }
    }
    w.flush()
}

/// Read one response: status line, headers, `Content-Length` body.
fn read_response(r: &mut BufReader<TcpStream>) -> std::io::Result<HttpResponse> {
    let bad = |d: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, d.to_string());
    let mut line = String::new();
    r.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(bad("eof in headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Pull a `"key":"value"` string field out of a flat JSON object — all
/// this client ever needs to parse.
pub fn json_str_field(json: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = json.find(&marker)? + marker.len();
    let rest = &json[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Reconstruct a [`SealedReport`] from a seal/report response.
pub fn sealed_from_response(resp: &HttpResponse) -> Result<SealedReport, String> {
    let num = |name: &str| -> Result<u64, String> {
        resp.header(name)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("missing or bad header {name}"))
    };
    let meta = TraceMeta {
        workload: resp
            .header("x-memgaze-workload")
            .unwrap_or_default()
            .to_string(),
        period: num("x-memgaze-period")?,
        buffer_bytes: num("x-memgaze-buffer-bytes")?,
        total_loads: num("x-memgaze-total-loads")?,
        total_instrumented_loads: num("x-memgaze-instrumented-loads")?,
    };
    Ok(SealedReport {
        partial_bytes: resp.body.clone(),
        meta,
        shards: num("x-memgaze-shards")?,
        samples: num("x-memgaze-samples")?,
    })
}

/// Decode the `partial` hex field of a `shard` delta event.
pub fn delta_partial_bytes(data: &str) -> Option<Vec<u8>> {
    unhex(&json_str_field(data, "partial")?)
}
