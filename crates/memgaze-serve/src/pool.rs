//! A bounded worker pool for connection handling.
//!
//! The server's concurrency ceiling is the pool size: each accepted
//! connection is handled to completion on one worker, so at most
//! `threads` requests are in flight and everything else waits in the
//! accept backlog — admission control by construction, no unbounded
//! task spawning. A panicking handler is caught and counted rather than
//! allowed to shrink the pool: a long-running daemon cannot afford to
//! leak capacity one panic at a time.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool over one shared job queue.
pub struct ThreadPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("memgaze-serve-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    memgaze_obs::counter!("serve.handler_panics").add(1);
                                }
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queue a job; returns `false` if the pool has already shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// A cloneable submission handle that outlives borrows of the pool.
    /// `join` only completes once every handle is dropped, so holders
    /// must be torn down first (the server joins its accept thread
    /// before joining the pool).
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            tx: self.tx.clone().expect("pool not yet shut down"),
        }
    }

    /// Stop accepting jobs and wait for every queued job to finish.
    pub fn join(mut self) {
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Submission side of a [`ThreadPool`], cloneable across threads.
#[derive(Clone)]
pub struct PoolHandle {
    tx: mpsc::Sender<Job>,
}

impl PoolHandle {
    /// Queue a job; returns `false` once the pool's workers are gone.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.tx.send(Box::new(job)).is_ok()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            assert!(pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_job_does_not_shrink_the_pool() {
        let pool = ThreadPool::new(2);
        for _ in 0..8 {
            pool.execute(|| panic!("handler bug"));
        }
        // After eight panics on two workers, the pool must still run jobs.
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
