//! `memgaze serve`: a long-running, concurrent streaming-analysis
//! daemon.
//!
//! Every other MemGaze entry point is a one-shot run; production trace
//! analysis (HMTT's online analyzer, BSC's live access-pattern tooling)
//! is continuous ingest with live reporting. This crate keeps
//! [`StreamingAnalyzer`](memgaze_analysis::StreamingAnalyzer) sessions
//! alive across requests behind a hand-rolled HTTP/1.1 server over
//! [`std::net`] and a bounded [`pool::ThreadPool`] — the same zero-
//! dependency discipline as `memgaze-obs`.
//!
//! ## Protocol
//!
//! | Request | Meaning |
//! |---|---|
//! | `POST /sessions` | create a session (201 + `{"id": ...}`) |
//! | `POST /sessions/{id}/shards` | feed one v2 MGZT container (202) |
//! | `GET /sessions/{id}/deltas` | SSE stream of per-shard delta frames |
//! | `POST /sessions/{id}/seal` | merge + freeze; returns the MGZP partial |
//! | `GET /sessions/{id}/report` | the sealed report again |
//! | `GET /sessions/{id}` | status JSON |
//! | `DELETE /sessions/{id}` | drop the session |
//! | `GET /healthz` | liveness + drain state |
//!
//! Uploads decode through [`ShardReader`](memgaze_model::ShardReader);
//! each shard becomes a [`PartialReport`](memgaze_analysis::PartialReport)
//! delta — published live to SSE subscribers and folded at seal time
//! with `merge_many`, whose merge laws make the sealed report
//! **bit-identical** to a resident analyzer pass over the same shards.
//!
//! ## Admission control
//!
//! Capacity refusals are typed ([`ServeError`]) and carry
//! `Retry-After`: live-session cap (503), bounded per-session upload
//! queues (429), per-session byte budgets (413). Idle sessions are
//! reaped by the accept loop; `drain` (SIGTERM in the CLI) stops
//! accepting, finishes in-flight requests, then seals every open
//! session and flushes its deltas.

pub mod client;
pub mod error;
pub mod http;
pub mod pool;
pub mod server;
pub mod session;

pub use client::{Client, HttpResponse};
pub use error::ServeError;
pub use server::{DrainReport, Server};
pub use session::{Registry, SealedReport, Session, SessionStatus, WatchHub};

use memgaze_analysis::{AnalysisConfig, LiveConfig};
use std::time::Duration;

/// Server-wide configuration: the analysis parameters every session
/// runs with, and the admission-control limits.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Analysis configuration shared by all sessions (block sizes,
    /// threads per ingest).
    pub analysis: AnalysisConfig,
    /// Locality window sizes accumulated per session.
    pub locality_sizes: Vec<u64>,
    /// Maximum live sessions before creates are refused (503).
    pub max_sessions: usize,
    /// Maximum uploads queued per session before feeds are refused
    /// (429).
    pub queue_depth: usize,
    /// Per-session byte budget across all uploads (413 beyond it).
    pub session_bytes: u64,
    /// Largest single request body accepted by the HTTP layer.
    pub max_upload_bytes: usize,
    /// Sessions idle past this are reaped.
    pub idle_timeout: Duration,
    /// Socket read timeout — bounds how long a torn client can hold a
    /// pool worker.
    pub read_timeout: Duration,
    /// Shards folded into one rolling watch window; every closed
    /// window is published on `GET /watch/events`.
    pub watch_window_shards: usize,
    /// Rolling-window ring and anomaly-threshold parameters.
    pub watch_live: LiveConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            analysis: AnalysisConfig::default(),
            locality_sizes: vec![16, 64, 256],
            max_sessions: 64,
            queue_depth: 8,
            session_bytes: 256 << 20,
            max_upload_bytes: 64 << 20,
            idle_timeout: Duration::from_secs(300),
            read_timeout: Duration::from_secs(10),
            watch_window_shards: 4,
            watch_live: LiveConfig::default(),
        }
    }
}

/// Shared synthetic-traffic harness for the smoke run, the integration
/// tests, and the bench driver.
pub mod harness {
    use super::*;
    use memgaze_analysis::{StreamingAnalyzer, StreamingReport};
    use memgaze_model::{Access, AuxAnnotations, Sample, ShardWriter, SymbolTable, TraceMeta};

    /// Synthetic per-session sample stream: a strided phase interleaved
    /// with cyclic reuse over hot regions, time-ordered across samples.
    /// `salt` decorrelates streams of concurrent sessions.
    pub fn synthetic_samples(samples: usize, window: usize, salt: u64) -> Vec<Sample> {
        (0..samples)
            .map(|s| {
                let base = (s as u64) * 10_000;
                let accesses: Vec<Access> = (0..window)
                    .map(|i| {
                        let i64 = i as u64;
                        let addr = if i % 2 == 0 {
                            0x10_0000 + (salt << 24) + ((s * window + i) as u64) * 64
                        } else {
                            let hot = (i64 / 2 + salt) % 4;
                            0x80_0000 + hot * 0x10_0000 + (i64 % 64) * 64
                        };
                        Access::new(0x400u64 + (i64 % 16) * 4, addr, base + i64)
                    })
                    .collect();
                Sample::new(accesses, base + window as u64)
            })
            .collect()
    }

    /// The base metadata every smoke/test container shares.
    pub fn base_meta(workload: &str) -> TraceMeta {
        TraceMeta::new(workload, 10_000, 16 << 10)
    }

    /// Encode one upload container holding `shards`, with trailer
    /// totals proportional to the samples it carries.
    pub fn container(workload: &str, shards: &[&[Sample]]) -> Vec<u8> {
        let meta = base_meta(workload);
        let mut w = ShardWriter::new(Vec::new(), &meta).expect("header write");
        let mut samples = 0u64;
        let mut instrumented = 0u64;
        for shard in shards {
            w.write_shard(shard).expect("shard write");
            samples += shard.len() as u64;
            instrumented += shard.iter().map(|s| s.accesses.len() as u64).sum::<u64>();
        }
        w.finish(samples * meta.period, instrumented)
            .expect("trailer write")
    }

    /// The resident reference pass: one [`StreamingAnalyzer`] fed the
    /// same shard groups in order, finished with the same accumulated
    /// metadata the server derives.
    pub fn resident_report(
        workload: &str,
        groups: &[Vec<Sample>],
        cfg: &ServeConfig,
    ) -> StreamingReport {
        let annots = AuxAnnotations::new();
        let symbols = SymbolTable::new();
        let mut sa = StreamingAnalyzer::new(&annots, &symbols, cfg.analysis)
            .with_locality_sizes(&cfg.locality_sizes);
        let mut meta = base_meta(workload);
        for g in groups {
            sa.ingest_shard(g);
            meta.total_loads += g.len() as u64 * meta.period;
            meta.total_instrumented_loads += g.iter().map(|s| s.accesses.len() as u64).sum::<u64>();
        }
        sa.finish(&meta)
    }

    /// Drive one full session over the wire: feed `uploads` (each a
    /// slice of shard groups) with the given HTTP chunk size, seal, and
    /// finish client-side.
    pub fn drive_session(
        client: &Client,
        workload: &str,
        uploads: &[&[Vec<Sample>]],
        chunk: Option<usize>,
    ) -> Result<StreamingReport, String> {
        let id = client.create_session()?;
        for upload in uploads {
            let refs: Vec<&[Sample]> = upload.iter().map(|g| g.as_slice()).collect();
            let body = container(workload, &refs);
            let resp = client.feed(&id, &body, chunk).map_err(|e| e.to_string())?;
            if resp.status != 202 {
                return Err(format!("feed: status {}: {}", resp.status, resp.text()));
            }
        }
        client.seal(&id)?.finish()
    }

    /// The scripted smoke: boot a server, run every chunking ×
    /// concurrency combination, assert each sealed session is
    /// bit-identical to its resident pass, then drain cleanly. Returns
    /// a human-readable summary, or the first failure.
    pub fn smoke(threads: usize) -> Result<String, String> {
        let cfg = ServeConfig::default();
        let server =
            Server::bind("127.0.0.1:0", cfg.clone(), threads.max(2)).map_err(|e| e.to_string())?;
        let client = Client::new(server.addr());

        let samples = synthetic_samples(12, 160, 0);
        let groups: Vec<Vec<Sample>> = samples.chunks(3).map(|c| c.to_vec()).collect();
        let resident = resident_report("serve-smoke", &groups, &cfg);

        // Upload splits: whole trace at once / one shard per upload /
        // two shards per upload. HTTP chunkings: Content-Length, big
        // chunks, pathological 7-byte chunks.
        let splits: Vec<Vec<&[Vec<Sample>]>> = vec![
            vec![&groups[..]],
            groups.chunks(1).collect(),
            groups.chunks(2).collect(),
        ];
        let chunkings = [None, Some(512), Some(7)];
        let mut combos = 0usize;
        for uploads in &splits {
            for chunk in chunkings {
                // Concurrency axis: four sessions of this shape at once.
                let outcome: Vec<Result<StreamingReport, String>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..4)
                        .map(|_| {
                            let uploads = uploads.clone();
                            scope.spawn(move || {
                                drive_session(&client, "serve-smoke", &uploads, chunk)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or_else(|_| Err("panicked".into())))
                        .collect()
                });
                for report in outcome {
                    let report = report?;
                    if report != resident {
                        return Err(format!(
                            "report differs from resident pass ({} uploads, chunk {chunk:?})",
                            uploads.len()
                        ));
                    }
                    combos += 1;
                }
            }
        }

        let drained = server.drain();
        if drained.seal_failures != 0 {
            return Err(format!(
                "drain left {} seal failures",
                drained.seal_failures
            ));
        }
        Ok(format!(
            "serve smoke: {combos} sessions across {} upload splits × {} chunkings × 4 \
             concurrent, all bit-identical to the resident pass; drain clean \
             ({} sessions sealed at drain)",
            splits.len(),
            chunkings.len(),
            drained.sessions_sealed
        ))
    }
}
