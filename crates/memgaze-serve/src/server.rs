//! The daemon: listener, accept loop, request routing, graceful drain.
//!
//! The accept loop runs nonblocking on its own thread, polling a
//! shutdown flag every few milliseconds and reaping idle sessions as it
//! goes; accepted connections are handled to completion on the bounded
//! [`ThreadPool`]. Draining is a strict sequence — stop accepting, let
//! in-flight handlers finish, then seal every open session and flush
//! its deltas — so a SIGTERM'd server never loses an accepted shard.

use crate::error::ServeError;
use crate::http::{json_escape, read_request, HttpError, Request, Response};
use crate::pool::ThreadPool;
use crate::session::Registry;
use crate::ServeConfig;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a completed drain did.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Sessions sealed by the drain (already-sealed sessions are not
    /// counted).
    pub sessions_sealed: usize,
    /// Sessions whose seal failed (poisoned by an earlier decode
    /// error).
    pub seal_failures: usize,
}

/// A running `memgaze serve` instance.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<ThreadPool>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting with a pool of `threads` connection handlers.
    pub fn bind(addr: &str, cfg: ServeConfig, threads: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new(cfg));
        let pool = ThreadPool::new(threads);
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let registry = Arc::clone(&registry);
            // The accept loop submits handler closures through a pool
            // handle; the pool itself stays owned by the Server so
            // drain can join it after accepting stops (the handle dies
            // with the accept thread, unblocking the join).
            let dispatch = pool.handle();
            std::thread::Builder::new()
                .name("memgaze-serve-accept".into())
                .spawn(move || accept_loop(listener, shutdown, registry, dispatch))?
        };
        Ok(Server {
            addr,
            shutdown,
            registry,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session registry (exposed for in-process harnesses).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A flag that, once set, initiates shutdown from any thread (the
    /// CLI's signal handler stores into it).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Graceful drain: stop accepting, finish in-flight requests, seal
    /// every open session (flushing subscriber deltas), and shut the
    /// pool down.
    pub fn drain(mut self) -> DrainReport {
        let _span = memgaze_obs::span("serve.drain");
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        let (sessions_sealed, seal_failures) = self.registry.seal_all();
        DrainReport {
            sessions_sealed,
            seal_failures,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    dispatch: crate::pool::PoolHandle,
) {
    let mut since_reap = 0u32;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _span = memgaze_obs::span("serve.accept");
                memgaze_obs::counter!("serve.connections").add(1);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(registry.cfg.read_timeout));
                let registry = Arc::clone(&registry);
                if !dispatch.execute(move || handle_connection(stream, registry)) {
                    // Pool already shut down; the stream drops and the
                    // peer sees a reset — acceptable only mid-teardown.
                    memgaze_obs::counter!("serve.dropped_connections").add(1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                since_reap += 1;
                // Reap idle sessions roughly every 250ms of quiet.
                if since_reap >= 50 {
                    since_reap = 0;
                    registry.reap_idle();
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serve one connection until close, error, or hand-off to SSE.
fn handle_connection(stream: TcpStream, registry: Arc<Registry>) {
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader, registry.cfg.max_upload_bytes) {
            Ok(req) => req,
            Err(HttpError::Closed) => return,
            Err(HttpError::TooLarge { limit }) => {
                let resp = error_response(&ServeError::BadRequest {
                    detail: format!("request exceeds {limit} bytes"),
                })
                .header("Connection", "close");
                let _ = resp.write_to(&mut writer);
                return;
            }
            Err(HttpError::Malformed(detail)) => {
                let resp = error_response(&ServeError::BadRequest { detail })
                    .header("Connection", "close");
                let _ = resp.write_to(&mut writer);
                return;
            }
            // Timeout or disconnect mid-request: nothing sensible to
            // answer; drop the connection and keep the worker alive.
            Err(HttpError::Io(_)) => {
                memgaze_obs::counter!("serve.dropped_connections").add(1);
                return;
            }
        };
        let mut span = memgaze_obs::span("serve.request");
        if span.is_active() {
            span.set_label(format!("{} {}", req.method, req.path));
        }
        memgaze_obs::counter!("serve.requests").add(1);
        let close = req.wants_close();
        match route(&req, &registry) {
            Routed::Respond(resp) => {
                let resp = if close {
                    resp.header("Connection", "close")
                } else {
                    resp.header("Connection", "keep-alive")
                };
                if resp.write_to(&mut writer).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Routed::Subscribe(session) => {
                // SSE hand-off: send the stream header, then move the
                // socket into the session's subscriber list. Events are
                // written by whichever handler publishes a delta; this
                // worker goes back to the pool. If the session sealed
                // between routing and registration, `subscribe` writes
                // the final `sealed` event before the socket closes.
                let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                            Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
                if std::io::Write::write_all(&mut writer, head.as_bytes()).is_err() {
                    return;
                }
                let _ = writer.set_read_timeout(None);
                let _ = session.subscribe(writer);
                return;
            }
            Routed::SubscribeWatch => {
                // Server-wide watch stream: every session's rolling
                // windows and anomaly marks until drain.
                let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                            Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
                if std::io::Write::write_all(&mut writer, head.as_bytes()).is_err() {
                    return;
                }
                let _ = writer.set_read_timeout(None);
                registry.watch_hub().subscribe(writer);
                return;
            }
        }
    }
}

/// Routing outcome: an ordinary response, or an SSE subscription that
/// takes ownership of the socket.
enum Routed {
    Respond(Response),
    Subscribe(Arc<crate::session::Session>),
    SubscribeWatch,
}

/// Render a [`ServeError`] as its HTTP response.
fn error_response(e: &ServeError) -> Response {
    let body = format!(
        "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
        e.kind(),
        json_escape(&e.to_string())
    );
    let mut resp = Response::json(e.status(), body);
    if let Some(secs) = e.retry_after() {
        resp = resp.header("Retry-After", secs);
    }
    resp
}

/// Dispatch one request against the protocol surface.
fn route(req: &Request, registry: &Registry) -> Routed {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let outcome = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(Response::json(
            200,
            format!(
                "{{\"status\":\"{}\",\"sessions\":{}}}",
                if registry.is_draining() {
                    "draining"
                } else {
                    "ok"
                },
                registry.ids().len()
            ),
        )),
        ("POST", ["sessions"]) => registry.create().map(|s| {
            Response::json(201, format!("{{\"id\":\"{}\"}}", s.id))
                .header("Location", format!("/sessions/{}", s.id))
        }),
        ("GET", ["sessions"]) => {
            let ids = registry.ids();
            let list: Vec<String> = ids.iter().map(|id| format!("\"{id}\"")).collect();
            Ok(Response::json(
                200,
                format!("{{\"sessions\":[{}]}}", list.join(",")),
            ))
        }
        ("POST", ["sessions", id, "shards"]) => feed(req, registry, id),
        ("POST", ["sessions", id, "seal"]) => registry
            .get(id)
            .and_then(|s| s.seal(&registry.cfg))
            .map(sealed_response),
        ("GET", ["sessions", id, "report"]) => registry
            .get(id)
            .and_then(|s| s.sealed())
            .map(sealed_response),
        ("GET", ["watch", "events"]) => return Routed::SubscribeWatch,
        ("GET", ["sessions", id, "deltas"]) => {
            return match registry.get(id) {
                Ok(s) if !s.status().sealed => Routed::Subscribe(s),
                Ok(s) => Routed::Respond(error_response(&ServeError::Sealed { id: s.id.clone() })),
                Err(e) => Routed::Respond(error_response(&e)),
            };
        }
        ("GET", ["sessions", id]) => registry.get(id).map(|s| {
            let st = s.status();
            Response::json(
                200,
                format!(
                    "{{\"id\":\"{}\",\"state\":\"{}\",\"shards\":{},\"samples\":{},\
                     \"bytes\":{},\"queued\":{}}}",
                    s.id,
                    if st.sealed { "sealed" } else { "open" },
                    st.shards,
                    st.samples,
                    st.bytes,
                    st.queued
                ),
            )
        }),
        ("DELETE", ["sessions", id]) => {
            if registry.remove(id) {
                Ok(Response::json(200, format!("{{\"deleted\":\"{id}\"}}")))
            } else {
                Err(ServeError::UnknownSession { id: id.to_string() })
            }
        }
        _ => Err(ServeError::BadRequest {
            detail: format!("no route for {} {}", req.method, req.path),
        }),
    };
    match outcome {
        Ok(resp) => Routed::Respond(resp),
        Err(e) => Routed::Respond(error_response(&e)),
    }
}

/// `POST /sessions/{id}/shards` — admission control, then feed.
fn feed(req: &Request, registry: &Registry, id: &str) -> Result<Response, ServeError> {
    if registry.is_draining() {
        return Err(ServeError::Draining);
    }
    if req.body.is_empty() {
        return Err(ServeError::BadRequest {
            detail: "feed requires a container body".into(),
        });
    }
    let session = registry.get(id)?;
    let summary = session.feed(req.body.clone(), &registry.cfg)?;
    Ok(Response::json(
        202,
        format!(
            "{{\"shards\":{},\"samples\":{},\"queued\":{}}}",
            summary.shards, summary.samples, summary.queued
        ),
    ))
}

/// The sealed report on the wire: merged MGZP partial as the body, the
/// accumulated [`TraceMeta`](memgaze_model::TraceMeta) in
/// `X-Memgaze-*` headers — everything the client needs to `finish()`
/// bit-identically.
fn sealed_response(sealed: Arc<crate::session::SealedReport>) -> Response {
    Response::binary(200, sealed.partial_bytes.clone())
        .header("X-Memgaze-Workload", &sealed.meta.workload)
        .header("X-Memgaze-Period", sealed.meta.period)
        .header("X-Memgaze-Buffer-Bytes", sealed.meta.buffer_bytes)
        .header("X-Memgaze-Total-Loads", sealed.meta.total_loads)
        .header(
            "X-Memgaze-Instrumented-Loads",
            sealed.meta.total_instrumented_loads,
        )
        .header("X-Memgaze-Shards", sealed.shards)
        .header("X-Memgaze-Samples", sealed.samples)
}
