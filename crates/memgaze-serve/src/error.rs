//! Typed server errors, each carrying its HTTP mapping.
//!
//! Admission control is only as good as its refusals: a client that is
//! pushed back must learn *why* (so it can distinguish "slow down" from
//! "you are broken") and *when to retry*. Every rejection path in the
//! server goes through [`ServeError`], which knows its status code, its
//! machine-readable kind, and — for capacity refusals — a `Retry-After`
//! hint. Nothing in the request path panics a handler: decode failures,
//! over-capacity feeds, and lifecycle misuse all land here.

use memgaze_model::ModelError;

/// Everything a request handler can refuse or fail with.
#[derive(Debug)]
pub enum ServeError {
    /// The server is at its concurrent-session limit.
    SessionLimit {
        /// Configured maximum live sessions.
        limit: usize,
    },
    /// A session's pending-upload queue is full; the client should back
    /// off and retry.
    QueueFull {
        /// Session that refused the upload.
        session: String,
        /// Configured queue depth.
        depth: usize,
    },
    /// Accepting the upload would exceed the session's byte budget.
    ByteBudget {
        /// Session that refused the upload.
        session: String,
        /// Configured per-session budget in bytes.
        budget: u64,
        /// Bytes the session would hold if the upload were accepted.
        would_hold: u64,
    },
    /// No session with this id (never created, reaped, or deleted).
    UnknownSession {
        /// The id the client asked for.
        id: String,
    },
    /// A feed or subscribe arrived after the session was sealed.
    Sealed {
        /// The sealed session.
        id: String,
    },
    /// A report query arrived before the session was sealed.
    NotSealed {
        /// The still-open session.
        id: String,
    },
    /// An upload's container metadata contradicts what the session was
    /// created with (workload, period, or buffer size changed mid-feed).
    MetaMismatch {
        /// Human-readable description of the contradiction.
        detail: String,
    },
    /// An uploaded container failed to decode; the session is poisoned
    /// (its data can no longer be trusted to be complete).
    Decode {
        /// Session the bad upload was fed to.
        session: String,
        /// The underlying decode failure, rendered.
        detail: String,
    },
    /// The request itself was malformed (bad path, missing body, ...).
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The server is draining: no new sessions, no new feeds.
    Draining,
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::SessionLimit { .. } | ServeError::Draining => 503,
            ServeError::QueueFull { .. } => 429,
            ServeError::ByteBudget { .. } => 413,
            ServeError::UnknownSession { .. } => 404,
            ServeError::Sealed { .. } | ServeError::NotSealed { .. } => 409,
            ServeError::MetaMismatch { .. } | ServeError::Decode { .. } => 422,
            ServeError::BadRequest { .. } => 400,
        }
    }

    /// Seconds the client should wait before retrying, for refusals
    /// that are about *capacity right now* rather than a broken request.
    pub fn retry_after(&self) -> Option<u64> {
        match self {
            ServeError::SessionLimit { .. } | ServeError::Draining => Some(2),
            ServeError::QueueFull { .. } => Some(1),
            _ => None,
        }
    }

    /// Stable machine-readable error kind for the JSON body.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::SessionLimit { .. } => "session_limit",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::ByteBudget { .. } => "byte_budget",
            ServeError::UnknownSession { .. } => "unknown_session",
            ServeError::Sealed { .. } => "sealed",
            ServeError::NotSealed { .. } => "not_sealed",
            ServeError::MetaMismatch { .. } => "meta_mismatch",
            ServeError::Decode { .. } => "decode",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Draining => "draining",
        }
    }

    /// Wrap a container decode failure for session `id`.
    pub fn decode(id: &str, e: &ModelError) -> ServeError {
        ServeError::Decode {
            session: id.to_string(),
            detail: e.to_string(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::SessionLimit { limit } => {
                write!(f, "session limit reached ({limit} live sessions)")
            }
            ServeError::QueueFull { session, depth } => {
                write!(f, "session {session}: upload queue full (depth {depth})")
            }
            ServeError::ByteBudget {
                session,
                budget,
                would_hold,
            } => write!(
                f,
                "session {session}: byte budget exceeded ({would_hold} > {budget})"
            ),
            ServeError::UnknownSession { id } => write!(f, "unknown session {id}"),
            ServeError::Sealed { id } => write!(f, "session {id} is sealed"),
            ServeError::NotSealed { id } => write!(f, "session {id} is not sealed yet"),
            ServeError::MetaMismatch { detail } => write!(f, "metadata mismatch: {detail}"),
            ServeError::Decode { session, detail } => {
                write!(f, "session {session}: upload failed to decode: {detail}")
            }
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Draining => write!(f, "server is draining"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_retry_mapping() {
        let e = ServeError::QueueFull {
            session: "s1".into(),
            depth: 4,
        };
        assert_eq!(e.status(), 429);
        assert_eq!(e.retry_after(), Some(1));
        assert_eq!(e.kind(), "queue_full");

        let e = ServeError::ByteBudget {
            session: "s1".into(),
            budget: 10,
            would_hold: 20,
        };
        assert_eq!(e.status(), 413);
        assert_eq!(e.retry_after(), None);

        assert_eq!(ServeError::Draining.status(), 503);
        assert_eq!(ServeError::Draining.retry_after(), Some(2));
        let e = ServeError::UnknownSession { id: "x".into() };
        assert_eq!(e.status(), 404);
        assert!(e.to_string().contains('x'));
    }
}
