//! Wire-level equivalence and failure injection for `memgaze serve`.
//!
//! The central contract: a sealed serve session's report is
//! bit-identical to a resident `StreamingAnalyzer` pass over the same
//! shards, for every upload split, HTTP chunking, and concurrency level
//! tested — proved over real sockets through the real parser. Around
//! it, the failure matrix: every admission-control refusal is a typed
//! status (never a panic, never a hang), torn clients don't wedge the
//! server, and drain seals what it holds.

use memgaze_analysis::PartialReport;
use memgaze_model::Sample;
use memgaze_serve::harness::{container, drive_session, resident_report, synthetic_samples};
use memgaze_serve::{client, Client, Registry, ServeConfig, ServeError, Server};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

/// One planned session for the equivalence property: workload name,
/// shard groups, shards-per-upload split, HTTP chunk size.
type SessionPlan = (String, Vec<Vec<Sample>>, usize, Option<usize>);

/// One server with default config, shared by the equivalence property
/// (booting a listener per proptest case would dominate the runtime).
/// Never drained: the process exit tears it down.
fn shared_server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        Server::bind("127.0.0.1:0", ServeConfig::default(), 6).expect("bind shared server")
    })
}

#[test]
fn smoke_matrix_is_bit_identical_and_drains_clean() {
    let summary = memgaze_serve::harness::smoke(4).expect("smoke");
    assert!(summary.contains("bit-identical"), "unexpected: {summary}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// N concurrent sessions, each with its own trace, upload split,
    /// and HTTP chunking; every sealed report must equal its resident
    /// pass bit for bit.
    #[test]
    fn concurrent_sessions_match_resident(
        specs in prop::collection::vec((2usize..6, 1usize..4, 0usize..3usize, 0usize..3usize), 1..5)
    ) {
        let server = shared_server();
        let client = Client::new(server.addr());
        let cfg = ServeConfig::default();

        // Per session: samples, shard grouping, upload split, chunking.
        let sessions: Vec<SessionPlan> = specs
            .iter()
            .enumerate()
            .map(|(i, &(scale, group, split_idx, chunk_idx))| {
                let samples = synthetic_samples(scale * 2, 48, i as u64 + 1);
                let groups: Vec<Vec<Sample>> =
                    samples.chunks(group).map(|c| c.to_vec()).collect();
                let split = [1usize, 2, usize::MAX][split_idx];
                let chunk = [None, Some(256), Some(9)][chunk_idx];
                (format!("prop-{i}"), groups, split, chunk)
            })
            .collect();

        let outcomes: Vec<Result<(), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .iter()
                .map(|(workload, groups, split, chunk)| {
                    let (client, cfg) = (client, &cfg);
                    scope.spawn(move || {
                        let uploads: Vec<&[Vec<Sample>]> =
                            groups.chunks((*split).min(groups.len().max(1))).collect();
                        let served = drive_session(&client, workload, &uploads, *chunk)?;
                        let resident = resident_report(workload, groups, cfg);
                        if served == resident {
                            Ok(())
                        } else {
                            Err(format!("{workload}: served report != resident"))
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("session thread panicked".into())))
                .collect()
        });
        for o in outcomes {
            prop_assert!(o.is_ok(), "{}", o.unwrap_err());
        }
    }
}

#[test]
fn session_limit_is_a_typed_503_with_retry_after() {
    let cfg = ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg, 2).expect("bind");
    let client = Client::new(server.addr());

    let a = client.create_session().expect("first");
    let _b = client.create_session().expect("second");
    let refused = client
        .request("POST", "/sessions", &[], None)
        .expect("request");
    assert_eq!(refused.status, 503);
    assert_eq!(refused.header("retry-after"), Some("2"));
    assert!(
        refused.text().contains("session_limit"),
        "{}",
        refused.text()
    );

    // Capacity frees up when a session is deleted.
    let del = client
        .request("DELETE", &format!("/sessions/{a}"), &[], None)
        .expect("delete");
    assert_eq!(del.status, 200);
    client.create_session().expect("slot reopened");
    server.drain();
}

#[test]
fn byte_budget_is_a_typed_413_and_session_survives() {
    let samples = synthetic_samples(4, 64, 7);
    let upload = container("budget", &[&samples]);
    let cfg = ServeConfig {
        // Big enough for exactly one upload, not two.
        session_bytes: (upload.len() as u64 * 3) / 2,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg, 2).expect("bind");
    let client = Client::new(server.addr());
    let id = client.create_session().expect("create");

    let first = client.feed(&id, &upload, None).expect("feed");
    assert_eq!(first.status, 202);
    let refused = client.feed(&id, &upload, None).expect("feed over budget");
    assert_eq!(refused.status, 413);
    assert!(refused.text().contains("byte_budget"), "{}", refused.text());
    assert_eq!(refused.header("retry-after"), None);

    // The refusal poisons nothing: the session still seals to the
    // report of what was admitted.
    let sealed = client.seal(&id).expect("seal");
    assert_eq!(sealed.shards, 1);
    server.drain();
}

#[test]
fn queue_full_is_a_typed_429_at_the_admission_layer() {
    let cfg = ServeConfig {
        queue_depth: 2,
        ..ServeConfig::default()
    };
    let registry = Registry::new(cfg.clone());
    let session = registry.create().expect("create");
    let samples = synthetic_samples(2, 32, 3);
    let upload = container("queue", &[&samples]);

    assert!(session.try_enqueue(upload.clone(), &cfg).is_ok());
    assert!(session.try_enqueue(upload.clone(), &cfg).is_ok());
    let refused = session.try_enqueue(upload, &cfg).unwrap_err();
    match &refused {
        ServeError::QueueFull { depth, .. } => assert_eq!(*depth, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(refused.status(), 429);
    assert_eq!(refused.retry_after(), Some(1));
}

#[test]
fn mid_upload_disconnect_leaves_the_server_serving() {
    let cfg = ServeConfig {
        read_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg.clone(), 2).expect("bind");
    let client = Client::new(server.addr());
    let id = client.create_session().expect("create");

    // Promise 4096 body bytes, send 10, vanish.
    let mut torn = TcpStream::connect(server.addr()).expect("connect");
    write!(
        torn,
        "POST /sessions/{id}/shards HTTP/1.1\r\nHost: x\r\nContent-Length: 4096\r\n\r\n"
    )
    .expect("head");
    torn.write_all(b"0123456789").expect("partial body");
    drop(torn);

    // The worker pool must shed the torn connection and keep serving:
    // a full session afterwards still matches the resident pass.
    let samples = synthetic_samples(6, 64, 11);
    let groups: Vec<Vec<Sample>> = samples.chunks(2).map(|c| c.to_vec()).collect();
    let served = drive_session(&client, "after-torn", &[&groups[..]], Some(64)).expect("drive");
    let resident = resident_report("after-torn", &groups, &cfg);
    assert_eq!(served, resident);
    server.drain();
}

#[test]
fn drain_seals_open_sessions_and_refuses_new_work() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default(), 2).expect("bind");
    let client = Client::new(server.addr());
    let id = client.create_session().expect("create");
    let samples = synthetic_samples(4, 48, 5);
    let upload = container("drainee", &[&samples]);
    assert_eq!(client.feed(&id, &upload, None).expect("feed").status, 202);

    let report = server.drain();
    assert_eq!(report.seal_failures, 0);
    assert_eq!(report.sessions_sealed, 1);
}

#[test]
fn draining_registry_refuses_creates_and_feeds_with_typed_errors() {
    let cfg = ServeConfig::default();
    let registry = Registry::new(cfg.clone());
    let session = registry.create().expect("create");
    let samples = synthetic_samples(3, 32, 9);
    let upload = container("drain-feed", &[&samples]);
    session
        .feed(upload.clone(), &cfg)
        .expect("feed before drain");

    let (sealed, failures) = registry.seal_all();
    assert_eq!((sealed, failures), (1, 0));
    assert!(registry.is_draining());

    match registry.create() {
        Err(ServeError::Draining) => {}
        Err(other) => panic!("expected Draining, got {other:?}"),
        Ok(_) => panic!("expected Draining, got a session"),
    }
    // The sealed session refuses further shards with a conflict, and
    // seal_all is idempotent on already-sealed sessions.
    match session.feed(upload, &cfg) {
        Err(ServeError::Sealed { .. }) => {}
        other => panic!("expected Sealed, got {other:?}"),
    }
    assert_eq!(registry.seal_all(), (0, 0));
}

#[test]
fn subscribers_see_every_shard_delta_then_sealed() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default(), 3).expect("bind");
    let http = Client::new(server.addr());
    let cfg = ServeConfig::default();
    let id = http.create_session().expect("create");

    let collector = http.subscribe_collect(&id).expect("subscribe");
    // The SSE head is written before the subscriber is registered; wait
    // for registration before feeding so no delta can be missed.
    let session = server.registry().get(&id).expect("session");
    for _ in 0..100 {
        if session.subscriber_count() > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        session.subscriber_count() > 0,
        "subscriber never registered"
    );

    let samples = synthetic_samples(6, 48, 2);
    let groups: Vec<Vec<Sample>> = samples.chunks(2).map(|c| c.to_vec()).collect();
    let refs: Vec<&[Sample]> = groups.iter().map(|g| g.as_slice()).collect();
    let upload = container("sse", &refs);
    assert_eq!(http.feed(&id, &upload, None).expect("feed").status, 202);
    let sealed = http.seal(&id).expect("seal");

    let events = collector.collect();
    let shard_events: Vec<&(String, String)> =
        events.iter().filter(|(e, _)| e == "shard").collect();
    assert_eq!(shard_events.len(), groups.len(), "events: {events:?}");
    assert_eq!(events.last().map(|(e, _)| e.as_str()), Some("sealed"));

    // The deltas are the sealed report: merging the published per-shard
    // partials reproduces the sealed partial bit for bit.
    let deltas: Vec<PartialReport> = shard_events
        .iter()
        .map(|(_, data)| {
            let bytes = client::delta_partial_bytes(data).expect("partial field");
            PartialReport::decode(&bytes).expect("delta decodes")
        })
        .collect();
    let merged = PartialReport::merge_many(
        deltas,
        cfg.analysis.footprint_block,
        cfg.analysis.reuse_block,
        &cfg.locality_sizes,
    )
    .expect("merge");
    assert_eq!(merged.encode(), sealed.partial_bytes);
    server.drain();
}

/// The shutdown race: a subscriber whose registration loses the race
/// against seal (e.g. SIGTERM drain sealing every session) must still
/// receive the final `sealed` event, not a torn stream. Exercised
/// deterministically by sealing *before* `subscribe` runs — the exact
/// interleaving the route's sealed check cannot rule out.
#[test]
fn drain_during_subscribe_still_delivers_the_sealed_event() {
    let cfg = ServeConfig::default();
    let registry = Registry::new(cfg.clone());
    let session = registry.create().expect("create");

    let samples = synthetic_samples(4, 32, 7);
    let groups: Vec<&[Sample]> = samples.chunks(2).collect();
    let upload = container("race", &groups);
    session.feed(upload, &cfg).expect("feed");

    // A real socket pair: the subscriber's write end goes into
    // `subscribe`, the read end plays the SSE client.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client_end = std::thread::spawn(move || TcpStream::connect(addr).expect("connect"));
    let (server_end, _) = listener.accept().expect("accept");
    let reader_end = client_end.join().expect("connect join");

    // Drain seals the session between the route check and subscribe.
    let (sealed, failures) = registry.seal_all();
    assert_eq!((sealed, failures), (1, 0));

    session
        .subscribe(server_end)
        .expect("late subscribe must succeed by delivering the final event");

    let mut reader = std::io::BufReader::new(reader_end);
    let mut text = String::new();
    std::io::Read::read_to_string(&mut reader, &mut text).expect("read events");
    assert!(
        text.contains("event: sealed"),
        "late subscriber saw a torn stream: {text:?}"
    );
    assert!(text.contains("\"shards\":2"), "payload: {text:?}");
}

/// `GET /watch/events`: rolling windows close every
/// `watch_window_shards` shards and publish per-window drift stats;
/// a phase shift between uploads raises an anomaly event; drain ends
/// the stream with a final `drained` event.
#[test]
fn watch_stream_publishes_windows_anomalies_then_drained() {
    use memgaze_model::Access;

    let cfg = ServeConfig {
        watch_window_shards: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg, 3).expect("bind");
    let http = Client::new(server.addr());

    let collector = http.watch_collect().expect("watch subscribe");
    let hub = server.registry().watch_hub();
    for _ in 0..100 {
        if hub.subscriber_count() > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        hub.subscriber_count() > 0,
        "watch subscriber never registered"
    );

    // Phase A: tight cyclic reuse over 32 lines. Phase B: scattered
    // accesses over a region 3 orders of magnitude larger — footprint
    // and reuse distance jump together.
    let tight: Vec<Sample> = (0..4)
        .map(|s| {
            let accesses: Vec<Access> = (0..100u64)
                .map(|i| Access::new(0x400, 0x10_0000 + (i % 32) * 64, s * 1000 + i))
                .collect();
            Sample::new(accesses, (s + 1) * 1000)
        })
        .collect();
    let scattered: Vec<Sample> = (4..8)
        .map(|s| {
            let accesses: Vec<Access> = (0..100u64)
                .map(|i| {
                    let x = s * 100 + i;
                    Access::new(
                        0x404,
                        0x900_0000 + (x * x * 2654435761) % (1 << 28),
                        s * 1000 + i,
                    )
                })
                .collect();
            Sample::new(accesses, (s + 1) * 1000)
        })
        .collect();

    let id = http.create_session().expect("create");
    for shard in [&tight, &scattered] {
        let upload = container("watch", &[shard.as_slice()]);
        assert_eq!(http.feed(&id, &upload, None).expect("feed").status, 202);
    }
    server.drain();

    let events = collector.collect();
    let windows = events.iter().filter(|(e, _)| e == "window").count();
    let anomalies: Vec<&(String, String)> = events.iter().filter(|(e, _)| e == "anomaly").collect();
    assert_eq!(windows, 2, "events: {events:?}");
    assert!(
        !anomalies.is_empty(),
        "phase shift raised no anomaly: {events:?}"
    );
    assert!(
        anomalies.iter().all(|(_, d)| d.contains("\"window\":1")),
        "anomalies: {anomalies:?}"
    );
    assert_eq!(events.last().map(|(e, _)| e.as_str()), Some("drained"));
}
