//! A minimal JSON reader for the event wire format.
//!
//! The workspace's vendored `serde_json` is write-only, and this crate
//! must stay dependency-free, so stitching worker JSONL back into the
//! coordinator's trace needs its own parser. It reads exactly the JSON
//! subset the [`Event`](crate::Event) encoder emits — flat objects,
//! string keys, strings, nonnegative integers, floats, and arrays of
//! integers — but is written as a general recursive-descent parser so a
//! malformed line fails with a position, never a panic.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A nonnegative integer literal that fits `u64` (kept exact; the
    /// event format's ids, timestamps and counts are all `u64`).
    Int(u64),
    /// Any other numeric literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is irrelevant for the event format.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `u64`, accepting exact integers only.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse one complete JSON document. Trailing non-whitespace is an
/// error, so a line holding two concatenated objects is rejected.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Nesting guard: the event format is depth ≤ 3; anything deeper is
/// garbage and must not recurse unboundedly.
const MAX_DEPTH: usize = 16;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {b:#x} at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates are not emitted by the encoder;
                            // map them to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

/// Escape a string into a JSON string literal (without quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_event_object() {
        let v = parse(r#"{"t":"span","pid":12,"id":3,"name":"a b","dur_us":17}"#).unwrap();
        assert_eq!(v.get("t").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("pid").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a b"));
    }

    #[test]
    fn parses_arrays_and_nested() {
        let v = parse(r#"{"bins":[1,2,3],"f":{"k":"v"}}"#).unwrap();
        assert_eq!(
            v.get("bins"),
            Some(&Value::Arr(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
        assert_eq!(v.get("f").unwrap().get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn escapes_round_trip() {
        let raw = "quote\" slash\\ nl\n tab\t unicode→";
        let mut lit = String::from('"');
        escape_into(&mut lit, raw);
        lit.push('"');
        assert_eq!(parse(&lit).unwrap(), Value::Str(raw.to_string()));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,",
            "\"unterminated",
            "{\"a\":01x}",
            "nul",
            "{} trailing",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("18446744073709551615").unwrap(), Value::Int(u64::MAX));
        assert_eq!(parse("-3").unwrap(), Value::Float(-3.0));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
    }
}
