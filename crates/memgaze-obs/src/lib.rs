//! # memgaze-obs
//!
//! A zero-dependency observability substrate for the MemGaze pipeline:
//! structured span tracing with monotonic timestamps and parent/child
//! nesting, lock-free counters / power-of-2 histograms / max gauges,
//! and pluggable sinks (JSONL event file, human summary, in-memory
//! capture). The whole layer is gated by the `MEMGAZE_OBS` environment
//! variable and costs one relaxed atomic load per instrumentation
//! point when disabled.
//!
//! ## Enabling
//!
//! `MEMGAZE_OBS` is a comma-separated sink list:
//!
//! * unset, empty, `0`, or `off` — disabled (the default);
//! * `1` or `summary` — print a counter/histogram summary to stderr
//!   when the process flushes;
//! * `jsonl:<path>` — append every event to `<path>` as JSON lines;
//! * `capture` — additionally buffer events in memory (used by
//!   `memgaze profile` and tests).
//!
//! ## Cross-process stitching
//!
//! Span ids are only unique per process, so every event carries the
//! emitting `pid`. A coordinator hands a worker subprocess two
//! environment variables — [`OBS_PARENT_ENV`] (`pid:spanid`, adopted
//! as the remote parent of the worker's root spans) and its own
//! `MEMGAZE_OBS=jsonl:<file>` — then absorbs the worker's event file
//! with [`absorb_jsonl`], producing one stitched trace tree spanning
//! both processes.
//!
//! ```
//! let _span = memgaze_obs::span("docs.example");
//! memgaze_obs::counter!("docs.examples_run").add(1);
//! // Disabled by default: near-zero cost, no events recorded.
//! ```

mod event;
mod json;
mod metrics;
mod profile;

pub use event::{Event, SpanCtx};
pub use json::{parse as parse_json, Value};
pub use metrics::{Counter, Gauge, Histogram};
pub use profile::{
    exclusive_by_name, render_profile, render_summary, stats as profile_stats, ProfileStats,
    SpanAgg,
};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::Instant;

/// Sink-selection environment variable (see the crate docs).
pub const OBS_ENV: &str = "MEMGAZE_OBS";
/// Cross-process parent span, as `pid:spanid`.
pub const OBS_PARENT_ENV: &str = "MEMGAZE_OBS_PARENT";

/// Observability configuration: which sinks receive events.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Append events as JSON lines to this file (truncated on
    /// configure).
    pub jsonl_path: Option<PathBuf>,
    /// Buffer events in memory for [`take_capture`].
    pub capture: bool,
    /// Print a metric summary to stderr on [`flush`].
    pub summary: bool,
    /// Remote parent adopted by spans with no local parent.
    pub remote_parent: Option<SpanCtx>,
}

impl ObsConfig {
    /// The disabled configuration.
    pub fn disabled() -> ObsConfig {
        ObsConfig::default()
    }

    /// Whether any sink is active.
    pub fn is_enabled(&self) -> bool {
        self.jsonl_path.is_some() || self.capture || self.summary
    }

    /// Parse [`OBS_ENV`] / [`OBS_PARENT_ENV`].
    pub fn from_env() -> ObsConfig {
        let mut cfg = ObsConfig::default();
        if let Ok(spec) = std::env::var(OBS_ENV) {
            for tok in spec.split(',').map(str::trim) {
                match tok {
                    "" | "0" | "off" => {}
                    "1" | "summary" => cfg.summary = true,
                    "capture" => cfg.capture = true,
                    t => {
                        if let Some(path) = t.strip_prefix("jsonl:") {
                            cfg.jsonl_path = Some(PathBuf::from(path));
                        }
                        // Unknown tokens are ignored: a misspelled sink
                        // must not abort the instrumented program.
                    }
                }
            }
        }
        cfg.remote_parent = std::env::var(OBS_PARENT_ENV)
            .ok()
            .as_deref()
            .and_then(parse_parent);
        cfg
    }
}

fn parse_parent(s: &str) -> Option<SpanCtx> {
    let (pid, id) = s.split_once(':')?;
    Some(SpanCtx {
        pid: pid.trim().parse().ok()?,
        id: id.trim().parse().ok()?,
    })
}

/// Active sinks. All writes are best-effort: a full disk must not
/// abort the traced run.
struct Sinks {
    jsonl: Option<BufWriter<File>>,
    capture: Option<Vec<Event>>,
    summary: bool,
}

/// Global observability state.
struct State {
    sinks: Mutex<Sinks>,
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    remote_parent: Mutex<Option<SpanCtx>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INITTED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<State> = OnceLock::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn state() -> &'static State {
    STATE.get_or_init(|| State {
        sinks: Mutex::new(Sinks {
            jsonl: None,
            capture: None,
            summary: false,
        }),
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        remote_parent: Mutex::new(None),
    })
}

/// Observability must never poison-panic the program it is observing.
fn lock_live<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether observability is on. The first call reads the environment;
/// later calls are two relaxed atomic loads.
#[inline]
pub fn enabled() -> bool {
    if !INITTED.load(Ordering::Acquire) {
        init_from_env();
    }
    ENABLED.load(Ordering::Relaxed)
}

fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        configure(ObsConfig::from_env());
    });
}

/// Install a configuration, replacing any active sinks. Callable
/// repeatedly (the profile verb and tests reconfigure at runtime);
/// metric values persist across reconfiguration, buffered events and
/// sinks do not.
pub fn configure(cfg: ObsConfig) {
    let st = state();
    {
        let mut sinks = lock_live(&st.sinks);
        if let Some(w) = sinks.jsonl.as_mut() {
            let _ = w.flush();
        }
        sinks.jsonl = cfg
            .jsonl_path
            .as_ref()
            .and_then(|p| File::create(p).ok())
            .map(BufWriter::new);
        sinks.capture = cfg.capture.then(Vec::new);
        sinks.summary = cfg.summary;
    }
    *lock_live(&st.remote_parent) = cfg.remote_parent;
    ENABLED.store(cfg.is_enabled(), Ordering::Relaxed);
    INITTED.store(true, Ordering::Release);
}

/// Microseconds since the Unix epoch, monotonic within this process:
/// the wall clock is read once and advanced by `Instant` elapsed time,
/// so spans nest consistently even if the system clock steps.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    let (anchor, base) = EPOCH.get_or_init(|| {
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), unix)
    });
    base + anchor.elapsed().as_micros() as u64
}

/// This process's id.
pub fn own_pid() -> u32 {
    std::process::id()
}

fn emit(e: Event) {
    let mut sinks = lock_live(&state().sinks);
    if let Some(w) = sinks.jsonl.as_mut() {
        let _ = writeln!(w, "{}", e.to_json_line());
    }
    if let Some(buf) = sinks.capture.as_mut() {
        buf.push(e);
    }
}

/// An open span; the guard records the span on drop. Inactive (and
/// free) when observability is disabled at creation time.
pub struct Span(Option<SpanInner>);

struct SpanInner {
    id: u64,
    parent: u64,
    remote: Option<SpanCtx>,
    name: &'static str,
    start_us: u64,
    label: Option<String>,
}

/// Open a span nested under the current thread's innermost open span
/// (or under the configured cross-process parent at top level).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    open_span(name, parent, None)
}

/// Open a span under an explicit parent — the cross-thread and
/// cross-process form. `None` (a disabled parent's [`Span::ctx`])
/// falls back to [`span`] semantics.
pub fn span_under(name: &'static str, parent: Option<SpanCtx>) -> Span {
    if !enabled() {
        return Span(None);
    }
    match parent {
        None => span(name),
        Some(ctx) if ctx.pid == own_pid() => open_span(name, ctx.id, None),
        Some(ctx) => open_span(name, 0, Some(ctx)),
    }
}

fn open_span(name: &'static str, parent: u64, remote: Option<SpanCtx>) -> Span {
    let remote = if parent == 0 {
        remote.or_else(|| *lock_live(&state().remote_parent))
    } else {
        remote
    };
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span(Some(SpanInner {
        id,
        parent,
        remote,
        name,
        start_us: now_us(),
        label: None,
    }))
}

impl Span {
    /// Whether the span is recording.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Attach a free-form label (only evaluated when active, so guard
    /// expensive formatting with [`Span::is_active`]).
    pub fn set_label(&mut self, label: impl Into<String>) {
        if let Some(inner) = self.0.as_mut() {
            inner.label = Some(label.into());
        }
    }

    /// The span's identity, for parenting work on other threads or in
    /// other processes. `None` when inactive.
    pub fn ctx(&self) -> Option<SpanCtx> {
        self.0.as_ref().map(|i| SpanCtx {
            pid: own_pid(),
            id: i.id,
        })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut v = s.borrow_mut();
            if let Some(pos) = v.iter().rposition(|&x| x == inner.id) {
                v.remove(pos);
            }
        });
        let dur_us = now_us().saturating_sub(inner.start_us);
        emit(Event::Span {
            pid: own_pid(),
            id: inner.id,
            parent: inner.parent,
            remote: inner.remote,
            name: inner.name.to_string(),
            start_us: inner.start_us,
            dur_us,
            label: inner.label,
        });
    }
}

/// Record an instantaneous annotated event (retry, kill, …) under the
/// current thread's innermost open span.
pub fn mark(name: &'static str, fields: &[(&str, String)]) {
    if !enabled() {
        return;
    }
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let remote = if parent == 0 {
        *lock_live(&state().remote_parent)
    } else {
        None
    };
    emit(Event::Mark {
        pid: own_pid(),
        parent,
        remote,
        name: name.to_string(),
        at_us: now_us(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Look up (or register) a counter by name. Prefer the
/// [`counter!`](crate::counter!) macro, which caches per call site.
pub fn counter(name: &'static str) -> &'static Counter {
    lock_live(&state().counters)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new(name))))
}

/// Look up (or register) a histogram by name. Prefer
/// [`histogram!`](crate::histogram!).
pub fn histogram(name: &'static str) -> &'static Histogram {
    lock_live(&state().histograms)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new(name))))
}

/// Look up (or register) a gauge by name. Prefer
/// [`gauge!`](crate::gauge!).
pub fn gauge(name: &'static str) -> &'static Gauge {
    lock_live(&state().gauges)
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new(name))))
}

/// Nonzero live registry values, for the summary renderer:
/// `(counters, histograms as (name, count, sum, bins), gauges)`.
#[allow(clippy::type_complexity)]
pub(crate) fn registry_snapshot() -> (
    Vec<(String, u64)>,
    Vec<(String, u64, u64, Vec<u64>)>,
    Vec<(String, u64)>,
) {
    let st = state();
    let counters = lock_live(&st.counters)
        .values()
        .filter(|c| c.value() > 0)
        .map(|c| (c.name().to_string(), c.value()))
        .collect();
    let hists = lock_live(&st.histograms)
        .values()
        .filter(|h| h.count() > 0)
        .map(|h| {
            let (count, sum, bins) = h.snapshot();
            (h.name().to_string(), count, sum, bins)
        })
        .collect();
    let gauges = lock_live(&st.gauges)
        .values()
        .filter(|g| g.value() > 0)
        .map(|g| (g.name().to_string(), g.value()))
        .collect();
    (counters, hists, gauges)
}

/// Snapshot every nonzero metric into the sinks, flush the JSONL file,
/// and (with the summary sink) print the metric summary to stderr.
/// A no-op when disabled.
pub fn flush() {
    if !enabled() {
        return;
    }
    let pid = own_pid();
    let (counters, hists, gauges) = registry_snapshot();
    for (name, value) in counters {
        emit(Event::Count { pid, name, value });
    }
    for (name, count, sum, bins) in hists {
        emit(Event::Hist {
            pid,
            name,
            count,
            sum,
            bins,
        });
    }
    for (name, max) in gauges {
        emit(Event::Gauge { pid, name, max });
    }
    let st = state();
    let mut sinks = lock_live(&st.sinks);
    if let Some(w) = sinks.jsonl.as_mut() {
        let _ = w.flush();
    }
    if sinks.summary {
        drop(sinks);
        eprint!("{}", render_summary());
    }
}

/// Drain the in-memory capture buffer.
pub fn take_capture() -> Vec<Event> {
    let mut sinks = lock_live(&state().sinks);
    match sinks.capture.as_mut() {
        Some(buf) => std::mem::take(buf),
        None => Vec::new(),
    }
}

/// Outcome of absorbing a JSONL event stream: how many events landed
/// and how many malformed lines were skipped along the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbsorbStats {
    /// Events successfully parsed and emitted into this process's sinks.
    pub absorbed: usize,
    /// Nonempty lines that failed to parse and were skipped.
    pub skipped: usize,
}

/// Absorb a worker's JSONL event stream into this process's sinks,
/// preserving each event verbatim (events are pid-qualified, so no
/// rewriting is needed to keep the merged trace consistent).
///
/// Concurrent writers appending to a shared `jsonl:` sink can interleave
/// partial lines anywhere in the file, not just at the tail, so a
/// malformed line is not fatal: it is skipped, counted in
/// [`AbsorbStats::skipped`], and surfaced on the `obs.absorb.skipped`
/// counter. Every well-formed line before *and after* a torn write
/// still lands. Use [`validate_jsonl`] when strictness is the point.
pub fn absorb_jsonl(text: &str) -> AbsorbStats {
    let mut stats = AbsorbStats::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Event::from_json_line(line) {
            Ok(ev) => {
                emit(ev);
                stats.absorbed += 1;
            }
            Err(_) => stats.skipped += 1,
        }
    }
    if stats.skipped > 0 {
        counter("obs.absorb.skipped").add(stats.skipped as u64);
    }
    stats
}

/// Validate that every nonempty line of a JSONL event stream parses as
/// an [`Event`], without emitting anything. Returns the event count; a
/// malformed line is an error naming the line.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        Event::from_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

/// The environment a coordinator hands a worker subprocess so the
/// worker's spans stitch under `parent` and its events land in
/// `jsonl_path` (later fed to [`absorb_jsonl`]).
pub fn worker_env(parent: Option<SpanCtx>, jsonl_path: &Path) -> Vec<(String, String)> {
    let mut env = vec![(
        OBS_ENV.to_string(),
        format!("jsonl:{}", jsonl_path.display()),
    )];
    if let Some(p) = parent {
        env.push((OBS_PARENT_ENV.to_string(), format!("{}:{}", p.pid, p.id)));
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global sink set is process-wide, so tests that reconfigure
    /// sinks or drain `take_capture` serialize on this lock.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn spans_counters_and_stitching() {
        let _guard = serial();
        configure(ObsConfig {
            capture: true,
            ..ObsConfig::default()
        });
        assert!(enabled());

        // Nested spans record parentage; a sibling thread parents
        // explicitly via ctx().
        let mut outer = span("test.outer");
        outer.set_label("label text");
        let outer_ctx = outer.ctx();
        {
            let _inner = span("test.inner");
            counter!("test.counter").add(3);
            histogram!("test.hist").record(7);
            gauge!("test.gauge").set_max(41);
            mark("test.mark", &[("k", "v".to_string())]);
        }
        let t = std::thread::spawn(move || {
            let _s = span_under("test.cross_thread", outer_ctx);
        });
        t.join().unwrap();
        drop(outer);
        flush();

        let events = take_capture();
        let find_span = |n: &str| {
            events.iter().find_map(|e| match e {
                Event::Span {
                    id, parent, name, ..
                } if name == n => Some((*id, *parent)),
                _ => None,
            })
        };
        let (outer_id, outer_parent) = find_span("test.outer").unwrap();
        assert_eq!(outer_parent, 0);
        let (_, inner_parent) = find_span("test.inner").unwrap();
        assert_eq!(inner_parent, outer_id);
        let (_, cross_parent) = find_span("test.cross_thread").unwrap();
        assert_eq!(cross_parent, outer_id);
        assert!(events.iter().any(
            |e| matches!(e, Event::Mark { name, parent, .. } if name == "test.mark" && *parent != 0)
        ));
        assert!(events.iter().any(
            |e| matches!(e, Event::Count { name, value, .. } if name == "test.counter" && *value >= 3)
        ));
        assert!(events.iter().any(
            |e| matches!(e, Event::Gauge { name, max, .. } if name == "test.gauge" && *max >= 41)
        ));

        // Absorb a synthetic worker stream: events keep their pid and
        // remote parent, and garbage lines are skipped, not fatal.
        configure(ObsConfig {
            capture: true,
            ..ObsConfig::default()
        });
        let worker_line = Event::Span {
            pid: own_pid() + 1,
            id: 1,
            parent: 0,
            remote: Some(SpanCtx {
                pid: own_pid(),
                id: outer_id,
            }),
            name: "worker.root".to_string(),
            start_us: 1,
            dur_us: 2,
            label: None,
        }
        .to_json_line();
        assert_eq!(
            absorb_jsonl(&format!("{worker_line}\n\n")),
            AbsorbStats {
                absorbed: 1,
                skipped: 0
            }
        );
        assert_eq!(
            absorb_jsonl("not json"),
            AbsorbStats {
                absorbed: 0,
                skipped: 1
            }
        );
        let absorbed = take_capture();
        assert!(matches!(
            &absorbed[0],
            Event::Span { remote: Some(r), .. } if r.id == outer_id
        ));

        // The profile renderer sees the worker span under the outer span.
        configure(ObsConfig::disabled());
        assert!(!enabled());
        let s = span("test.disabled");
        assert!(!s.is_active());
        assert!(s.ctx().is_none());
    }

    /// Regression: concurrent handlers appending to one `jsonl:` sink
    /// can tear a line in the *middle* of the file, not only at the
    /// tail. The pre-fix absorber stopped at the first malformed line,
    /// dropping every event after the tear; it must instead skip the
    /// torn fragments, keep absorbing, and count what it skipped.
    #[test]
    fn interior_torn_writes_are_skipped_not_fatal() {
        let _guard = serial();
        configure(ObsConfig {
            capture: true,
            ..ObsConfig::default()
        });
        let line = |name: &str| {
            Event::Count {
                pid: own_pid(),
                name: name.to_string(),
                value: 1,
            }
            .to_json_line()
        };
        let good_a = line("torn.a");
        let good_b = line("torn.b");
        let good_c = line("torn.c");
        // A writer torn mid-record splices half a line into another
        // writer's record, producing two malformed fragments between
        // intact neighbors.
        let torn = format!(
            "{good_a}\n{}\n{}{good_b}\n{good_c}\n",
            &good_a[..good_a.len() / 2],
            &good_b[..3],
        );
        let before = counter("obs.absorb.skipped").value();
        let stats = absorb_jsonl(&torn);
        assert_eq!(stats.absorbed, 2, "events after the tear must land");
        assert_eq!(stats.skipped, 2, "both torn fragments counted");
        assert_eq!(counter("obs.absorb.skipped").value(), before + 2);
        let names: Vec<String> = take_capture()
            .into_iter()
            .filter_map(|e| match e {
                Event::Count { name, .. } => Some(name),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"torn.a".to_string()));
        assert!(names.contains(&"torn.c".to_string()));
        // Strict validation still refuses the same stream.
        assert!(validate_jsonl(&torn).is_err());
        configure(ObsConfig::disabled());
    }

    #[test]
    fn env_config_parses() {
        let cfg = ObsConfig::default();
        assert!(!cfg.is_enabled());
        assert!(parse_parent("123:9").is_some());
        assert_eq!(parse_parent("123:9"), Some(SpanCtx { pid: 123, id: 9 }));
        assert!(parse_parent("123").is_none());
        assert!(parse_parent("a:b").is_none());
        let env = worker_env(Some(SpanCtx { pid: 1, id: 2 }), Path::new("/tmp/x.jsonl"));
        assert_eq!(env[0].0, OBS_ENV);
        assert!(env[0].1.starts_with("jsonl:"));
        assert_eq!(env[1], (OBS_PARENT_ENV.to_string(), "1:2".to_string()));
    }

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        assert!(a > 1_000_000_000_000_000, "epoch-anchored micros");
    }
}
