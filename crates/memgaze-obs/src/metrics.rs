//! Lock-free metric primitives: sharded counters, power-of-2
//! histograms, and maximum gauges.
//!
//! All three are built from plain atomics so hot paths (per-chunk
//! work-queue claims, per-frame decodes) never contend on a lock. When
//! observability is disabled the update methods reduce to one relaxed
//! atomic load and an early return.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Counter shard count. Power of two; large enough that the default
/// analysis thread pool (≤ 8) rarely collides on a cache line.
const SHARDS: usize = 16;

/// One cache line per shard so concurrent writers don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Thread → shard assignment: a cheap round-robin id handed out on
/// first use per thread.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing counter with per-thread shards.
pub struct Counter {
    name: &'static str,
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    pub(crate) fn new(name: &'static str) -> Counter {
        Counter {
            name,
            shards: Default::default(),
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`. A no-op when observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current cumulative value (sum over shards).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Histogram bins: bin 0 counts zeros, bin `k` counts `[2^(k-1), 2^k)`,
/// so 65 bins cover the full `u64` range. The shape matches
/// `memgaze-analysis`'s `Log2Histogram` so renderings line up.
const HIST_BINS: usize = 65;

/// A lock-free power-of-2 histogram of nonnegative values.
pub struct Histogram {
    name: &'static str,
    bins: [AtomicU64; HIST_BINS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            bins: [const { AtomicU64::new(0) }; HIST_BINS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record a value. A no-op when observability is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let bin = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        };
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / c as f64
        }
    }

    /// Snapshot `(count, sum, populated-prefix bins)`.
    pub fn snapshot(&self) -> (u64, u64, Vec<u64>) {
        let bins: Vec<u64> = self
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let hi = bins.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            bins[..hi].to_vec(),
        )
    }
}

/// A gauge tracking both the maximum (e.g. peak shard bytes) and the
/// most recent value (e.g. the watch controller's current period).
pub struct Gauge {
    name: &'static str,
    max: AtomicU64,
    last: AtomicU64,
}

impl Gauge {
    pub(crate) fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            max: AtomicU64::new(0),
            last: AtomicU64::new(0),
        }
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Raise the gauge to at least `v`. A no-op when disabled.
    #[inline]
    pub fn set_max(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record the current value, raising the maximum alongside. A
    /// no-op when disabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.last.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Largest value observed.
    pub fn value(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Most recently [`set`](Self::set) value (0 if only `set_max` was
    /// ever used).
    pub fn last(&self) -> u64 {
        self.last.load(Ordering::Relaxed)
    }
}

/// A registered counter, cached per call site: the registry lock is
/// taken only on each site's first execution.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::counter($name))
    }};
}

/// A registered histogram, cached per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::histogram($name))
    }};
}

/// A registered gauge, cached per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::gauge($name))
    }};
}
