//! Trace rendering: the span tree with inclusive/exclusive times, and
//! the counter / histogram / gauge tables, built from a flat event
//! stream (in-memory capture or absorbed JSONL).
//!
//! Spans are keyed `(pid, id)` — ids are only unique per process — and
//! a worker root's `remote` edge resolves to the coordinator span it
//! was parented under, so one render covers a whole fan-out run.
//! Sibling spans with the same name are aggregated into one line
//! (`×count`), since a fan-out run repeats the same per-range span
//! many times.

use crate::event::{Event, SpanCtx};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary statistics for a rendered trace, used by callers (the
/// `memgaze profile` verb, CI smoke checks) to assert non-emptiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStats {
    /// Total span events.
    pub spans: usize,
    /// Spans with no resolvable parent (trace roots and orphans).
    pub roots: usize,
    /// Distinct emitting processes.
    pub processes: usize,
    /// Total events of any kind.
    pub events: usize,
}

struct Node {
    name: String,
    start_us: u64,
    dur_us: u64,
    label: Option<String>,
}

type Key = (u32, u64);

struct Tree {
    nodes: BTreeMap<Key, Node>,
    children: BTreeMap<Key, Vec<Key>>,
    roots: Vec<Key>,
}

fn build_tree(events: &[Event]) -> Tree {
    let mut nodes: BTreeMap<Key, Node> = BTreeMap::new();
    let mut parent_of: BTreeMap<Key, Option<Key>> = BTreeMap::new();
    for e in events {
        if let Event::Span {
            pid,
            id,
            parent,
            remote,
            name,
            start_us,
            dur_us,
            label,
        } = e
        {
            let key = (*pid, *id);
            nodes.insert(
                key,
                Node {
                    name: name.clone(),
                    start_us: *start_us,
                    dur_us: *dur_us,
                    label: label.clone(),
                },
            );
            let pkey = if *parent != 0 {
                Some((*pid, *parent))
            } else {
                remote.map(|SpanCtx { pid, id }| (pid, id))
            };
            parent_of.insert(key, pkey);
        }
    }
    let mut children: BTreeMap<Key, Vec<Key>> = BTreeMap::new();
    let mut roots: Vec<Key> = Vec::new();
    for (&key, pkey) in &parent_of {
        match pkey {
            // A parent key that names no recorded span (e.g. the
            // enclosing span had not closed when a worker's file was
            // absorbed, or obs was enabled mid-run) makes this span a
            // root rather than dropping it.
            Some(p) if nodes.contains_key(p) => children.entry(*p).or_default().push(key),
            _ => roots.push(key),
        }
    }
    let by_start = |keys: &mut Vec<Key>, nodes: &BTreeMap<Key, Node>| {
        keys.sort_by_key(|k| (nodes[k].start_us, *k));
    };
    by_start(&mut roots, &nodes);
    for v in children.values_mut() {
        by_start(v, &nodes);
    }
    Tree {
        nodes,
        children,
        roots,
    }
}

/// Per-span-name aggregate over a flat event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Spans with this name.
    pub count: u64,
    /// Summed inclusive time, µs.
    pub incl_us: u64,
    /// Summed exclusive time, µs: inclusive minus direct children —
    /// the same subtraction the rendered tree shows.
    pub excl_us: u64,
}

/// Aggregate inclusive/exclusive span time by name. This is what the
/// bench binaries emit as their before/after hot-path breakdown: a
/// flat, machine-comparable view of where a timed region's exclusive
/// time lives.
pub fn exclusive_by_name(events: &[Event]) -> BTreeMap<String, SpanAgg> {
    let tree = build_tree(events);
    let mut out: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for (key, node) in &tree.nodes {
        let child_incl: u64 = tree
            .children
            .get(key)
            .into_iter()
            .flatten()
            .map(|k| tree.nodes[k].dur_us)
            .sum();
        let agg = out.entry(node.name.clone()).or_default();
        agg.count += 1;
        agg.incl_us += node.dur_us;
        agg.excl_us += node.dur_us.saturating_sub(child_incl);
    }
    out
}

/// Trace statistics without rendering.
pub fn stats(events: &[Event]) -> ProfileStats {
    let tree = build_tree(events);
    let mut pids: Vec<u32> = events.iter().map(Event::pid).collect();
    pids.sort_unstable();
    pids.dedup();
    ProfileStats {
        spans: tree.nodes.len(),
        roots: tree.roots.len(),
        processes: pids.len(),
        events: events.len(),
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn render_group(out: &mut String, tree: &Tree, keys: &[Key], depth: usize) {
    // Aggregate same-named siblings into one line, preserving the
    // first-seen (earliest-start) order.
    let mut order: Vec<&str> = Vec::new();
    let mut groups: BTreeMap<&str, Vec<Key>> = BTreeMap::new();
    for k in keys {
        let name = tree.nodes[k].name.as_str();
        if !groups.contains_key(name) {
            order.push(name);
        }
        groups.entry(name).or_default().push(*k);
    }
    for name in order {
        let members = &groups[name];
        let incl: u64 = members.iter().map(|k| tree.nodes[k].dur_us).sum();
        let child_keys: Vec<Key> = members
            .iter()
            .flat_map(|k| tree.children.get(k).into_iter().flatten().copied())
            .collect();
        let child_incl: u64 = child_keys.iter().map(|k| tree.nodes[k].dur_us).sum();
        let excl = incl.saturating_sub(child_incl);
        let indent = "  ".repeat(depth);
        let count = if members.len() > 1 {
            format!(" \u{00d7}{}", members.len())
        } else {
            String::new()
        };
        let label = match members.as_slice() {
            [only] => tree.nodes[only]
                .label
                .as_deref()
                .map(|l| format!("  [{l}]"))
                .unwrap_or_default(),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{indent}{name}{count}  incl {}  excl {}{label}",
            fmt_us(incl),
            fmt_us(excl)
        );
        if !child_keys.is_empty() {
            let mut sorted = child_keys;
            sorted.sort_by_key(|k| (tree.nodes[k].start_us, *k));
            render_group(out, tree, &sorted, depth + 1);
        }
    }
}

/// Merge metric snapshots: snapshots are cumulative and a process may
/// flush more than once, so per `(pid, name)` the largest snapshot
/// wins; values are then summed (counters) or maxed (gauges) across
/// processes.
struct Metrics {
    counters: Vec<(String, u64)>,
    hists: Vec<(String, u64, f64)>,
    gauges: Vec<(String, u64)>,
}

fn merge_metrics(events: &[Event]) -> Metrics {
    let mut counts: BTreeMap<(u32, &str), u64> = BTreeMap::new();
    let mut gauges: BTreeMap<(u32, &str), u64> = BTreeMap::new();
    let mut hists: BTreeMap<(u32, &str), (u64, u64)> = BTreeMap::new();
    for e in events {
        match e {
            Event::Count { pid, name, value } => {
                let slot = counts.entry((*pid, name)).or_default();
                *slot = (*slot).max(*value);
            }
            Event::Gauge { pid, name, max } => {
                let slot = gauges.entry((*pid, name)).or_default();
                *slot = (*slot).max(*max);
            }
            Event::Hist {
                pid,
                name,
                count,
                sum,
                ..
            } => {
                let slot = hists.entry((*pid, name)).or_default();
                if *count > slot.0 {
                    *slot = (*count, *sum);
                }
            }
            _ => {}
        }
    }
    let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
    for ((_, name), v) in &counts {
        *by_name.entry(name).or_default() += v;
    }
    let mut counters: Vec<(String, u64)> = by_name
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let mut gauge_by_name: BTreeMap<&str, u64> = BTreeMap::new();
    for ((_, name), v) in &gauges {
        let slot = gauge_by_name.entry(name).or_default();
        *slot = (*slot).max(*v);
    }
    let gauges_out = gauge_by_name
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();

    let mut hist_by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for ((_, name), (c, s)) in &hists {
        let slot = hist_by_name.entry(name).or_default();
        slot.0 += c;
        slot.1 += s;
    }
    let hists_out = hist_by_name
        .into_iter()
        .map(|(n, (c, s))| {
            (
                n.to_string(),
                c,
                if c == 0 { 0.0 } else { s as f64 / c as f64 },
            )
        })
        .collect();
    Metrics {
        counters,
        hists: hists_out,
        gauges: gauges_out,
    }
}

/// Render the full profile: span tree, marks, then metric tables.
pub fn render_profile(events: &[Event]) -> String {
    let tree = build_tree(events);
    let st = stats(events);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== trace: {} spans, {} roots, {} process(es) ==",
        st.spans, st.roots, st.processes
    );
    if tree.roots.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        render_group(&mut out, &tree, &tree.roots, 0);
    }

    let marks: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::Mark { .. }))
        .collect();
    if !marks.is_empty() {
        let _ = writeln!(out, "\n== marks ({}) ==", marks.len());
        for m in marks {
            if let Event::Mark {
                pid, name, fields, ..
            } = m
            {
                let detail: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = writeln!(out, "  {name} (pid {pid})  {}", detail.join(" "));
            }
        }
    }

    let metrics = merge_metrics(events);
    if !metrics.counters.is_empty() {
        out.push_str("\n== top counters ==\n");
        for (name, v) in metrics.counters.iter().take(20) {
            let _ = writeln!(out, "  {name:<36} {v:>14}");
        }
    }
    if !metrics.hists.is_empty() {
        out.push_str("\n== histograms ==\n");
        for (name, count, mean) in &metrics.hists {
            let _ = writeln!(out, "  {name:<36} n={count:<10} mean={mean:.1}");
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("\n== gauges (max) ==\n");
        for (name, v) in &metrics.gauges {
            let _ = writeln!(out, "  {name:<36} {v:>14}");
        }
    }
    out
}

/// Render the live metric registries (the stderr summary sink). Spans
/// are not included — summaries are for processes that only want the
/// counter rollup without an event file.
pub fn render_summary() -> String {
    let mut events: Vec<Event> = Vec::new();
    let pid = crate::own_pid();
    let st = crate::registry_snapshot();
    for (name, value) in st.0 {
        events.push(Event::Count { pid, name, value });
    }
    for (name, count, sum, bins) in st.1 {
        events.push(Event::Hist {
            pid,
            name,
            count,
            sum,
            bins,
        });
    }
    for (name, max) in st.2 {
        events.push(Event::Gauge { pid, name, max });
    }
    if events.is_empty() {
        return String::from("== memgaze-obs: no metrics recorded ==\n");
    }
    let metrics = merge_metrics(&events);
    let mut out = String::from("== memgaze-obs summary ==\n");
    for (name, v) in &metrics.counters {
        let _ = writeln!(out, "  {name:<36} {v:>14}");
    }
    for (name, count, mean) in &metrics.hists {
        let _ = writeln!(out, "  {name:<36} n={count:<10} mean={mean:.1}");
    }
    for (name, v) in &metrics.gauges {
        let _ = writeln!(out, "  {name:<36} max {v:>10}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        pid: u32,
        id: u64,
        parent: u64,
        remote: Option<SpanCtx>,
        name: &str,
        start: u64,
        dur: u64,
    ) -> Event {
        Event::Span {
            pid,
            id,
            parent,
            remote,
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
            label: None,
        }
    }

    #[test]
    fn tree_stitches_across_processes() {
        let events = vec![
            span(1, 1, 0, None, "fanout.run", 0, 100),
            span(1, 2, 1, None, "fanout.range", 5, 40),
            span(1, 3, 1, None, "fanout.range", 50, 40),
            span(
                2,
                1,
                0,
                Some(SpanCtx { pid: 1, id: 2 }),
                "worker.analyze_frames",
                10,
                30,
            ),
            Event::Count {
                pid: 2,
                name: "model.frames_decoded".into(),
                value: 64,
            },
            Event::Count {
                pid: 2,
                name: "model.frames_decoded".into(),
                value: 80,
            },
            Event::Count {
                pid: 1,
                name: "model.frames_decoded".into(),
                value: 10,
            },
        ];
        let st = stats(&events);
        assert_eq!(st.spans, 4);
        assert_eq!(st.roots, 1);
        assert_eq!(st.processes, 2);
        let rendered = render_profile(&events);
        assert!(rendered.contains("fanout.run"), "{rendered}");
        assert!(rendered.contains("fanout.range \u{00d7}2"), "{rendered}");
        assert!(rendered.contains("worker.analyze_frames"), "{rendered}");
        // Cumulative snapshots: max per pid (80), summed across pids (+10).
        assert!(rendered.contains("90"), "{rendered}");
        // Exclusive time of fanout.run = 100 - (40 + 40).
        assert!(rendered.contains("incl 100us  excl 20us"), "{rendered}");
    }

    #[test]
    fn orphan_parents_become_roots() {
        let events = vec![span(1, 7, 99, None, "lonely", 0, 5)];
        let st = stats(&events);
        assert_eq!(st.spans, 1);
        assert_eq!(st.roots, 1);
        assert!(render_profile(&events).contains("lonely"));
    }

    #[test]
    fn empty_trace_renders() {
        let rendered = render_profile(&[]);
        assert!(rendered.contains("no spans"));
    }
}
