//! The structured event model and its JSONL wire format.
//!
//! Every observable fact is an [`Event`]: a closed span, an
//! instantaneous mark, or a metric snapshot (counter / histogram /
//! gauge). Events are self-describing — they carry the emitting
//! process id — so a coordinator can absorb a worker's event stream
//! verbatim and the merged stream still reconstructs one trace tree.

use crate::json::{self, Value};

/// A span or mark's identity within one process. Ids are only unique
/// per process; cross-process references always pair an id with a pid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanCtx {
    /// Emitting process.
    pub pid: u32,
    /// Span id within that process.
    pub id: u64,
}

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed span.
    Span {
        /// Emitting process.
        pid: u32,
        /// Span id (unique within `pid`).
        id: u64,
        /// Parent span id within the same process, 0 for none.
        parent: u64,
        /// Cross-process parent, when this span is a worker-side root
        /// stitched under a coordinator span.
        remote: Option<SpanCtx>,
        /// Static span name (e.g. `pipeline.collect`).
        name: String,
        /// Start, in microseconds since the Unix epoch (monotonic
        /// within a process; see `crate::now_us`).
        start_us: u64,
        /// Inclusive duration in microseconds.
        dur_us: u64,
        /// Optional free-form detail (shard index, frame range, …).
        label: Option<String>,
    },
    /// An instantaneous annotated point (retry, kill, …).
    Mark {
        /// Emitting process.
        pid: u32,
        /// Enclosing span id, 0 for none.
        parent: u64,
        /// Cross-process parent, mirroring [`Event::Span::remote`].
        remote: Option<SpanCtx>,
        /// Mark name (e.g. `fanout.retry`).
        name: String,
        /// Timestamp, microseconds since the Unix epoch.
        at_us: u64,
        /// Key/value detail.
        fields: Vec<(String, String)>,
    },
    /// A counter snapshot (cumulative since process start).
    Count {
        /// Emitting process.
        pid: u32,
        /// Counter name.
        name: String,
        /// Cumulative value.
        value: u64,
    },
    /// A power-of-2 histogram snapshot (cumulative).
    Hist {
        /// Emitting process.
        pid: u32,
        /// Histogram name.
        name: String,
        /// Total recorded values.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// `bins[0]` counts zeros; `bins[k]` counts `[2^(k-1), 2^k)`.
        bins: Vec<u64>,
    },
    /// A maximum gauge snapshot (cumulative).
    Gauge {
        /// Emitting process.
        pid: u32,
        /// Gauge name.
        name: String,
        /// Largest value observed.
        max: u64,
    },
}

impl Event {
    /// The emitting process id.
    pub fn pid(&self) -> u32 {
        match self {
            Event::Span { pid, .. }
            | Event::Mark { pid, .. }
            | Event::Count { pid, .. }
            | Event::Hist { pid, .. }
            | Event::Gauge { pid, .. } => *pid,
        }
    }

    /// The event name.
    pub fn name(&self) -> &str {
        match self {
            Event::Span { name, .. }
            | Event::Mark { name, .. }
            | Event::Count { name, .. }
            | Event::Hist { name, .. }
            | Event::Gauge { name, .. } => name,
        }
    }

    /// Encode as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let field_str = |s: &mut String, key: &str, val: &str| {
            s.push('"');
            s.push_str(key);
            s.push_str("\":\"");
            json::escape_into(s, val);
            s.push('"');
        };
        let field_num = |s: &mut String, key: &str, val: u64| {
            s.push('"');
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&val.to_string());
        };
        s.push('{');
        match self {
            Event::Span {
                pid,
                id,
                parent,
                remote,
                name,
                start_us,
                dur_us,
                label,
            } => {
                field_str(&mut s, "t", "span");
                s.push(',');
                field_num(&mut s, "pid", *pid as u64);
                s.push(',');
                field_num(&mut s, "id", *id);
                s.push(',');
                field_num(&mut s, "parent", *parent);
                if let Some(r) = remote {
                    s.push(',');
                    field_num(&mut s, "rpid", r.pid as u64);
                    s.push(',');
                    field_num(&mut s, "rid", r.id);
                }
                s.push(',');
                field_str(&mut s, "name", name);
                s.push(',');
                field_num(&mut s, "start_us", *start_us);
                s.push(',');
                field_num(&mut s, "dur_us", *dur_us);
                if let Some(l) = label {
                    s.push(',');
                    field_str(&mut s, "label", l);
                }
            }
            Event::Mark {
                pid,
                parent,
                remote,
                name,
                at_us,
                fields,
            } => {
                field_str(&mut s, "t", "mark");
                s.push(',');
                field_num(&mut s, "pid", *pid as u64);
                s.push(',');
                field_num(&mut s, "parent", *parent);
                if let Some(r) = remote {
                    s.push(',');
                    field_num(&mut s, "rpid", r.pid as u64);
                    s.push(',');
                    field_num(&mut s, "rid", r.id);
                }
                s.push(',');
                field_str(&mut s, "name", name);
                s.push(',');
                field_num(&mut s, "at_us", *at_us);
                s.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    field_str(&mut s, k, v);
                }
                s.push('}');
            }
            Event::Count { pid, name, value } => {
                field_str(&mut s, "t", "count");
                s.push(',');
                field_num(&mut s, "pid", *pid as u64);
                s.push(',');
                field_str(&mut s, "name", name);
                s.push(',');
                field_num(&mut s, "value", *value);
            }
            Event::Hist {
                pid,
                name,
                count,
                sum,
                bins,
            } => {
                field_str(&mut s, "t", "hist");
                s.push(',');
                field_num(&mut s, "pid", *pid as u64);
                s.push(',');
                field_str(&mut s, "name", name);
                s.push(',');
                field_num(&mut s, "count", *count);
                s.push(',');
                field_num(&mut s, "sum", *sum);
                s.push_str(",\"bins\":[");
                for (i, b) in bins.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&b.to_string());
                }
                s.push(']');
            }
            Event::Gauge { pid, name, max } => {
                field_str(&mut s, "t", "gauge");
                s.push(',');
                field_num(&mut s, "pid", *pid as u64);
                s.push(',');
                field_str(&mut s, "name", name);
                s.push(',');
                field_num(&mut s, "max", *max);
            }
        }
        s.push('}');
        s
    }

    /// Decode one parsed JSONL line. `Err` describes the malformation;
    /// the caller decides whether that aborts a stitch or skips a line.
    pub fn from_value(v: &Value) -> Result<Event, String> {
        let tag = v
            .get("t")
            .and_then(Value::as_str)
            .ok_or("missing event tag 't'")?;
        let pid = req_u64(v, "pid")? as u32;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing 'name'")?
            .to_string();
        let remote = match (v.get("rpid"), v.get("rid")) {
            (Some(rp), Some(ri)) => Some(SpanCtx {
                pid: rp.as_u64().ok_or("bad 'rpid'")? as u32,
                id: ri.as_u64().ok_or("bad 'rid'")?,
            }),
            _ => None,
        };
        match tag {
            "span" => Ok(Event::Span {
                pid,
                id: req_u64(v, "id")?,
                parent: req_u64(v, "parent")?,
                remote,
                name,
                start_us: req_u64(v, "start_us")?,
                dur_us: req_u64(v, "dur_us")?,
                label: v
                    .get("label")
                    .and_then(Value::as_str)
                    .map(|s| s.to_string()),
            }),
            "mark" => {
                let mut fields = Vec::new();
                if let Some(Value::Obj(m)) = v.get("fields") {
                    for (k, fv) in m {
                        fields.push((
                            k.clone(),
                            fv.as_str().ok_or("non-string mark field")?.to_string(),
                        ));
                    }
                }
                Ok(Event::Mark {
                    pid,
                    parent: req_u64(v, "parent")?,
                    remote,
                    name,
                    at_us: req_u64(v, "at_us")?,
                    fields,
                })
            }
            "count" => Ok(Event::Count {
                pid,
                name,
                value: req_u64(v, "value")?,
            }),
            "hist" => {
                let bins = match v.get("bins") {
                    Some(Value::Arr(items)) => items
                        .iter()
                        .map(|b| b.as_u64().ok_or_else(|| "bad histogram bin".to_string()))
                        .collect::<Result<Vec<u64>, String>>()?,
                    _ => return Err("missing 'bins'".to_string()),
                };
                Ok(Event::Hist {
                    pid,
                    name,
                    count: req_u64(v, "count")?,
                    sum: req_u64(v, "sum")?,
                    bins,
                })
            }
            "gauge" => Ok(Event::Gauge {
                pid,
                name,
                max: req_u64(v, "max")?,
            }),
            other => Err(format!("unknown event tag '{other}'")),
        }
    }

    /// Decode one raw JSONL line.
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        Event::from_value(&json::parse(line)?)
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: Event) {
        let line = e.to_json_line();
        let back = Event::from_json_line(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
        assert_eq!(back, e, "line: {line}");
    }

    #[test]
    fn all_event_kinds_round_trip() {
        round_trip(Event::Span {
            pid: 7,
            id: 3,
            parent: 1,
            remote: None,
            name: "pipeline.collect".into(),
            start_us: 1_700_000_000_000_000,
            dur_us: 12345,
            label: Some("shard 4 \"quoted\"".into()),
        });
        round_trip(Event::Span {
            pid: 8,
            id: 1,
            parent: 0,
            remote: Some(SpanCtx { pid: 7, id: 3 }),
            name: "worker.analyze_frames".into(),
            start_us: 5,
            dur_us: 6,
            label: None,
        });
        round_trip(Event::Mark {
            pid: 7,
            parent: 2,
            remote: None,
            name: "fanout.retry".into(),
            at_us: 99,
            // Key-sorted: fields decode via a BTreeMap, so round-trip
            // preserves the set, not the order.
            fields: vec![
                ("detail".into(), "worker exited\nwith status 3".into()),
                ("range".into(), "0..3".into()),
            ],
        });
        round_trip(Event::Count {
            pid: 7,
            name: "model.frames_decoded".into(),
            value: u64::MAX,
        });
        round_trip(Event::Hist {
            pid: 7,
            name: "par.queue_depth".into(),
            count: 10,
            sum: 55,
            bins: vec![1, 2, 3, 4],
        });
        round_trip(Event::Gauge {
            pid: 7,
            name: "streaming.peak_shard_bytes".into(),
            max: 1 << 40,
        });
    }

    #[test]
    fn bad_lines_are_typed_errors() {
        assert!(Event::from_json_line("").is_err());
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line(r#"{"t":"span","pid":1}"#).is_err());
        assert!(Event::from_json_line(r#"{"t":"nope","pid":1,"name":"x"}"#).is_err());
    }
}
