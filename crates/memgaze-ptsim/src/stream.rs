//! Collection from pre-decoded load streams.
//!
//! The application workloads (miniVite, GAP, Darknet) run as native Rust
//! against a traced address space rather than through the IR interpreter;
//! they emit loads tagged with a static site ip and instrumentation
//! metadata. This module applies the *same* PT mechanisms — circular
//! buffer with async-fill yield, load-count trigger, per-packet byte
//! accounting, guards, bandwidth-limited full collection — to such
//! streams, producing the same [`SampledTrace`]/[`FullTrace`] the decoder
//! yields on the packet path.

use crate::buffer::Lcg;
use crate::collector::{BandwidthModel, PtMode, SamplerConfig};
use crate::packet::{PacketStats, PtwPacket};
use memgaze_model::{Access, Addr, FullTrace, Ip, Sample, SampledTrace, TraceMeta};
use std::collections::VecDeque;

/// Sampled collection over a decoded load stream.
#[derive(Debug)]
pub struct StreamSampler {
    cfg: SamplerConfig,
    /// Buffered accesses plus their byte cost (two-source loads carry two
    /// packets).
    items: VecDeque<(Access, u64)>,
    used_bytes: u64,
    rng: Lcg,
    loads: u64,
    next_trigger: u64,
    samples: Vec<Sample>,
    stats: PacketStats,
    ptwrites_enabled: u64,
    ptwrites_executed: u64,
    /// Interval accounting since the last [`take_observation`]
    /// (`StreamSampler::take_observation`): packets enabled, packets
    /// overwritten by buffer wrap, and the peak buffer fill.
    interval_enabled: u64,
    interval_overwritten: u64,
    interval_peak_bytes: u64,
}

impl StreamSampler {
    /// A sampler with the given configuration.
    pub fn new(cfg: SamplerConfig) -> StreamSampler {
        let seed = cfg.seed;
        let next_trigger = cfg.period;
        StreamSampler {
            cfg,
            items: VecDeque::new(),
            used_bytes: 0,
            rng: Lcg::new(seed),
            loads: 0,
            next_trigger,
            samples: Vec::new(),
            stats: PacketStats::default(),
            ptwrites_enabled: 0,
            ptwrites_executed: 0,
            interval_enabled: 0,
            interval_overwritten: 0,
            interval_peak_bytes: 0,
        }
    }

    fn pt_enabled(&self) -> bool {
        match self.cfg.mode {
            PtMode::Continuous => true,
            PtMode::SampleOnly => {
                let to_trigger = self.next_trigger.saturating_sub(self.loads);
                to_trigger <= self.cfg.enable_window_loads()
            }
        }
    }

    fn snapshot(&mut self) -> Vec<Access> {
        let jitter = self.rng.range_f64(-0.1, 0.1);
        let f = (self.cfg.yield_factor + jitter).clamp(0.05, 1.0);
        let keep = ((self.items.len() as f64) * f).round() as usize;
        let skip = self.items.len() - keep.min(self.items.len());
        let out = self.items.iter().skip(skip).map(|(a, _)| *a).collect();
        self.items.clear();
        self.used_bytes = 0;
        out
    }

    /// Feed one executed load. `instrumented` marks loads that carry
    /// `ptwrite`s; `packets` is the number of source registers (1 or 2).
    pub fn on_load(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        let time = self.loads;
        if instrumented {
            self.ptwrites_executed += u64::from(packets);
            if self.pt_enabled() && self.cfg.guards.allows(ip) {
                self.ptwrites_enabled += u64::from(packets);
                self.interval_enabled += u64::from(packets);
                self.stats.add_ptw(u64::from(packets));
                let cost = u64::from(packets) * PtwPacket::bytes(self.cfg.compact_payloads);
                while self.used_bytes + cost > self.cfg.buffer_bytes {
                    match self.items.pop_front() {
                        Some((_, c)) => {
                            self.used_bytes = self.used_bytes.saturating_sub(c);
                            self.interval_overwritten +=
                                c / PtwPacket::bytes(self.cfg.compact_payloads).max(1);
                        }
                        None => break,
                    }
                }
                self.items.push_back((
                    Access {
                        ip,
                        addr: Addr(addr),
                        time,
                    },
                    cost,
                ));
                self.used_bytes += cost;
                self.interval_peak_bytes = self.interval_peak_bytes.max(self.used_bytes);
            }
        }
        self.loads += 1;
        if self.loads >= self.next_trigger {
            let accesses = self.snapshot();
            self.samples.push(Sample::new(accesses, self.loads));
            self.next_trigger += self.cfg.period;
        }
    }

    /// Loads seen so far.
    pub fn loads_seen(&self) -> u64 {
        self.loads
    }

    /// Number of completed samples awaiting collection.
    pub fn completed_samples(&self) -> usize {
        self.samples.len()
    }

    /// Drain the samples completed so far without ending collection —
    /// the streaming ingest path encodes them shard-by-shard as they
    /// appear instead of letting the whole trace pile up here.
    pub fn take_completed(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.samples)
    }

    /// Drain the interval accounting since the previous call: how many
    /// packets were enabled, how many were overwritten by buffer wrap
    /// before a snapshot could save them, and the peak buffer fill.
    /// This is the feedback signal the watch controller observes.
    pub fn take_observation(&mut self) -> SamplerObservation {
        let obs = SamplerObservation {
            enabled_packets: self.interval_enabled,
            overwritten_packets: self.interval_overwritten,
            peak_used_bytes: self.interval_peak_bytes,
            buffer_bytes: self.cfg.buffer_bytes,
        };
        self.interval_enabled = 0;
        self.interval_overwritten = 0;
        self.interval_peak_bytes = self.used_bytes;
        obs
    }

    /// Retune the sampling knobs mid-run: period (`w + z`), buffer
    /// capacity, and the hardware address-range guards. The next
    /// trigger is re-derived from the new period so a shrunk period
    /// takes effect immediately instead of after the old interval.
    pub fn retune(&mut self, period: u64, buffer_bytes: u64, guards: crate::guard::IpGuards) {
        if period != self.cfg.period {
            self.cfg.period = period.max(1);
            self.next_trigger = self.loads + self.cfg.period;
        }
        self.cfg.buffer_bytes = buffer_bytes.max(PtwPacket::bytes(self.cfg.compact_payloads));
        self.cfg.guards = guards;
    }

    /// The sampling configuration currently in force (post-retune).
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Finish, returning the trace parts instead of an assembled trace:
    /// final metadata, any samples not yet drained (including the
    /// flushed trailing partial sample), and collection stats.
    pub fn finish_parts(mut self, workload: &str) -> (TraceMeta, Vec<Sample>, StreamStats) {
        if !self.items.is_empty() {
            let accesses = self.snapshot();
            self.samples.push(Sample::new(accesses, self.loads));
        }
        let mut meta = TraceMeta::new(workload, self.cfg.period, self.cfg.buffer_bytes);
        meta.total_loads = self.loads;
        meta.total_instrumented_loads = self.ptwrites_executed;
        let stats = StreamStats {
            packets: self.stats,
            total_loads: self.loads,
            ptwrites_executed: self.ptwrites_executed,
            ptwrites_enabled: self.ptwrites_enabled,
        };
        (meta, self.samples, stats)
    }

    /// Finish: flush a trailing partial sample and build the trace.
    pub fn finish(self, workload: &str) -> (SampledTrace, StreamStats) {
        let (meta, samples, stats) = self.finish_parts(workload);
        let mut trace = SampledTrace::new(meta);
        for s in samples {
            trace.push_sample(s).expect("samples are produced in order");
        }
        (trace, stats)
    }
}

/// Accounting from a stream collection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Packet/byte accounting.
    pub packets: PacketStats,
    /// Loads fed.
    pub total_loads: u64,
    /// `ptwrite`s the instrumented binary executed.
    pub ptwrites_executed: u64,
    /// `ptwrite`s executed while PT was enabled.
    pub ptwrites_enabled: u64,
}

/// One interval's feedback signal from the sampler: how hard the
/// circular buffer was pressed and how much was lost to overwrite.
/// Drained by [`StreamSampler::take_observation`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerObservation {
    /// Packets written while PT was enabled this interval.
    pub enabled_packets: u64,
    /// Packets evicted by buffer wrap before a snapshot saved them.
    pub overwritten_packets: u64,
    /// Peak circular-buffer fill (bytes) this interval.
    pub peak_used_bytes: u64,
    /// Buffer capacity in force at drain time.
    pub buffer_bytes: u64,
}

impl SamplerObservation {
    /// Fraction of enabled packets lost to overwrite (0 when idle).
    pub fn drop_rate(&self) -> f64 {
        if self.enabled_packets == 0 {
            0.0
        } else {
            self.overwritten_packets as f64 / self.enabled_packets as f64
        }
    }

    /// Peak buffer fill as a fraction of capacity.
    pub fn pressure(&self) -> f64 {
        if self.buffer_bytes == 0 {
            0.0
        } else {
            self.peak_used_bytes as f64 / self.buffer_bytes as f64
        }
    }
}

/// Full-trace collection over a decoded load stream, with the
/// token-bucket bandwidth model ('Rec' traces).
#[derive(Debug)]
pub struct StreamFull {
    bw: BandwidthModel,
    compact: bool,
    tokens: f64,
    /// Kept accesses.
    pub accesses: Vec<Access>,
    /// Packet accounting.
    pub stats: PacketStats,
    loads: u64,
    dropped_accesses: u64,
    in_drop_burst: bool,
}

impl StreamFull {
    /// Bandwidth-limited collection.
    pub fn new(bw: BandwidthModel) -> StreamFull {
        StreamFull {
            tokens: bw.burst_bytes,
            bw,
            compact: false,
            accesses: Vec::new(),
            stats: PacketStats::default(),
            loads: 0,
            dropped_accesses: 0,
            in_drop_burst: false,
        }
    }

    /// Ideal collection ('All' traces).
    pub fn unlimited() -> StreamFull {
        StreamFull::new(BandwidthModel {
            bytes_per_load: f64::INFINITY,
            burst_bytes: f64::INFINITY,
        })
    }

    /// Feed one executed load.
    pub fn on_load(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8) {
        let time = self.loads;
        self.loads += 1;
        if self.tokens.is_finite() {
            self.tokens = (self.tokens + self.bw.bytes_per_load).min(self.bw.burst_bytes);
        }
        if !instrumented {
            return;
        }
        self.stats.add_ptw(u64::from(packets));
        let cost = u64::from(packets) as f64 * PtwPacket::bytes(self.compact) as f64;
        if self.tokens >= cost {
            self.tokens -= cost;
            self.in_drop_burst = false;
            self.accesses.push(Access {
                ip,
                addr: Addr(addr),
                time,
            });
        } else {
            self.stats.dropped_packets += u64::from(packets);
            self.dropped_accesses += 1;
            if !self.in_drop_burst {
                self.stats.drop_records += 1;
                self.in_drop_burst = true;
            }
        }
    }

    /// Finish and build the full trace.
    pub fn finish(self, workload: &str) -> FullTrace {
        let mut meta = TraceMeta::new(workload, 0, 0);
        meta.total_loads = self.loads;
        meta.total_instrumented_loads = self.accesses.len() as u64 + self.dropped_accesses;
        let mut t = FullTrace::new(meta);
        t.accesses = self.accesses;
        t.dropped = self.dropped_accesses;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_n(s: &mut StreamSampler, n: u64) {
        for t in 0..n {
            s.on_load(Ip(0x400), 0x10_0000 + (t % 256) * 64, true, 1);
        }
    }

    #[test]
    fn drained_samples_match_monolithic_finish() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 1000;
        let mut whole = StreamSampler::new(cfg.clone());
        let mut drained = StreamSampler::new(cfg);
        let mut collected = Vec::new();
        for t in 0..10_000u64 {
            whole.on_load(Ip(0x400), 0x10_0000 + (t % 256) * 64, true, 1);
            drained.on_load(Ip(0x400), 0x10_0000 + (t % 256) * 64, true, 1);
            if drained.completed_samples() >= 3 {
                collected.extend(drained.take_completed());
            }
        }
        let (trace, whole_stats) = whole.finish("w");
        let (meta, tail, drained_stats) = drained.finish_parts("w");
        collected.extend(tail);
        assert_eq!(meta, trace.meta);
        assert_eq!(collected, trace.samples);
        assert_eq!(drained_stats.total_loads, whole_stats.total_loads);
    }

    #[test]
    fn stream_sampler_produces_periodic_samples() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 1000;
        let mut s = StreamSampler::new(cfg);
        feed_n(&mut s, 10_000);
        let (trace, stats) = s.finish("stream");
        assert!(trace.num_samples() >= 10);
        assert_eq!(stats.total_loads, 10_000);
        assert_eq!(trace.meta.total_loads, 10_000);
        // Sample windows reflect buffer capacity and yield factor, not
        // the whole period.
        assert!(trace.mean_window() < 1000.0);
        assert!(trace.mean_window() > 10.0);
    }

    #[test]
    fn uninstrumented_loads_count_but_do_not_record() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 100;
        let mut s = StreamSampler::new(cfg);
        for t in 0..1000u64 {
            s.on_load(Ip(0x400), t * 8, false, 1);
        }
        let (trace, stats) = s.finish("stream");
        assert_eq!(stats.total_loads, 1000);
        assert_eq!(trace.observed_accesses(), 0);
        assert!(trace.num_samples() >= 10); // triggers still fire
    }

    #[test]
    fn two_source_loads_cost_double() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 1 << 40; // never trigger: inspect buffer pressure only
        cfg.buffer_bytes = 200; // 20 single packets or 10 double
        let mut one = StreamSampler::new(cfg.clone());
        let mut two = StreamSampler::new(cfg);
        for t in 0..100u64 {
            one.on_load(Ip(0x1), t, true, 1);
            two.on_load(Ip(0x2), t, true, 2);
        }
        let (t1, _) = one.finish("a");
        let (t2, _) = two.finish("b");
        let w1 = t1.observed_accesses();
        let w2 = t2.observed_accesses();
        assert!(w2 < w1, "two-source loads must fill the buffer faster");
    }

    #[test]
    fn stream_full_drop_model() {
        let mut f = StreamFull::new(BandwidthModel::default());
        for t in 0..100_000u64 {
            f.on_load(Ip(0x1), t * 8, true, 2);
        }
        let trace = f.finish("w");
        assert!(trace.dropped > 0);
        let rate = trace.drop_rate();
        assert!((0.2..0.9).contains(&rate), "drop rate {rate}");

        let mut u = StreamFull::unlimited();
        for t in 0..10_000u64 {
            u.on_load(Ip(0x1), t * 8, true, 2);
        }
        assert_eq!(u.finish("w").dropped, 0);
    }

    #[test]
    fn sample_only_reduces_enabled_ptwrites() {
        let mut cfg = SamplerConfig::application(10_000);
        cfg.mode = PtMode::SampleOnly;
        let mut opt = StreamSampler::new(cfg.clone());
        let mut cont = StreamSampler::new(SamplerConfig {
            mode: PtMode::Continuous,
            ..cfg
        });
        for t in 0..100_000u64 {
            opt.on_load(Ip(0x1), t * 8, true, 1);
            cont.on_load(Ip(0x1), t * 8, true, 1);
        }
        let (_, so) = opt.finish("o");
        let (_, sc) = cont.finish("c");
        assert_eq!(so.ptwrites_executed, sc.ptwrites_executed);
        assert!(so.ptwrites_enabled * 3 < sc.ptwrites_enabled);
    }
}
