//! Hardware address-range guards.
//!
//! PT's IP filters let "the region of interest change without
//! re-instrumentation" (paper §II): instrumentation stays in the binary,
//! but the hardware only emits packets while execution is inside the
//! configured ranges.

use memgaze_model::{Ip, SymbolTable};
use serde::{Deserialize, Serialize};

/// A set of half-open instruction ranges `[lo, hi)` the hardware traces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IpGuards {
    ranges: Vec<(Ip, Ip)>,
}

impl IpGuards {
    /// Guards that pass everything (no filtering configured).
    pub fn all() -> IpGuards {
        IpGuards::default()
    }

    /// Guard the given explicit ranges.
    pub fn from_ranges(mut ranges: Vec<(Ip, Ip)>) -> IpGuards {
        ranges.retain(|(lo, hi)| lo < hi);
        ranges.sort();
        IpGuards { ranges }
    }

    /// Guard the ranges of the named functions (the usual hotspot-driven
    /// region of interest).
    pub fn from_functions<'a>(
        symbols: &SymbolTable,
        names: impl IntoIterator<Item = &'a str>,
    ) -> IpGuards {
        let ranges = names
            .into_iter()
            .filter_map(|n| symbols.find_by_name(n))
            .filter_map(|id| symbols.function(id))
            .map(|f| (f.lo, f.hi))
            .collect();
        IpGuards::from_ranges(ranges)
    }

    /// Whether the hardware emits packets at `ip`.
    pub fn allows(&self, ip: Ip) -> bool {
        if self.ranges.is_empty() {
            return true;
        }
        let pos = self.ranges.partition_point(|(lo, _)| *lo <= ip);
        pos > 0 && ip < self.ranges[pos - 1].1
    }

    /// Whether any filter is configured.
    pub fn is_filtering(&self) -> bool {
        !self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_allows_everything() {
        let g = IpGuards::all();
        assert!(g.allows(Ip(0)));
        assert!(g.allows(Ip(u64::MAX)));
        assert!(!g.is_filtering());
    }

    #[test]
    fn ranges_filter() {
        let g = IpGuards::from_ranges(vec![(Ip(0x100), Ip(0x200)), (Ip(0x400), Ip(0x500))]);
        assert!(g.is_filtering());
        assert!(g.allows(Ip(0x100)));
        assert!(g.allows(Ip(0x1ff)));
        assert!(!g.allows(Ip(0x200)));
        assert!(!g.allows(Ip(0x300)));
        assert!(g.allows(Ip(0x4ff)));
        assert!(!g.allows(Ip(0x500)));
        assert!(!g.allows(Ip(0x50)));
    }

    #[test]
    fn degenerate_ranges_dropped() {
        let g = IpGuards::from_ranges(vec![(Ip(0x200), Ip(0x100))]);
        assert!(!g.is_filtering());
    }

    #[test]
    fn from_symbol_table() {
        let mut t = SymbolTable::new();
        t.add_function("hot", Ip(0x1000), Ip(0x2000), "a.c");
        t.add_function("cold", Ip(0x2000), Ip(0x3000), "a.c");
        let g = IpGuards::from_functions(&t, ["hot", "missing"]);
        assert!(g.allows(Ip(0x1800)));
        assert!(!g.allows(Ip(0x2800)));
    }
}
