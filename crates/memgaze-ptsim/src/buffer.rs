//! The fixed-size circular trace buffer.
//!
//! "With Processor Tracing, the sample window `w` corresponds to the
//! contents of a fixed-size circular buffer" (paper §III-C). The paper
//! also notes a kernel artifact: "buffers do not yield the expected
//! addresses (size / 8 bytes) ... because buffer fill and flushes occur
//! asynchronously with the sampling trigger" (§VI) — a 16-KiB buffer
//! yields ≈1150 addresses rather than 2048, an 8-KiB one ≈500 rather than
//! 1024. [`CircBuffer::snapshot`] reproduces that with a configurable
//! yield factor jittered by a small deterministic LCG.

use crate::packet::{PtwPacket, PSB_PERIOD, TSC_PERIOD};
use std::collections::VecDeque;

/// Deterministic 64-bit LCG (no `rand` dependency in the hardware model).
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeded generator.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // Musl-style LCG constants, xor-folded for better high bits.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = self.state;
        (x >> 33) ^ x
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Fixed-capacity circular packet buffer with byte accounting.
#[derive(Debug, Clone)]
pub struct CircBuffer {
    cap_bytes: u64,
    used_bytes: u64,
    packet_bytes: u64,
    /// Packets plus their individual byte cost (a packet that carried an
    /// amortized TSC/PSB sideband costs more).
    items: VecDeque<(PtwPacket, u64)>,
    /// Mean fraction of buffer contents the snapshot yields (kernel
    /// async-fill artifact); jittered ±0.1 per snapshot.
    yield_factor: f64,
    rng: Lcg,
    /// PTW packets pushed since the buffer was created (drives amortized
    /// TSC/PSB space inside the buffer).
    pushed: u64,
}

impl CircBuffer {
    /// Default mean yield factor matching the paper's observed ≈ 0.49–0.56
    /// addresses per expected buffer slot.
    pub const DEFAULT_YIELD: f64 = 0.55;

    /// A buffer of `cap_bytes` capacity holding packets of
    /// `packet_bytes` each.
    pub fn new(cap_bytes: u64, packet_bytes: u64, yield_factor: f64, seed: u64) -> CircBuffer {
        assert!(cap_bytes >= packet_bytes, "buffer smaller than one packet");
        assert!(
            (0.0..=1.0).contains(&yield_factor),
            "yield factor out of range"
        );
        CircBuffer {
            cap_bytes,
            used_bytes: 0,
            packet_bytes,
            items: VecDeque::new(),
            yield_factor,
            rng: Lcg::new(seed),
            pushed: 0,
        }
    }

    /// Push a packet, evicting the oldest contents on wrap (circular
    /// overwrite). Sideband TSC/PSB packets consume amortized space.
    pub fn push(&mut self, p: PtwPacket) {
        self.pushed += 1;
        let mut cost = self.packet_bytes;
        if self.pushed.is_multiple_of(TSC_PERIOD) {
            cost += crate::packet::TSC_BYTES;
        }
        if self.pushed.is_multiple_of(PSB_PERIOD) {
            cost += crate::packet::PSB_BYTES;
        }
        while self.used_bytes + cost > self.cap_bytes {
            match self.items.pop_front() {
                Some((_, c)) => self.used_bytes = self.used_bytes.saturating_sub(c),
                None => break,
            }
        }
        self.items.push_back((p, cost));
        self.used_bytes += cost;
    }

    /// Number of packets currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no packets are held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Read the buffer at a sampling trigger: returns the most recent
    /// packets (the async-fill artifact discards the oldest fraction) and
    /// resets the buffer for the next window.
    pub fn snapshot(&mut self) -> Vec<PtwPacket> {
        let jitter = self.rng.range_f64(-0.1, 0.1);
        let f = (self.yield_factor + jitter).clamp(0.05, 1.0);
        let keep = ((self.items.len() as f64) * f).round() as usize;
        let skip = self.items.len() - keep.min(self.items.len());
        let out: Vec<PtwPacket> = self.items.iter().skip(skip).map(|(p, _)| *p).collect();
        self.items.clear();
        self.used_bytes = 0;
        out
    }

    /// Expected number of packets a full buffer would hold.
    pub fn nominal_capacity(&self) -> u64 {
        self.cap_bytes / self.packet_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_model::Ip;

    fn pkt(i: u64) -> PtwPacket {
        PtwPacket {
            ip: Ip(0x400 + i),
            payload: i,
            load_time: i,
        }
    }

    #[test]
    fn wraps_when_full() {
        let mut b = CircBuffer::new(100, 10, 1.0, 1);
        for i in 0..25 {
            b.push(pkt(i));
        }
        // Capacity 10 packets: only the newest survive.
        assert!(b.len() <= 10);
        let snap = b.snapshot();
        assert_eq!(snap.last().unwrap().payload, 24);
        // Oldest retained is recent.
        assert!(snap.first().unwrap().payload >= 15);
        assert!(b.is_empty());
    }

    #[test]
    fn yield_factor_shrinks_snapshots() {
        // Paper: 16-KiB buffer yields ≈1150 addresses, not 2048.
        let mut b = CircBuffer::new(16 << 10, 8, 0.55, 42);
        let mut totals = Vec::new();
        for round in 0..20u64 {
            for i in 0..4096 {
                b.push(pkt(round * 10_000 + i));
            }
            totals.push(b.snapshot().len());
        }
        let mean = totals.iter().sum::<usize>() as f64 / totals.len() as f64;
        assert!(
            (900.0..1400.0).contains(&mean),
            "mean snapshot {mean} outside paper-like range"
        );
    }

    #[test]
    fn snapshot_preserves_order_and_recency() {
        let mut b = CircBuffer::new(1000, 10, 0.5, 7);
        for i in 0..50 {
            b.push(pkt(i));
        }
        let snap = b.snapshot();
        assert!(snap.windows(2).all(|w| w[0].payload < w[1].payload));
        assert_eq!(snap.last().unwrap().payload, 49);
    }

    #[test]
    fn lcg_is_deterministic_and_uniformish() {
        let mut a = Lcg::new(9);
        let mut b = Lcg::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Lcg::new(10);
        let mean: f64 = (0..10_000).map(|_| c.next_f64()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "LCG mean {mean}");
    }

    #[test]
    #[should_panic(expected = "smaller than one packet")]
    fn tiny_buffer_rejected() {
        CircBuffer::new(4, 10, 0.5, 0);
    }
}
