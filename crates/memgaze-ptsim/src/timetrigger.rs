//! Time-based sampling trigger — the accuracy foil for load-based
//! triggering.
//!
//! Paper §III-C, footnote 2: "To ensure a uniform sample of memory
//! addresses, the sample trigger should be a hardware counter for memory
//! accesses, e.g., loads. Sampling in time will decrease accuracy if the
//! load rate changes over time." [`TimeStreamSampler`] triggers on
//! elapsed *cycles* rather than executed loads, so phases with a low load
//! rate are over-represented per load — the ablation binary quantifies
//! the resulting bias.

use crate::buffer::Lcg;
use crate::collector::SamplerConfig;
use crate::packet::{PacketStats, PtwPacket};
use memgaze_model::{Access, Addr, Ip, Sample, SampledTrace, TraceMeta};
use std::collections::VecDeque;

/// Sampled collection triggered on elapsed cycles instead of loads.
#[derive(Debug)]
pub struct TimeStreamSampler {
    cfg: SamplerConfig,
    items: VecDeque<(Access, u64)>,
    used_bytes: u64,
    rng: Lcg,
    loads: u64,
    cycles: u64,
    next_trigger_cycles: u64,
    samples: Vec<Sample>,
    stats: PacketStats,
}

impl TimeStreamSampler {
    /// A time-triggered sampler; `cfg.period` is interpreted in *cycles*.
    pub fn new(cfg: SamplerConfig) -> TimeStreamSampler {
        let seed = cfg.seed;
        let next = cfg.period;
        TimeStreamSampler {
            cfg,
            items: VecDeque::new(),
            used_bytes: 0,
            rng: Lcg::new(seed),
            loads: 0,
            cycles: 0,
            next_trigger_cycles: next,
            samples: Vec::new(),
            stats: PacketStats::default(),
        }
    }

    fn snapshot(&mut self) -> Vec<Access> {
        let jitter = self.rng.range_f64(-0.1, 0.1);
        let f = (self.cfg.yield_factor + jitter).clamp(0.05, 1.0);
        let keep = ((self.items.len() as f64) * f).round() as usize;
        let skip = self.items.len() - keep.min(self.items.len());
        let out = self.items.iter().skip(skip).map(|(a, _)| *a).collect();
        self.items.clear();
        self.used_bytes = 0;
        out
    }

    /// Feed one executed load that took `cycles` cycles of program time
    /// (1 for back-to-back loads; larger in compute-heavy phases).
    pub fn on_load(&mut self, ip: Ip, addr: u64, instrumented: bool, packets: u8, cycles: u64) {
        let time = self.loads;
        if instrumented && self.cfg.guards.allows(ip) {
            self.stats.add_ptw(u64::from(packets));
            let cost = u64::from(packets) * PtwPacket::bytes(self.cfg.compact_payloads);
            while self.used_bytes + cost > self.cfg.buffer_bytes {
                match self.items.pop_front() {
                    Some((_, c)) => self.used_bytes = self.used_bytes.saturating_sub(c),
                    None => break,
                }
            }
            self.items.push_back((
                Access {
                    ip,
                    addr: Addr(addr),
                    time,
                },
                cost,
            ));
            self.used_bytes += cost;
        }
        self.loads += 1;
        self.cycles += cycles.max(1);
        if self.cycles >= self.next_trigger_cycles {
            let accesses = self.snapshot();
            self.samples.push(Sample::new(accesses, self.loads));
            self.next_trigger_cycles += self.cfg.period;
        }
    }

    /// Finish and build the trace. The meta's `period` field records the
    /// *average* loads per sample so ρ stays meaningful for downstream
    /// analysis (which is exactly the bias: it is only an average).
    pub fn finish(mut self, workload: &str) -> (SampledTrace, PacketStats) {
        if !self.items.is_empty() {
            let accesses = self.snapshot();
            self.samples.push(Sample::new(accesses, self.loads));
        }
        let avg_period = if self.samples.is_empty() {
            self.cfg.period
        } else {
            self.loads / self.samples.len() as u64
        };
        let mut meta = TraceMeta::new(workload, avg_period.max(1), self.cfg.buffer_bytes);
        meta.total_loads = self.loads;
        let mut trace = SampledTrace::new(meta);
        for s in self.samples {
            trace.push_sample(s).expect("in order");
        }
        (trace, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamSampler;

    /// A two-phase stream: a dense phase (1 cycle/load, addresses in
    /// region A) and a sparse phase (10 cycles/load, region B), equal
    /// load counts.
    fn feed_two_phase(mut dense: impl FnMut(Ip, u64, u64), n: u64) {
        for t in 0..n {
            dense(Ip(0x400), 0x10_0000 + (t % 512) * 64, 1);
        }
        for t in 0..n {
            dense(Ip(0x404), 0x80_0000 + (t % 512) * 64, 10);
        }
    }

    #[test]
    fn time_trigger_biases_toward_slow_phases() {
        let mut cfg = SamplerConfig::application(20_000);
        cfg.buffer_bytes = 2 << 10;
        let mut time_sampler = TimeStreamSampler::new(cfg.clone());
        let mut load_sampler = StreamSampler::new(SamplerConfig {
            // Equalize the *number of triggers*: total cycles = 11n,
            // total loads = 2n, so the load-based period is scaled.
            period: 20_000 * 2 / 11,
            ..cfg
        });
        let n = 200_000u64;
        feed_two_phase(|ip, a, c| time_sampler.on_load(ip, a, true, 1, c), n);
        feed_two_phase(|ip, a, _| load_sampler.on_load(ip, a, true, 1), n);

        let (tt, _) = time_sampler.finish("time");
        let (lt, _) = load_sampler.finish("loads");

        let frac_b = |trace: &SampledTrace| {
            let total = trace.observed_accesses().max(1);
            let b = trace
                .accesses()
                .filter(|a| a.addr.raw() >= 0x80_0000)
                .count() as u64;
            b as f64 / total as f64
        };
        // The load stream is 50/50; load-based sampling stays near that,
        // time-based sampling over-represents the slow phase.
        let fb_load = frac_b(&lt);
        let fb_time = frac_b(&tt);
        assert!(
            (0.3..0.7).contains(&fb_load),
            "load-based sample should be balanced: {fb_load:.2}"
        );
        assert!(
            fb_time > fb_load + 0.15,
            "time-based sample must over-represent the slow phase: {fb_time:.2} vs {fb_load:.2}"
        );
    }

    #[test]
    fn uniform_rate_makes_both_triggers_agree() {
        let cfg = SamplerConfig::application(10_000);
        let mut tt = TimeStreamSampler::new(cfg.clone());
        let mut lt = StreamSampler::new(cfg);
        for t in 0..100_000u64 {
            let addr = 0x10_0000 + (t % 1024) * 64;
            tt.on_load(Ip(0x400), addr, true, 1, 1);
            lt.on_load(Ip(0x400), addr, true, 1);
        }
        let (a, _) = tt.finish("t");
        let (b, _) = lt.finish("l");
        // Same trigger cadence, similar sample counts and windows.
        assert!((a.num_samples() as i64 - b.num_samples() as i64).abs() <= 1);
        assert!((a.mean_window() - b.mean_window()).abs() / b.mean_window() < 0.4);
    }
}
