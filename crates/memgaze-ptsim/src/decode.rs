//! Decoding raw packet traces into the trace model (paper's Analysis/1,
//! "trace building": converting Linux perf's trace into one for our trace
//! analysis).
//!
//! A `ptwrite` payload is a *source register value*, not an effective
//! address; the decoder reconstructs `base + index·scale + disp` from the
//! packet group of each load plus the annotation literals (paper §III-A).
//! Groups cut in half by the circular buffer's wrap (an Index packet whose
//! Base fell off the head) are discarded and counted.

use crate::collector::{RawSample, RawSampledTrace};
use crate::packet::PtwPacket;
use memgaze_instrument::{Instrumented, PtwRole};
use memgaze_model::{Access, FullTrace, Ip, ModelError, Sample, SampledTrace, TraceMeta};

/// Result of decoding plus diagnostics.
#[derive(Debug, Clone)]
pub struct DecodeOutcome<T> {
    /// The decoded trace.
    pub trace: T,
    /// Packet groups discarded because they were split by a buffer wrap
    /// or truncation.
    pub incomplete_groups: u64,
    /// Packets whose `ptwrite` address had no mapping (should be zero for
    /// self-produced traces).
    pub unknown_packets: u64,
}

struct GroupDecoder<'a> {
    inst: &'a Instrumented,
    pending: Option<(Ip, u64)>,
    incomplete: u64,
    unknown: u64,
}

impl<'a> GroupDecoder<'a> {
    fn new(inst: &'a Instrumented) -> GroupDecoder<'a> {
        GroupDecoder {
            inst,
            pending: None,
            incomplete: 0,
            unknown: 0,
        }
    }

    /// Feed one packet; returns a completed access when the packet closes
    /// a group.
    fn feed(&mut self, pkt: &PtwPacket) -> Option<Access> {
        let info = match self.inst.ptw_map.get(&pkt.ip) {
            Some(i) => *i,
            None => {
                self.unknown += 1;
                return None;
            }
        };
        let annot = self
            .inst
            .annots
            .get(info.load_ip)
            .copied()
            .unwrap_or_else(|| {
                memgaze_model::IpAnnot::of_class(
                    memgaze_model::LoadClass::Irregular,
                    memgaze_model::FunctionId(0),
                )
            });
        match info.role {
            PtwRole::Base => {
                if self.pending.take().is_some() {
                    // A previous base never met its index: wrap loss.
                    self.incomplete += 1;
                }
                if info.last {
                    // Single-source load: address completes now.
                    Some(Access {
                        ip: info.load_ip,
                        addr: memgaze_model::Addr(pkt.payload.wrapping_add(annot.offset as u64)),
                        time: pkt.load_time,
                    })
                } else {
                    self.pending = Some((info.load_ip, pkt.payload));
                    None
                }
            }
            PtwRole::Index => match self.pending.take() {
                Some((load_ip, base)) if load_ip == info.load_ip => {
                    let addr = base
                        .wrapping_add(pkt.payload.wrapping_mul(annot.scale as u64))
                        .wrapping_add(annot.offset as u64);
                    Some(Access {
                        ip: info.load_ip,
                        addr: memgaze_model::Addr(addr),
                        time: pkt.load_time,
                    })
                }
                _ => {
                    // Index without its base (buffer head cut the group).
                    self.incomplete += 1;
                    None
                }
            },
        }
    }

    /// Flush at a sample boundary: a dangling base is an incomplete group.
    fn flush(&mut self) {
        if self.pending.take().is_some() {
            self.incomplete += 1;
        }
    }
}

fn decode_sample(sample: &RawSample, dec: &mut GroupDecoder<'_>) -> Sample {
    let mut accesses = Vec::with_capacity(sample.packets.len());
    for pkt in &sample.packets {
        if let Some(a) = dec.feed(pkt) {
            accesses.push(a);
        }
    }
    dec.flush();
    Sample::new(accesses, sample.trigger_time)
}

/// Decode a raw sampled trace into a [`SampledTrace`].
pub fn decode_sampled(
    raw: &RawSampledTrace,
    inst: &Instrumented,
    mut meta: TraceMeta,
) -> Result<DecodeOutcome<SampledTrace>, ModelError> {
    meta.total_loads = raw.total_loads;
    meta.total_instrumented_loads = raw.ptwrites_executed;
    let mut trace = SampledTrace::new(meta);
    let mut dec = GroupDecoder::new(inst);
    for s in &raw.samples {
        trace.push_sample(decode_sample(s, &mut dec))?;
    }
    Ok(DecodeOutcome {
        trace,
        incomplete_groups: dec.incomplete,
        unknown_packets: dec.unknown,
    })
}

/// Decode a full packet stream into a [`FullTrace`].
pub fn decode_full(
    packets: &[PtwPacket],
    dropped_packets: u64,
    total_loads: u64,
    inst: &Instrumented,
    mut meta: TraceMeta,
) -> DecodeOutcome<FullTrace> {
    meta.total_loads = total_loads;
    meta.total_instrumented_loads = packets.len() as u64 + dropped_packets;
    let mut trace = FullTrace::new(meta);
    trace.dropped = dropped_packets;
    let mut dec = GroupDecoder::new(inst);
    for pkt in packets {
        if let Some(a) = dec.feed(pkt) {
            trace.accesses.push(a);
        }
    }
    dec.flush();
    DecodeOutcome {
        incomplete_groups: dec.incomplete,
        unknown_packets: dec.unknown,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_instrument::Instrumenter;
    use memgaze_isa::builder::{ModuleBuilder, ProcBuilder};
    use memgaze_isa::{AddrMode, Reg};

    /// A module with one two-source load and one one-source load.
    fn toy() -> (memgaze_isa::LoadModule, Instrumented) {
        let mut mb = ModuleBuilder::new("toy");
        let mut pb = ProcBuilder::new("f", "f.c");
        pb.mov_imm(Reg::gp(0), 0x1000);
        pb.mov_imm(Reg::gp(1), 3);
        pb.load(
            Reg::gp(2),
            AddrMode::base_index(Reg::gp(0), Reg::gp(1), 8, 16),
        );
        pb.load(Reg::gp(3), AddrMode::base_disp(Reg::gp(2), -8));
        pb.ret();
        mb.add(pb);
        let m = mb.finish();
        let inst = Instrumenter::default().instrument(&m);
        (m, inst)
    }

    fn run_instrumented(inst: &Instrumented) -> Vec<PtwPacket> {
        use memgaze_isa::interp::{EventSink, Machine};
        #[derive(Default)]
        struct P(Vec<PtwPacket>);
        impl EventSink for P {
            fn on_ptwrite(&mut self, ip: Ip, payload: u64, load_time: u64) {
                self.0.push(PtwPacket {
                    ip,
                    payload,
                    load_time,
                });
            }
        }
        let f = inst.module.find_proc("f").unwrap();
        let mut mach = Machine::new(&inst.module, P::default());
        mach.run(f, 1000).unwrap();
        mach.into_sink().0
    }

    #[test]
    fn reconstructs_effective_addresses() {
        let (_m, inst) = toy();
        let packets = run_instrumented(&inst);
        // Two loads: 2-source (2 packets) + 1-source (1 packet).
        assert_eq!(packets.len(), 3);
        let out = decode_full(&packets, 0, 2, &inst, TraceMeta::new("toy", 0, 0));
        assert_eq!(out.incomplete_groups, 0);
        assert_eq!(out.unknown_packets, 0);
        let a = &out.trace.accesses;
        assert_eq!(a.len(), 2);
        // First load: 0x1000 + 3*8 + 16 = 0x1028.
        assert_eq!(a[0].addr.raw(), 0x1028);
        // Second load: value at [0x1028] is 0 (unmapped), so addr = 0 - 8.
        assert_eq!(a[1].addr.raw(), 0u64.wrapping_sub(8));
    }

    #[test]
    fn cut_group_is_discarded() {
        let (_m, inst) = toy();
        let packets = run_instrumented(&inst);
        // Drop the first packet (the Base of the two-source group), as a
        // buffer wrap would.
        let cut = &packets[1..];
        let out = decode_full(cut, 0, 2, &inst, TraceMeta::new("toy", 0, 0));
        assert_eq!(out.incomplete_groups, 1);
        assert_eq!(out.trace.accesses.len(), 1);
    }

    #[test]
    fn unknown_ptwrite_ip_counted() {
        let (_m, inst) = toy();
        let packets = vec![PtwPacket {
            ip: Ip(0xdead),
            payload: 1,
            load_time: 0,
        }];
        let out = decode_full(&packets, 0, 1, &inst, TraceMeta::new("toy", 0, 0));
        assert_eq!(out.unknown_packets, 1);
        assert!(out.trace.accesses.is_empty());
    }

    #[test]
    fn decoded_ips_are_original_load_ips() {
        let (m, inst) = toy();
        let packets = run_instrumented(&inst);
        let out = decode_full(&packets, 0, 2, &inst, TraceMeta::new("toy", 0, 0));
        let orig_layout = m.layout();
        for a in &out.trace.accesses {
            let (_, _, idx) = orig_layout.locate(a.ip).expect("original ip");
            // In the original module those are instruction indices 2 and 3.
            assert!(idx == 2 || idx == 3);
        }
    }
}
