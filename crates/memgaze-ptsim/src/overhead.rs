//! Time-overhead model (paper §VI-B1, Fig. 7).
//!
//! The paper's measured overheads: with continuous PT ("suboptimal kernel
//! support"), typically 10–95%, up to 5×–7× for Darknet (hypothesized to
//! be `ptwrite` interfering with its much higher store rate); with PT
//! enabled only during samples (MemGaze-opt), 10–35% on memory-intensive
//! regions, "very close to the execution rate of ptwrite instructions",
//! because masked `ptwrite`s still execute as ordinary instructions while
//! enabled ones are "expensive to decode and trigger data copies".
//!
//! The model charges: one baseline cycle per original instruction; one
//! cycle per masked `ptwrite`; several cycles per enabled `ptwrite`;
//! copy cycles per generated trace byte; and a store-interference term
//! proportional to store count × `ptwrite` density (the Darknet effect).

use serde::{Deserialize, Serialize};

/// Cost constants of the overhead model (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Baseline cycles per original instruction.
    pub cycles_per_instr: f64,
    /// Cycles per `ptwrite` executed while PT is enabled (packet
    /// generation + buffer pressure).
    pub ptwrite_on_cycles: f64,
    /// Cycles per `ptwrite` executed while PT is disabled (it still
    /// occupies the pipeline as one instruction).
    pub ptwrite_off_cycles: f64,
    /// Cycles per trace byte copied from the pinned kernel buffer.
    pub copy_cycles_per_byte: f64,
    /// Store-interference coefficient. The interference term is
    /// *quadratic* in the store rate (stores × stores/instrs), so it only
    /// matters for genuinely store-heavy code — the paper hypothesizes
    /// Darknet's 5×–7× comes from "ptwrite interfering with its much
    /// higher store rate" while ordinary benchmarks stay in the 10–95%
    /// band.
    pub store_interference: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            cycles_per_instr: 1.0,
            ptwrite_on_cycles: 3.0,
            ptwrite_off_cycles: 1.0,
            copy_cycles_per_byte: 0.01,
            store_interference: 800.0,
        }
    }
}

/// What a monitored run executed; the model's input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Instructions executed *including* inserted `ptwrite`s.
    pub instrs: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// `ptwrite`s executed in total.
    pub ptwrites_executed: u64,
    /// `ptwrite`s executed while PT was enabled.
    pub ptwrites_enabled: u64,
    /// Trace bytes generated while PT was enabled.
    pub bytes_generated: u64,
}

impl RunProfile {
    /// Instructions of the *original* (uninstrumented) program.
    pub fn base_instrs(&self) -> u64 {
        self.instrs.saturating_sub(self.ptwrites_executed)
    }

    /// Ratio of `ptwrite`s to non-`ptwrite` instructions (Fig. 7's
    /// fourth series, the overhead predictor).
    pub fn ptwrite_ratio(&self) -> f64 {
        let base = self.base_instrs();
        if base == 0 {
            0.0
        } else {
            self.ptwrites_executed as f64 / base as f64
        }
    }
}

/// Cycle breakdown of an overhead estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadEstimate {
    /// Baseline cycles of the uninstrumented program.
    pub base_cycles: f64,
    /// Extra cycles from enabled `ptwrite`s.
    pub ptw_on_cycles: f64,
    /// Extra cycles from masked `ptwrite`s.
    pub ptw_off_cycles: f64,
    /// Extra cycles from trace copies.
    pub copy_cycles: f64,
    /// Extra cycles from store interference.
    pub interference_cycles: f64,
}

impl OverheadEstimate {
    /// Total extra cycles.
    pub fn extra_cycles(&self) -> f64 {
        self.ptw_on_cycles + self.ptw_off_cycles + self.copy_cycles + self.interference_cycles
    }

    /// Fractional overhead (0.4 == 40% slower).
    pub fn overhead(&self) -> f64 {
        if self.base_cycles <= 0.0 {
            0.0
        } else {
            self.extra_cycles() / self.base_cycles
        }
    }

    /// Slowdown factor (1.4 == 40% slower).
    pub fn slowdown(&self) -> f64 {
        1.0 + self.overhead()
    }
}

impl OverheadModel {
    /// Estimate the overhead of a monitored run.
    pub fn estimate(&self, p: &RunProfile) -> OverheadEstimate {
        let base_cycles = p.base_instrs() as f64 * self.cycles_per_instr;
        let density = p.ptwrite_ratio();
        let ptw_off = p.ptwrites_executed.saturating_sub(p.ptwrites_enabled);
        OverheadEstimate {
            base_cycles,
            ptw_on_cycles: p.ptwrites_enabled as f64 * self.ptwrite_on_cycles,
            ptw_off_cycles: ptw_off as f64 * self.ptwrite_off_cycles,
            copy_cycles: p.bytes_generated as f64 * self.copy_cycles_per_byte,
            // Enabled ptwrites contend with stores for the memory system;
            // quadratic in the store rate so only store-heavy code pays,
            // scaled by the enabled fraction of the density.
            interference_cycles: {
                let enabled_frac = if p.ptwrites_executed == 0 {
                    0.0
                } else {
                    p.ptwrites_enabled as f64 / p.ptwrites_executed as f64
                };
                let store_rate = if p.instrs == 0 {
                    0.0
                } else {
                    p.stores as f64 / p.instrs as f64
                };
                p.stores as f64 * store_rate * density * enabled_frac * self.store_interference
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph-benchmark-like profile: ~4 instructions per load, ~20%
    /// ptwrite density, a low store rate.
    fn graph_profile(enabled_frac: f64) -> RunProfile {
        let base: u64 = 10_000_000;
        let ptw: u64 = 2_000_000;
        RunProfile {
            instrs: base + ptw,
            loads: 2_500_000,
            stores: 200_000,
            ptwrites_executed: ptw,
            ptwrites_enabled: (ptw as f64 * enabled_frac) as u64,
            bytes_generated: ((ptw as f64 * enabled_frac) as u64) * 10,
        }
    }

    #[test]
    fn continuous_overhead_in_paper_range() {
        let m = OverheadModel::default();
        let est = m.estimate(&graph_profile(1.0));
        let ov = est.overhead();
        assert!(
            (0.10..=0.95).contains(&ov),
            "continuous overhead {ov} outside the paper's typical 10–95%"
        );
    }

    #[test]
    fn opt_overhead_close_to_ptwrite_rate() {
        let m = OverheadModel::default();
        // PT enabled for ~5% of ptwrites (short windows, long periods).
        let p = graph_profile(0.05);
        let est = m.estimate(&p);
        let ov = est.overhead();
        assert!((0.10..=0.35).contains(&ov), "opt overhead {ov}");
        // "Very close to the execution rate of ptwrite instructions."
        let rate = p.ptwrite_ratio();
        assert!((ov - rate).abs() < 0.10, "opt {ov} vs ptw rate {rate}");
    }

    #[test]
    fn opt_beats_continuous() {
        let m = OverheadModel::default();
        let cont = m.estimate(&graph_profile(1.0)).overhead();
        let opt = m.estimate(&graph_profile(0.05)).overhead();
        assert!(opt < cont / 1.5, "opt {opt} vs continuous {cont}");
    }

    #[test]
    fn store_heavy_runs_blow_up_like_darknet() {
        // Darknet-like: a gemm inner loop — very dense ptwrites and one
        // store per multiply-accumulate.
        let base: u64 = 8_000_000;
        let ptw: u64 = 4_000_000;
        let p = RunProfile {
            instrs: base + ptw,
            loads: 2_000_000,
            stores: 1_000_000,
            ptwrites_executed: ptw,
            ptwrites_enabled: ptw,
            bytes_generated: ptw * 10,
        };
        let est = OverheadModel::default().estimate(&p);
        let slow = est.slowdown();
        assert!(
            (4.0..=8.0).contains(&slow),
            "Darknet-like slowdown {slow} should be ≈5×–7×"
        );
    }

    #[test]
    fn overhead_correlates_with_ptwrite_ratio() {
        // Doubling the ptwrite density should raise overhead.
        let m = OverheadModel::default();
        let lo = graph_profile(1.0);
        let mut hi = lo;
        hi.ptwrites_executed *= 2;
        hi.ptwrites_enabled *= 2;
        hi.instrs = lo.base_instrs() + hi.ptwrites_executed;
        hi.bytes_generated *= 2;
        assert!(m.estimate(&hi).overhead() > 1.8 * m.estimate(&lo).overhead());
    }

    #[test]
    fn degenerate_profiles() {
        let m = OverheadModel::default();
        assert_eq!(m.estimate(&RunProfile::default()).overhead(), 0.0);
        let p = RunProfile {
            instrs: 100,
            ..Default::default()
        };
        assert_eq!(m.estimate(&p).overhead(), 0.0);
        assert_eq!(p.ptwrite_ratio(), 0.0);
    }
}
