//! A software model of Intel Processor Tracing with `ptwrite`, the
//! measurement substrate of MemGaze (paper §III).
//!
//! The real system pins a circular buffer that `ptwrite` fills without OS
//! intervention, triggers a sample every `w+z` loads, and suffers
//! bandwidth-limited copies (perf drops 30–50% of a full trace). Every
//! one of those mechanisms is modeled here:
//!
//! * [`packet`] — PTW/TSC/PSB packet sizes and accounting (including the
//!   compact 32-bit payload ablation);
//! * [`buffer`] — the fixed-size circular buffer with the kernel's
//!   async-fill yield artifact (16 KiB ≈ 1150 addresses, 8 KiB ≈ 500);
//! * [`guard`] — hardware IP-range filters (region of interest without
//!   re-instrumentation);
//! * [`collector`] — sampled and full perf-like collectors
//!   (continuous vs. sample-only PT enable; token-bucket drop model);
//! * [`decode`] — packet-group decoding back to effective addresses using
//!   the instrumentor's annotations (Analysis/1, "trace building");
//! * [`stream`] — the same collection mechanisms over pre-decoded load
//!   streams (the application-workload path);
//! * [`overhead`] — the Fig. 7 time-overhead model;
//! * [`runner`] — end-to-end drivers over instrumented IR modules.

pub mod buffer;
pub mod collector;
pub mod decode;
pub mod guard;
pub mod overhead;
pub mod packet;
pub mod runner;
pub mod stream;
pub mod timetrigger;

pub use buffer::CircBuffer;
pub use collector::{
    BandwidthModel, FullCollector, PtMode, RawSample, RawSampledTrace, SampledCollector,
    SamplerConfig,
};
pub use decode::{decode_full, decode_sampled, DecodeOutcome};
pub use guard::IpGuards;
pub use overhead::{OverheadEstimate, OverheadModel, RunProfile};
pub use packet::{PacketStats, PtwPacket};
pub use runner::{collect_full, collect_sampled, ground_truth, RunStats};
pub use stream::{SamplerObservation, StreamFull, StreamSampler, StreamStats};
pub use timetrigger::TimeStreamSampler;
