//! End-to-end collection runs over instrumented modules.
//!
//! Convenience drivers tying interpreter, collector, and decoder together
//! (paper Fig. 1, Steps 1–2 plus Analysis/1): ground-truth full traces
//! from the original module, sampled PT traces and bandwidth-limited full
//! PT traces from the instrumented one.

use crate::collector::{
    BandwidthModel, FullCollector, RawSampledTrace, SampledCollector, SamplerConfig,
};
use crate::decode::{self, DecodeOutcome};
use crate::packet::PacketStats;
use memgaze_instrument::Instrumented;
use memgaze_isa::interp::{EventSink, ExecStats, Machine};
use memgaze_isa::{LoadModule, ProcId};
use memgaze_model::{Access, FullTrace, Ip, SampledTrace, TraceMeta};

/// Default interpreter step budget for collection runs.
pub const DEFAULT_MAX_INSTRS: u64 = 2_000_000_000;

/// Statistics of one collection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Interpreter statistics (instructions, loads, stores, ptwrites).
    pub exec: ExecStats,
    /// Packet accounting.
    pub packets: PacketStats,
    /// Samples produced (sampled runs only).
    pub samples: u64,
    /// `ptwrite`s executed while PT was enabled.
    pub ptwrites_enabled: u64,
}

/// Ground-truth sink: records every load of the original module.
struct TruthSink {
    accesses: Vec<Access>,
}

impl EventSink for TruthSink {
    fn on_load(&mut self, ip: Ip, addr: u64, load_time: u64) {
        self.accesses.push(Access {
            ip,
            addr: memgaze_model::Addr(addr),
            time: load_time,
        });
    }
}

/// Execute the *original* module and record a perfect load-level trace —
/// the validation baseline the paper collected with a separate tool
/// (§VI-A).
pub fn ground_truth(
    module: &LoadModule,
    entry: ProcId,
    workload: &str,
) -> Result<(FullTrace, ExecStats), memgaze_isa::interp::ExecError> {
    let mut mach = Machine::new(
        module,
        TruthSink {
            accesses: Vec::new(),
        },
    );
    let stats = mach.run(entry, DEFAULT_MAX_INSTRS)?;
    let sink = mach.into_sink();
    let mut meta = TraceMeta::new(workload, 0, 0);
    meta.total_loads = stats.loads;
    meta.total_instrumented_loads = stats.loads;
    let mut trace = FullTrace::new(meta);
    trace.accesses = sink.accesses;
    Ok((trace, stats))
}

/// Run the instrumented module under the sampled collector and decode.
pub fn collect_sampled(
    inst: &Instrumented,
    entry: ProcId,
    cfg: SamplerConfig,
    workload: &str,
) -> Result<(SampledTrace, RunStats, DecodeOutcome<SampledTrace>), Box<dyn std::error::Error>> {
    let meta = TraceMeta::new(workload, cfg.period, cfg.buffer_bytes);
    let mut mach = Machine::new(&inst.module, SampledCollector::new(cfg));
    let exec = mach.run(entry, DEFAULT_MAX_INSTRS)?;
    let raw: RawSampledTrace = mach.into_sink().finish();
    let stats = RunStats {
        exec,
        packets: raw.stats,
        samples: raw.samples.len() as u64,
        ptwrites_enabled: raw.ptwrites_enabled,
    };
    let outcome = decode::decode_sampled(&raw, inst, meta)?;
    Ok((outcome.trace.clone(), stats, outcome))
}

/// Run the instrumented module under the bandwidth-limited full collector
/// and decode ('Rec' traces, or 'All' with [`FullCollector::unlimited`]).
pub fn collect_full(
    inst: &Instrumented,
    entry: ProcId,
    bw: Option<BandwidthModel>,
    workload: &str,
) -> Result<(FullTrace, RunStats), Box<dyn std::error::Error>> {
    let collector = match bw {
        Some(b) => FullCollector::new(b),
        None => FullCollector::unlimited(),
    };
    let mut mach = Machine::new(&inst.module, collector);
    let exec = mach.run(entry, DEFAULT_MAX_INSTRS)?;
    let c = mach.into_sink();
    let stats = RunStats {
        exec,
        packets: c.stats,
        samples: 0,
        ptwrites_enabled: c.stats.ptw_packets,
    };
    let meta = TraceMeta::new(workload, 0, 0);
    let outcome = decode::decode_full(
        &c.packets,
        c.stats.dropped_packets,
        c.total_loads,
        inst,
        meta,
    );
    Ok((outcome.trace, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memgaze_instrument::Instrumenter;
    use memgaze_isa::codegen::{self, Compose, OptLevel, Pattern, UKernelSpec};

    fn spec() -> UKernelSpec {
        UKernelSpec {
            compose: Compose::Serial(vec![Pattern::strided(1), Pattern::Irregular]),
            elems: 512,
            reps: 20,
            opt: OptLevel::O3,
        }
    }

    #[test]
    fn sampled_accesses_are_subset_of_ground_truth() {
        let m = codegen::generate(&spec());
        let main = m.find_proc("main").unwrap();
        let (truth, _) = ground_truth(&m, main, "t").unwrap();
        let inst = Instrumenter::default().instrument(&m);
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 500;
        let (trace, stats, outcome) = collect_sampled(&inst, main, cfg, "t").unwrap();

        assert!(trace.num_samples() > 5);
        assert!(stats.exec.ptwrites > 0);
        assert_eq!(outcome.unknown_packets, 0);

        // Every sampled (time, addr) pair must exist in the ground truth:
        // sampling never fabricates accesses.
        use std::collections::HashSet;
        let truth_set: HashSet<(u64, u64)> = truth
            .accesses
            .iter()
            .map(|a| (a.time, a.addr.raw()))
            .collect();
        for a in trace.accesses() {
            assert!(
                truth_set.contains(&(a.time, a.addr.raw())),
                "sampled access {:?} not in ground truth",
                a
            );
        }
    }

    #[test]
    fn full_collection_with_unlimited_bandwidth_decodes_every_group() {
        let m = codegen::generate(&spec());
        let main = m.find_proc("main").unwrap();
        let inst = Instrumenter::default().instrument(&m);
        let (full, stats) = collect_full(&inst, main, None, "t").unwrap();
        assert_eq!(full.dropped, 0);
        assert!(!full.accesses.is_empty());

        // Count the executed completed groups directly: run the
        // instrumented module once more and tally 'last'-marked ptwrites.
        use memgaze_isa::interp::{EventSink, Machine};
        struct Count<'a>(&'a Instrumented, u64);
        impl EventSink for Count<'_> {
            fn on_ptwrite(&mut self, ip: Ip, _p: u64, _t: u64) {
                if self.0.ptw_map.get(&ip).is_some_and(|i| i.last) {
                    self.1 += 1;
                }
            }
        }
        let mut mach = Machine::new(&inst.module, Count(&inst, 0));
        mach.run(main, DEFAULT_MAX_INSTRS).unwrap();
        let groups = mach.into_sink().1;
        assert_eq!(full.accesses.len() as u64, groups);
        assert!(stats.packets.ptw_packets >= groups);
    }

    #[test]
    fn rec_trace_drops_but_all_does_not() {
        let m = codegen::generate(&UKernelSpec {
            compose: Compose::Single(Pattern::strided(1)),
            elems: 4096,
            reps: 50,
            opt: OptLevel::O3,
        });
        let main = m.find_proc("main").unwrap();
        let inst = Instrumenter::default().instrument(&m);
        let (rec, _) = collect_full(&inst, main, Some(BandwidthModel::default()), "t").unwrap();
        let (all, _) = collect_full(&inst, main, None, "t").unwrap();
        assert_eq!(all.dropped, 0);
        assert!(rec.dropped > 0, "Rec trace must drop under pressure");
        assert!(rec.accesses.len() < all.accesses.len());
    }
}
