//! Perf-like collectors (paper Fig. 1, Step 2).
//!
//! [`SampledCollector`] implements the paper's sampled tracing: `ptwrite`
//! packets land in the circular buffer; a trigger every `w+z` executed
//! loads snapshots the buffer into a raw sample. In *continuous* mode
//! (current kernel support) PT generates packets all the time; in *opt*
//! mode (the paper's proof of concept) PT is enabled only during an
//! enable-window before each trigger, which the overhead model rewards.
//!
//! [`FullCollector`] models full-trace collection, where "the data copy
//! rate between PT's pinned kernel buffer and user memory is too high for
//! real-time, resulting in random drops of 30–50%" (§VI-A): a token-bucket
//! bandwidth model drops packets under pressure and emits DROP records.

use crate::buffer::CircBuffer;
use crate::guard::IpGuards;
use crate::packet::{PacketStats, PtwPacket};
use memgaze_isa::interp::EventSink;
use memgaze_model::Ip;
use serde::{Deserialize, Serialize};

/// Whether PT runs continuously or only during sample windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtMode {
    /// PT enabled for the whole run ("suboptimal kernel support").
    Continuous,
    /// PT enabled only while the buffer should fill before each trigger
    /// (MemGaze-opt).
    SampleOnly,
}

/// Collection configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Sampling period `w+z` in executed loads.
    pub period: u64,
    /// Circular buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// Use 32-bit compact PTW payloads.
    pub compact_payloads: bool,
    /// Hardware IP filters.
    pub guards: IpGuards,
    /// Continuous vs. sample-only PT enable.
    pub mode: PtMode,
    /// RNG seed for the buffer's async-fill jitter.
    pub seed: u64,
    /// Mean snapshot yield factor (see [`CircBuffer`]).
    pub yield_factor: f64,
}

impl SamplerConfig {
    /// The paper's microbenchmark configuration: 10 K-load period,
    /// 16-KiB buffer (≈1150 addresses per sample).
    pub fn microbench() -> SamplerConfig {
        SamplerConfig {
            period: 10_000,
            buffer_bytes: 16 << 10,
            compact_payloads: false,
            guards: IpGuards::all(),
            mode: PtMode::Continuous,
            seed: 0x5eed,
            yield_factor: CircBuffer::DEFAULT_YIELD,
        }
    }

    /// The paper's application configuration: large period (10 M for
    /// miniVite, 5 M for GAP), 8-KiB buffer (≈500 addresses per sample).
    pub fn application(period: u64) -> SamplerConfig {
        SamplerConfig {
            period,
            buffer_bytes: 8 << 10,
            compact_payloads: false,
            guards: IpGuards::all(),
            mode: PtMode::Continuous,
            seed: 0x5eed,
            yield_factor: CircBuffer::DEFAULT_YIELD,
        }
    }

    fn packet_bytes(&self) -> u64 {
        PtwPacket::bytes(self.compact_payloads)
    }

    /// Loads before a trigger during which PT must be enabled in
    /// [`PtMode::SampleOnly`] so the buffer can fill. Sized to the
    /// buffer's nominal packet capacity with 50% slack. This is an upper
    /// bound on `w` in loads assuming ≥1 packet per load.
    pub fn enable_window_loads(&self) -> u64 {
        (self.buffer_bytes / self.packet_bytes()) * 3 / 2
    }
}

/// One raw (undecoded) sample: buffer contents at a trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSample {
    /// Load-counter time of the trigger.
    pub trigger_time: u64,
    /// Snapshot packets, oldest first.
    pub packets: Vec<PtwPacket>,
}

/// The raw sampled trace a collection run produces (perf.data analogue).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RawSampledTrace {
    /// Raw samples in trigger order.
    pub samples: Vec<RawSample>,
    /// Packet/byte accounting.
    pub stats: PacketStats,
    /// Total loads observed by the trigger counter.
    pub total_loads: u64,
    /// Total `ptwrite`s executed while PT was enabled.
    pub ptwrites_enabled: u64,
    /// Total `ptwrite`s executed in the run (enabled or not).
    pub ptwrites_executed: u64,
}

/// Sampled-trace collector; plugs into the interpreter as an
/// [`EventSink`].
#[derive(Debug)]
pub struct SampledCollector {
    cfg: SamplerConfig,
    buf: CircBuffer,
    out: RawSampledTrace,
    next_trigger: u64,
}

impl SampledCollector {
    /// A collector with the given configuration.
    pub fn new(cfg: SamplerConfig) -> SampledCollector {
        let buf = CircBuffer::new(
            cfg.buffer_bytes,
            cfg.packet_bytes(),
            cfg.yield_factor,
            cfg.seed,
        );
        let next_trigger = cfg.period;
        SampledCollector {
            cfg,
            buf,
            out: RawSampledTrace::default(),
            next_trigger,
        }
    }

    /// Whether PT is currently generating packets.
    fn pt_enabled(&self) -> bool {
        match self.cfg.mode {
            PtMode::Continuous => true,
            PtMode::SampleOnly => {
                let to_trigger = self.next_trigger.saturating_sub(self.out.total_loads);
                to_trigger <= self.cfg.enable_window_loads()
            }
        }
    }

    /// Finish collection: flush a final partial sample if the buffer holds
    /// data, and return the raw trace.
    pub fn finish(mut self) -> RawSampledTrace {
        if !self.buf.is_empty() {
            let packets = self.buf.snapshot();
            self.out.samples.push(RawSample {
                trigger_time: self.out.total_loads,
                packets,
            });
        }
        self.out
    }

    /// Immutable view of the raw trace so far.
    pub fn raw(&self) -> &RawSampledTrace {
        &self.out
    }
}

impl EventSink for SampledCollector {
    fn on_load(&mut self, _ip: Ip, _addr: u64, _load_time: u64) {
        self.out.total_loads += 1;
        if self.out.total_loads >= self.next_trigger {
            let packets = self.buf.snapshot();
            self.out.samples.push(RawSample {
                trigger_time: self.out.total_loads,
                packets,
            });
            self.next_trigger += self.cfg.period;
        }
    }

    fn on_ptwrite(&mut self, ip: Ip, payload: u64, load_time: u64) {
        self.out.ptwrites_executed += 1;
        if !self.pt_enabled() || !self.cfg.guards.allows(ip) {
            return;
        }
        self.out.ptwrites_enabled += 1;
        self.out.stats.add_ptw(1);
        self.buf.push(PtwPacket {
            ip,
            payload,
            load_time,
        });
    }
}

/// Bandwidth model for full-trace collection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Sustainable copy bandwidth in trace bytes per executed load.
    pub bytes_per_load: f64,
    /// Token-bucket burst capacity in bytes (one pinned-buffer copy).
    pub burst_bytes: f64,
}

impl Default for BandwidthModel {
    fn default() -> Self {
        // Calibrated so load-intensive instrumented code (≈1 packet/load,
        // 10 B each) drops 30–50% of packets, as the paper observed.
        BandwidthModel {
            bytes_per_load: 6.0,
            burst_bytes: 64.0 * 1024.0,
        }
    }
}

/// Full-trace collector with bandwidth-limited copies.
#[derive(Debug)]
pub struct FullCollector {
    bw: BandwidthModel,
    compact: bool,
    guards: IpGuards,
    tokens: f64,
    last_load_time: u64,
    /// Kept packets.
    pub packets: Vec<PtwPacket>,
    /// Accounting.
    pub stats: PacketStats,
    /// Total loads executed.
    pub total_loads: u64,
    in_drop_burst: bool,
}

impl FullCollector {
    /// A full collector with the given bandwidth model.
    pub fn new(bw: BandwidthModel) -> FullCollector {
        FullCollector {
            tokens: bw.burst_bytes,
            bw,
            compact: false,
            guards: IpGuards::all(),
            last_load_time: 0,
            packets: Vec::new(),
            stats: PacketStats::default(),
            total_loads: 0,
            in_drop_burst: false,
        }
    }

    /// An ideal collector that never drops (used to produce 'All'
    /// baselines directly).
    pub fn unlimited() -> FullCollector {
        FullCollector::new(BandwidthModel {
            bytes_per_load: f64::INFINITY,
            burst_bytes: f64::INFINITY,
        })
    }

    /// Restrict collection to the guarded ranges.
    pub fn with_guards(mut self, guards: IpGuards) -> FullCollector {
        self.guards = guards;
        self
    }
}

impl EventSink for FullCollector {
    fn on_load(&mut self, _ip: Ip, _addr: u64, load_time: u64) {
        self.total_loads += 1;
        let dt = load_time.saturating_sub(self.last_load_time);
        self.last_load_time = load_time;
        if self.tokens.is_finite() {
            self.tokens =
                (self.tokens + dt as f64 * self.bw.bytes_per_load).min(self.bw.burst_bytes);
        }
    }

    fn on_ptwrite(&mut self, ip: Ip, payload: u64, load_time: u64) {
        if !self.guards.allows(ip) {
            return;
        }
        self.stats.add_ptw(1);
        let cost = PtwPacket::bytes(self.compact) as f64;
        if self.tokens >= cost {
            self.tokens -= cost;
            self.in_drop_burst = false;
            self.packets.push(PtwPacket {
                ip,
                payload,
                load_time,
            });
        } else {
            self.stats.dropped_packets += 1;
            if !self.in_drop_burst {
                self.stats.drop_records += 1;
                self.in_drop_burst = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(c: &mut impl EventSink, loads: u64, ptw_per_load: u64) {
        for t in 0..loads {
            for k in 0..ptw_per_load {
                c.on_ptwrite(Ip(0x400 + k), 0x10_0000 + t * 8, t);
            }
            c.on_load(Ip(0x404), 0x10_0000 + t * 8, t);
        }
    }

    #[test]
    fn sampler_triggers_every_period() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 1000;
        let mut c = SampledCollector::new(cfg);
        feed(&mut c, 10_000, 1);
        let raw = c.finish();
        // 10 triggers (no trailing partial: buffer emptied at the last
        // trigger exactly at load 10 000? The final flush may add one).
        assert!(raw.samples.len() >= 10);
        assert_eq!(raw.total_loads, 10_000);
        for s in &raw.samples {
            assert!(s.trigger_time % 1000 == 0 || s.trigger_time == 10_000);
            assert!(!s.packets.is_empty());
        }
    }

    #[test]
    fn sample_only_mode_executes_fewer_enabled_ptwrites() {
        let mut cont_cfg = SamplerConfig::microbench();
        cont_cfg.period = 10_000;
        let mut opt_cfg = cont_cfg.clone();
        opt_cfg.mode = PtMode::SampleOnly;

        let mut cont = SampledCollector::new(cont_cfg);
        let mut opt = SampledCollector::new(opt_cfg);
        feed(&mut cont, 50_000, 1);
        feed(&mut opt, 50_000, 1);
        let (c, o) = (cont.finish(), opt.finish());
        assert_eq!(c.ptwrites_executed, o.ptwrites_executed);
        assert!(
            o.ptwrites_enabled * 2 < c.ptwrites_enabled,
            "opt enabled {} vs continuous {}",
            o.ptwrites_enabled,
            c.ptwrites_enabled
        );
        // Both still produce samples of similar size.
        assert_eq!(c.samples.len(), o.samples.len());
        let mean = |r: &RawSampledTrace| {
            r.samples.iter().map(|s| s.packets.len()).sum::<usize>() as f64 / r.samples.len() as f64
        };
        let (mc, mo) = (mean(&c), mean(&o));
        assert!(
            (mo - mc).abs() / mc < 0.5,
            "opt sample size {mo} too far from continuous {mc}"
        );
    }

    #[test]
    fn guards_suppress_packets() {
        let mut cfg = SamplerConfig::microbench();
        cfg.period = 100;
        cfg.guards = IpGuards::from_ranges(vec![(Ip(0x1000), Ip(0x2000))]);
        let mut c = SampledCollector::new(cfg);
        feed(&mut c, 1000, 1); // ptwrites at 0x400: outside guard
        let raw = c.finish();
        assert_eq!(raw.stats.ptw_packets, 0);
        assert!(raw.samples.iter().all(|s| s.packets.is_empty()));
        assert_eq!(raw.ptwrites_executed, 1000);
        assert_eq!(raw.ptwrites_enabled, 0);
    }

    #[test]
    fn full_collector_drops_under_pressure() {
        // 2 packets per load at 10 B each = 20 B/load demand vs 6 B/load
        // sustainable → heavy drops.
        let mut c = FullCollector::new(BandwidthModel::default());
        feed(&mut c, 100_000, 2);
        let rate = c.stats.drop_rate();
        assert!(
            (0.3..=0.9).contains(&rate),
            "drop rate {rate} outside plausible range"
        );
        assert!(c.stats.drop_records > 0);
        // 1 packet per load = 10 B vs 6 B: still drops, but less.
        let mut c1 = FullCollector::new(BandwidthModel::default());
        feed(&mut c1, 100_000, 1);
        assert!(c1.stats.drop_rate() < rate);
    }

    #[test]
    fn unlimited_collector_never_drops() {
        let mut c = FullCollector::unlimited();
        feed(&mut c, 50_000, 2);
        assert_eq!(c.stats.dropped_packets, 0);
        assert_eq!(c.packets.len(), 100_000);
    }

    #[test]
    fn buffer_snapshot_sizes_match_paper() {
        // 8-KiB buffer with a 10 M period: ≈500 addresses per sample.
        let mut cfg = SamplerConfig::application(100_000);
        cfg.seed = 3;
        let mut c = SampledCollector::new(cfg);
        feed(&mut c, 1_000_000, 1);
        let raw = c.finish();
        let mean = raw.samples.iter().map(|s| s.packets.len()).sum::<usize>() as f64
            / raw.samples.len() as f64;
        assert!((350.0..650.0).contains(&mean), "mean window {mean}");
    }
}
