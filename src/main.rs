//! The `memgaze` command-line tool: trace and analyze the bundled
//! workloads without writing any code.
//!
//! ```text
//! memgaze ubench <pattern> [--opt O0|O3] [--period N] [--elems N] [--reps N]
//! memgaze minivite [v1|v2|v3] [--scale N] [--period N]
//! memgaze gap <pr|pr-spmv|cc|cc-sv> [--scale N] [--period N]
//! memgaze darknet <alexnet|resnet152> [--period N]
//! memgaze profile <any subcommand...> [--obs-out FILE]
//! memgaze list
//! ```
//!
//! Every subcommand prints the hot-function table (paper Table IV shape),
//! the hot-memory regions from the location zoom (Table V shape), the
//! working set, and collection statistics.

use memgaze::analysis::{fmt_f3, fmt_pct, fmt_si, AnalysisConfig, Analyzer, Table};
use memgaze::core::{
    run_fanout, run_fanout_store, trace_workload, trace_workload_streaming, worker_main,
    worker_serve, worker_serve_store, FanoutBackend, FanoutConfig, MemGaze, PipelineConfig,
    StreamingWorkloadReport, WorkerArgs, WorkerServeArgs, WorkerStoreServeArgs,
};
use memgaze::model::DecompressionInfo;
use memgaze::ptsim::SamplerConfig;
use memgaze::store::{QueryEngine, StoreConfig, TraceStore};
use memgaze::workloads::darknet::{self, Network};
use memgaze::workloads::gap::{self, GapConfig, GapKernel};
use memgaze::workloads::minivite::{self, MapVariant, MiniViteConfig};
use memgaze::workloads::ubench::{MicroBench, OptLevel};

/// Minimal flag parsing: `--key value` pairs after positional args.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

/// Flags that take no value (presence alone means "yes").
const BOOL_FLAGS: &[&str] = &["json", "smoke"];

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    flags.push((key.to_string(), "yes".to_string()));
                    continue;
                }
                let val = it.next().unwrap_or_else(|| {
                    eprintln!("missing value for --{key}");
                    std::process::exit(2);
                });
                flags.push((key.to_string(), val));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{key}: {v}");
                std::process::exit(2);
            }),
            None => default,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         memgaze ubench <pattern> [--opt O0|O3] [--period N] [--elems N] [--reps N]\n  \
         memgaze minivite [v1|v2|v3] [--scale N] [--degree N] [--iters N] [--period N]\n  \
         memgaze gap <pr|pr-spmv|cc|cc-sv> [--scale N] [--degree N] [--period N]\n  \
         memgaze darknet <alexnet|resnet152> [--period N]\n  \
         memgaze fanout <pr|pr-spmv|cc|cc-sv> [--workers N] [--scale N] [--period N]\n  \
         \u{20}                [--shard N] [--threads N] [--in-process yes] [--verify yes]\n  \
         \u{20}                [--store DIR]\n  \
         memgaze store put <pr|pr-spmv|cc|cc-sv> --dir DIR [--id ID] [--scale N]\n  \
         \u{20}                [--period N] [--shard N]\n  \
         memgaze store get <id> --dir DIR [--out FILE]\n  \
         memgaze store ls --dir DIR\n  \
         memgaze store gc --dir DIR\n  \
         memgaze store analyze <id> --dir DIR [--threads N]\n  \
         memgaze query <id> --dir DIR [--region lo:hi] [--time lo:hi] [--function NAME]\n  \
         memgaze serve [--addr HOST:PORT] [--threads N] [--max-sessions N] [--queue N]\n  \
         \u{20}                [--session-mb N] [--idle-secs N] [--smoke]\n  \
         memgaze watch [--window N] [--anomaly-threshold X] [--controller pinned|adaptive]\n  \
         \u{20}                [--period N] [--buffer-kb N] [--steps N] [--smoke]\n  \
         memgaze lint [pattern] [--opt O0|O3] [--elems N] [--reps N] [--json]\n  \
         memgaze profile <subcommand args...> [--obs-out FILE]\n  \
         memgaze list\n\n\
         patterns: str<k>, irr, a|b (serial), a/b (conditional), e.g. \"str2|irr\"\n\
         lint with no pattern verifies the full O0+O3 suites plus the synthetic\n\
         workload modules and exits nonzero on any error-severity diagnostic"
    );
    std::process::exit(2);
}

/// `memgaze lint`: run the IR verifier, the differential classification
/// pass, and the instrumentation-plan checker over generated modules.
fn run_lint(args: &Args) -> i32 {
    let elems = args.num("elems", 4096u32);
    let reps = args.num("reps", 50u32);
    let mut modules: Vec<memgaze::isa::LoadModule> = Vec::new();
    if let Some(pattern) = args.positional.get(1) {
        let opt = match args.get("opt") {
            Some("O0") => OptLevel::O0,
            _ => OptLevel::O3,
        };
        let bench = MicroBench::parse(pattern, elems, reps, opt).unwrap_or_else(|| usage());
        modules.push(bench.module());
    } else {
        for opt in [OptLevel::O0, OptLevel::O3] {
            for bench in memgaze::workloads::ubench::suite(opt) {
                modules.push(bench.module());
            }
        }
        // Synthetic application-shaped modules (Table II sizing).
        for (procs, loads) in [(4, 9), (16, 12), (64, 9)] {
            modules.push(memgaze_bench::synthetic_module(procs, loads));
        }
    }

    let config = memgaze::instrument::InstrumentConfig::default();
    let mut table = Table::new(
        "Lint results",
        &[
            "Module", "loads", "agree", "unknown", "upgraded", "lost", "unsound", "errors",
            "warnings",
        ],
    );
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut reports = Vec::new();
    for module in &modules {
        let report = memgaze::instrument::lint_module(module, &config);
        let d = &report.differential;
        table.push_row(vec![
            report.module.clone(),
            d.loads.to_string(),
            d.agree.to_string(),
            d.absint_unknown.to_string(),
            d.upgraded.to_string(),
            d.lost_compression.to_string(),
            d.unsound.to_string(),
            report.count(memgaze::isa::Severity::Error).to_string(),
            report.count(memgaze::isa::Severity::Warning).to_string(),
        ]);
        errors += report.count(memgaze::isa::Severity::Error);
        warnings += report.count(memgaze::isa::Severity::Warning);
        reports.push(report);
    }
    if args.get("json").is_some() {
        print!("{}", lint_reports_json(&reports, errors, warnings));
    } else {
        print!("{}", table.render());
        for report in &reports {
            for diag in &report.diagnostics {
                println!("{diag}");
            }
        }
        println!(
            "\n{} modules linted: {errors} errors, {warnings} warnings",
            modules.len()
        );
    }
    if errors > 0 {
        1
    } else {
        0
    }
}

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled JSON for `memgaze lint --json`: per-module differential
/// summaries plus every diagnostic, the latter sorted by lint id then
/// site so the output is diffable across runs.
fn lint_reports_json(
    reports: &[memgaze::instrument::LintReport],
    errors: usize,
    warnings: usize,
) -> String {
    let mut out = String::from("{\n  \"modules\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let d = &r.differential;
        out.push_str(&format!(
            "    {{\"module\": \"{}\", \"loads\": {}, \"agree\": {}, \
             \"absint_unknown\": {}, \"upgraded\": {}, \"lost_compression\": {}, \
             \"unsound\": {}, \"errors\": {}, \"warnings\": {}}}{}\n",
            json_escape(&r.module),
            d.loads,
            d.agree,
            d.absint_unknown,
            d.upgraded,
            d.lost_compression,
            d.unsound,
            r.count(memgaze::isa::Severity::Error),
            r.count(memgaze::isa::Severity::Warning),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"diagnostics\": [\n");
    let mut diags: Vec<&memgaze::isa::Diagnostic> =
        reports.iter().flat_map(|r| &r.diagnostics).collect();
    diags.sort_by(|a, b| {
        (a.lint.code(), a.site.to_string()).cmp(&(b.lint.code(), b.site.to_string()))
    });
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"site\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            d.lint.code(),
            d.severity,
            json_escape(&d.site.to_string()),
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    let total: u64 = reports.iter().map(|r| r.differential.loads).sum();
    let agree: u64 = reports.iter().map(|r| r.differential.agree).sum();
    let agreement = if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    };
    out.push_str(&format!(
        "  ],\n  \"totals\": {{\"modules\": {}, \"loads\": {total}, \"agreement\": {agreement}, \
         \"errors\": {errors}, \"warnings\": {warnings}}}\n}}\n",
        reports.len()
    ));
    out
}

fn print_analysis(analyzer: &Analyzer<'_>, name: &str) {
    let mut span = memgaze::obs::span("pipeline.analyze");
    if span.is_active() {
        span.set_label(name.to_string());
    }
    let info = analyzer.decompression();
    println!(
        "{name}: {} samples, A(σ) = {}, κ = {:.2}, ρ = {:.1}\n",
        analyzer.trace().num_samples(),
        fmt_si(info.observed as f64),
        info.kappa(),
        info.rho()
    );
    print!(
        "{}",
        analyzer.function_table_rendered("Hot functions").render()
    );

    let mut regions = Table::new(
        "\nHot memory (location zoom)",
        &["Region", "%", "D", "MaxD", "blocks", "A/block", "code"],
    );
    for r in analyzer.region_rows().into_iter().take(8) {
        regions.push_row(vec![
            format!(
                "{:#x}+{}",
                r.range.0,
                fmt_si((r.range.1 - r.range.0) as f64)
            ),
            fmt_pct(r.pct_of_total),
            fmt_f3(r.reuse_d),
            r.max_d.to_string(),
            r.blocks.to_string(),
            fmt_f3(r.accesses_per_block()),
            r.code.first().cloned().unwrap_or_default(),
        ]);
    }
    print!("{}", regions.render());

    let ws = analyzer.working_set();
    println!(
        "\nWorking set: {} pages observed (est. {} pages ≈ {}), inter-sample D ≈ {:.0} pages",
        ws.pages_observed,
        fmt_si(ws.pages_estimated),
        fmt_si(ws.pages_estimated * 4096.0),
        ws.est_intersample_distance
    );
}

fn run_workload(
    name: &str,
    period: u64,
    run: impl FnOnce(&mut memgaze::workloads::TracedSpace<memgaze::core::SamplerRecorder>),
) {
    let sampler = SamplerConfig::application(period);
    let (report, ()) = trace_workload(name, &sampler, |s| run(s));
    let analyzer = report.analyzer(AnalysisConfig::default());
    print_analysis(&analyzer, name);
    println!(
        "\nPhases: {}",
        report
            .phases
            .iter()
            .filter(|p| p.counters.loads > 0)
            .map(|p| format!("{} ({} loads)", p.name, fmt_si(p.counters.loads as f64)))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// A GAP kernel traced through the streaming recorder — the input both
/// `fanout` and `store put` share.
struct TracedGap {
    name: String,
    kernel: GapKernel,
    analysis: AnalysisConfig,
    sizes: [u64; 3],
    streamed: StreamingWorkloadReport,
}

/// Trace the GAP kernel named at `args.positional[pos]` with the shared
/// `--scale/--degree/--iters/--seed/--period/--shard/--threads` knobs.
fn trace_gap(args: &Args, pos: usize) -> Result<TracedGap, i32> {
    let kernel = match args.positional.get(pos).map(String::as_str) {
        Some("pr") => GapKernel::Pr,
        Some("pr-spmv") => GapKernel::PrSpmv,
        Some("cc") => GapKernel::Cc,
        Some("cc-sv") => GapKernel::CcSv,
        _ => usage(),
    };
    let gap_cfg = GapConfig {
        scale: args.num("scale", 10u32),
        degree: args.num("degree", 8usize),
        kernel,
        max_iters: args.num("iters", 9usize),
        seed: args.num("seed", 9u64),
    };
    let name = format!("GAP-{}", kernel.label());
    let sampler = SamplerConfig::application(args.num("period", 20_000u64));
    let analysis = AnalysisConfig {
        threads: args.num("threads", 1usize).max(1),
        ..AnalysisConfig::default()
    };
    let sizes = [16u64, 64, 256];
    let shard = args.num("shard", 8usize);
    match trace_workload_streaming(&name, &sampler, shard, analysis, &sizes, |s| {
        gap::run(s, &gap_cfg);
    }) {
        Ok((streamed, ())) => Ok(TracedGap {
            name,
            kernel,
            analysis,
            sizes,
            streamed,
        }),
        Err(e) => {
            eprintln!("streaming pipeline failed: {e}");
            Err(1)
        }
    }
}

/// `memgaze fanout`: trace a GAP kernel through the streaming recorder,
/// then analyze the indexed container across worker processes and print
/// the merged report. `--store DIR` first puts the trace into a content
/// -addressed store and dispatches workers against it (each fetches only
/// its ranges' blobs). `--verify yes` re-runs the analysis in-process
/// and exits nonzero unless the two reports are identical.
fn run_fanout_cmd(args: &Args) -> i32 {
    let traced = match trace_gap(args, 1) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let TracedGap {
        name,
        kernel,
        analysis,
        sizes,
        streamed,
    } = traced;

    let fan_cfg = FanoutConfig {
        workers: args.num("workers", 4usize).max(1),
        threads_per_worker: analysis.threads,
        locality_sizes: sizes.to_vec(),
        ..FanoutConfig::default()
    };
    let backend = if args.get("in-process").is_some() {
        FanoutBackend::InProcess
    } else {
        match std::env::current_exe() {
            Ok(exe) => FanoutBackend::Subprocess { exe },
            Err(e) => {
                eprintln!("cannot locate own binary ({e}); falling back to in-process workers");
                FanoutBackend::InProcess
            }
        }
    };
    let run = if let Some(dir) = args.get("store") {
        let store = match TraceStore::open(StoreConfig::new(dir)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open store {dir}: {e}");
                return 1;
            }
        };
        let id = format!("fanout-{}", kernel.label());
        let receipt = match streamed.put_into(&store, &id) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("store put failed: {e}");
                return 1;
            }
        };
        println!(
            "store: {} as {} frames ({} new, {} deduplicated), {:.2}x compression",
            id,
            receipt.frames,
            receipt.new_blobs,
            receipt.dedup_blobs,
            receipt.compression_ratio()
        );
        run_fanout_store(
            &store,
            &id,
            &streamed.annots,
            &streamed.symbols,
            analysis,
            &fan_cfg,
            &backend,
        )
    } else {
        run_fanout(
            &streamed.container,
            &streamed.index,
            &streamed.annots,
            &streamed.symbols,
            analysis,
            &fan_cfg,
            &backend,
        )
    };
    let run = match run {
        Ok(run) => run,
        Err(e) => {
            eprintln!("fan-out failed: {e}");
            return 1;
        }
    };

    let info = &run.report.decompression;
    println!(
        "{name}: {} samples over {} worker ranges ({} retries), A(σ) = {}, κ = {:.2}, ρ = {:.1}\n",
        info.num_samples,
        run.ranges.len(),
        run.retries,
        fmt_si(info.observed as f64),
        info.kappa(),
        info.rho()
    );
    let mut table = Table::new(
        "Hot functions (fan-out)",
        &["Function", "Â", "F̂", "ΔF̂", "Fstr%", "D", "±CI"],
    );
    for r in run.report.function_rows.iter().take(10) {
        table.push_row(vec![
            r.name.clone(),
            fmt_si(r.accesses_decompressed),
            fmt_si(r.f_hat_bytes),
            fmt_f3(r.delta_f),
            fmt_pct(r.f_str_pct),
            fmt_f3(r.mean_d),
            fmt_f3(r.confidence.ci_half_width),
        ]);
    }
    print!("{}", table.render());
    for f in &run.failures {
        eprintln!(
            "worker failure (recovered): frames {}..{} attempt {}: {}",
            f.range.0, f.range.1, f.attempt, f.detail
        );
    }

    if args.get("verify").is_some() {
        let resident = &streamed.report;
        let identical = run.report.decompression == resident.decompression
            && run.report.function_rows == resident.function_rows
            && run.report.block_reuse == resident.block_reuse
            && run.report.reuse_histogram == resident.reuse_histogram
            && run.report.locality_series == resident.locality_series
            && run.report.interval_rows(8) == resident.interval_rows(8);
        if identical {
            println!("\nverify: fan-out report is identical to the resident streaming report");
        } else {
            eprintln!("\nverify FAILED: fan-out report differs from the resident streaming report");
            return 1;
        }
    }
    0
}

/// `memgaze analyze-shard`: the fan-out worker. Reads the spec,
/// container, and index files, then either analyzes one assigned frame
/// range (`--frames lo:hi`) or — with `--serve 1` — loads them once and
/// answers framed range requests over stdin until EOF, the persistent
/// worker the coordinator's [`FanoutPool`] keeps warm. Returns (rather
/// than exits) so `main` can flush observability sinks — the
/// coordinator stitches this worker's JSONL into its trace.
fn run_analyze_shard(args: &Args) -> i32 {
    let path = |key: &str| -> std::path::PathBuf {
        args.get(key)
            .unwrap_or_else(|| {
                eprintln!("analyze-shard: missing --{key}");
                std::process::exit(2);
            })
            .into()
    };
    if args.get("serve").is_some() {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        // Store-backed serve mode: the worker opens the trace store and
        // fetches only the blobs each requested range references.
        let served = if args.get("store-root").is_some() {
            let serve = WorkerStoreServeArgs {
                spec: path("spec"),
                store_root: path("store-root"),
                trace_id: args
                    .get("trace")
                    .unwrap_or_else(|| {
                        eprintln!("analyze-shard: missing --trace");
                        std::process::exit(2);
                    })
                    .to_string(),
            };
            worker_serve_store(&serve, &mut stdin.lock(), &mut stdout.lock())
        } else {
            let serve = WorkerServeArgs {
                spec: path("spec"),
                container: path("container"),
                index: path("index"),
            };
            worker_serve(&serve, &mut stdin.lock(), &mut stdout.lock())
        };
        return match served {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("analyze-shard: {e}");
                1
            }
        };
    }
    let frames = args.get("frames").unwrap_or_else(|| {
        eprintln!("analyze-shard: missing --frames lo:hi");
        std::process::exit(2);
    });
    let (lo, hi) = frames
        .split_once(':')
        .and_then(|(lo, hi)| Some((lo.parse().ok()?, hi.parse().ok()?)))
        .unwrap_or_else(|| {
            eprintln!("analyze-shard: bad --frames {frames}, expected lo:hi");
            std::process::exit(2);
        });
    let worker = WorkerArgs {
        spec: path("spec"),
        container: path("container"),
        index: path("index"),
        frames: lo..hi,
    };
    let stdout = std::io::stdout();
    match worker_main(&worker, &mut stdout.lock()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("analyze-shard: {e}");
            1
        }
    }
}

/// Open the trace store named by `--dir`.
fn open_store(args: &Args) -> Result<TraceStore, i32> {
    let Some(dir) = args.get("dir") else {
        eprintln!("missing --dir DIR (the store root)");
        return Err(2);
    };
    TraceStore::open(StoreConfig::new(dir)).map_err(|e| {
        eprintln!("cannot open store {dir}: {e}");
        1
    })
}

/// Parse `lo:hi` with optional `0x` prefixes.
fn parse_span(s: &str) -> Option<(u64, u64)> {
    let (lo, hi) = s.split_once(':')?;
    let num = |t: &str| -> Option<u64> {
        match t.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => t.parse().ok(),
        }
    };
    Some((num(lo)?, num(hi)?))
}

/// `memgaze store <put|get|ls|gc|analyze>`: manage the content-addressed
/// trace store. `put` traces a GAP kernel and stores the sharded
/// container; `get` reassembles the byte-identical container; `analyze`
/// re-analyzes a stored trace through the per-frame result cache.
fn run_store_cmd(args: &Args) -> i32 {
    match args.positional.get(1).map(String::as_str) {
        Some("put") => {
            let traced = match trace_gap(args, 2) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let store = match open_store(args) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let id = args
                .get("id")
                .map(str::to_string)
                .unwrap_or_else(|| format!("gap-{}", traced.kernel.label()));
            match traced.streamed.put_into(&store, &id) {
                Ok(r) => {
                    println!(
                        "put {id}: {} frames ({} new blobs, {} deduplicated), \
                         {} raw bytes -> {} stored ({:.2}x compression)",
                        r.frames,
                        r.new_blobs,
                        r.dedup_blobs,
                        r.raw_bytes,
                        r.stored_bytes,
                        r.compression_ratio()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("store put failed: {e}");
                    1
                }
            }
        }
        Some("get") => {
            let Some(id) = args.positional.get(2) else {
                usage()
            };
            let store = match open_store(args) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let container = match store.get_container(id) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("store get failed: {e}");
                    return 1;
                }
            };
            match args.get("out") {
                Some(out) => match std::fs::write(out, &container) {
                    Ok(()) => {
                        println!("wrote {} container bytes to {out}", container.len());
                        0
                    }
                    Err(e) => {
                        eprintln!("cannot write {out}: {e}");
                        1
                    }
                },
                None => {
                    println!(
                        "{id}: {} container bytes reassembled and verified",
                        container.len()
                    );
                    0
                }
            }
        }
        Some("ls") => {
            let store = match open_store(args) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let entries = match store.ls() {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("store ls failed: {e}");
                    return 1;
                }
            };
            let mut table = Table::new(
                "Stored traces",
                &["Id", "Workload", "frames", "samples", "payload bytes"],
            );
            for e in &entries {
                table.push_row(vec![
                    e.id.clone(),
                    e.workload.clone(),
                    e.frames.to_string(),
                    e.samples.to_string(),
                    e.payload_bytes.to_string(),
                ]);
            }
            print!("{}", table.render());
            println!("\n{} traces", entries.len());
            0
        }
        Some("gc") => {
            let store = match open_store(args) {
                Ok(s) => s,
                Err(code) => return code,
            };
            match store.gc() {
                Ok(r) => {
                    println!(
                        "gc: removed {} unreferenced blobs ({} bytes) and {} cached results",
                        r.blobs_removed, r.blob_bytes_reclaimed, r.results_removed
                    );
                    0
                }
                Err(e) => {
                    eprintln!("store gc failed: {e}");
                    1
                }
            }
        }
        Some("analyze") => {
            let Some(id) = args.positional.get(2) else {
                usage()
            };
            let store = match open_store(args) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let analysis = AnalysisConfig {
                threads: args.num("threads", 1usize).max(1),
                ..AnalysisConfig::default()
            };
            // Trace-level re-analysis: annotations and symbols are not
            // persisted in the store, so function attribution is empty;
            // reuse/locality/decompression statistics are exact.
            let annots = memgaze::model::AuxAnnotations::new();
            let symbols = memgaze::model::SymbolTable::new();
            let sizes = [16u64, 64, 256];
            match store.analyze(id, &annots, &symbols, analysis, &sizes) {
                Ok(a) => {
                    let info = &a.report.decompression;
                    println!(
                        "{id}: {} samples, A(σ) = {}, κ = {:.2}, ρ = {:.1}",
                        info.num_samples,
                        fmt_si(info.observed as f64),
                        info.kappa(),
                        info.rho()
                    );
                    let cache = store.cache_stats();
                    println!(
                        "result cache: {} hits, {} misses; hot-shard LRU: {} hits, {} misses",
                        a.result_hits, a.result_misses, cache.hits, cache.misses
                    );
                    0
                }
                Err(e) => {
                    eprintln!("store analyze failed: {e}");
                    1
                }
            }
        }
        _ => usage(),
    }
}

/// `memgaze query <id>`: answer region / time-range / per-function
/// questions about a stored trace from its catalog summaries alone —
/// no shard is fetched or decoded.
fn run_query_cmd(args: &Args) -> i32 {
    let Some(id) = args.positional.get(1) else {
        usage()
    };
    let store = match open_store(args) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let catalog = match store.catalog(id) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("query: {e}");
            return 1;
        }
    };
    let engine = match QueryEngine::new(&catalog) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("query: {e}");
            return 1;
        }
    };
    let mut answered = false;
    if let Some(spec) = args.get("region") {
        let Some((lo, hi)) = parse_span(spec) else {
            eprintln!("query: bad --region {spec}, expected lo:hi");
            return 2;
        };
        let r = engine.region(lo, hi);
        println!(
            "region {lo:#x}..{hi:#x}: {} accesses over {} blocks in {} frames, \
             D = {:.3}, MaxD = {}",
            r.accesses, r.blocks, r.frames, r.mean_distance, r.max_distance
        );
        answered = true;
    }
    if let Some(spec) = args.get("time") {
        let Some((lo, hi)) = parse_span(spec) else {
            eprintln!("query: bad --time {spec}, expected lo:hi");
            return 2;
        };
        let t = engine.time_range(lo, hi);
        println!(
            "time {lo}..{hi}: {} frames, {} samples, {} loads, D = {:.3}",
            t.frames, t.samples, t.loads, t.mean_distance
        );
        answered = true;
    }
    if let Some(name) = args.get("function") {
        match engine.function(name) {
            Some(f) => println!(
                "function {}: {} loads across {} frames",
                f.name, f.loads, f.frames
            ),
            None => println!("function {name}: not attributed in this trace"),
        }
        answered = true;
    }
    if !answered {
        println!(
            "{id}: {} frames, {} samples, {} payload bytes",
            catalog.frames.len(),
            catalog.total_samples(),
            catalog.payload_bytes()
        );
        let mut table = Table::new("Hot functions (catalog)", &["Function", "loads", "frames"]);
        for f in engine.functions().into_iter().take(10) {
            table.push_row(vec![f.name, f.loads.to_string(), f.frames.to_string()]);
        }
        print!("{}", table.render());
    }
    println!("(answered from catalog summaries; no shard decoded)");
    0
}

/// `memgaze profile <subcommand...>`: run any other subcommand with
/// observability forced on (in-memory capture + a JSONL file), then
/// render the span tree with inclusive/exclusive times, the recorded
/// marks, and the top counters. `--obs-out FILE` chooses where the
/// JSONL events land (default: a file under the temp dir, reported on
/// completion). Exits nonzero if the run recorded no spans or the
/// event file fails to parse.
/// SIGTERM/SIGINT latch for `memgaze serve`: the handler only stores a
/// flag; the serve loop polls it and runs the graceful drain itself.
#[cfg(unix)]
mod serve_signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

/// `memgaze serve`: run the streaming-analysis daemon until SIGTERM or
/// SIGINT, then drain gracefully. `--smoke` instead runs the scripted
/// in-process session matrix and exits.
fn run_serve_cmd(args: &Args) -> i32 {
    let threads = args.num("threads", 8usize);
    if args.get("smoke").is_some() {
        return match memgaze::serve::harness::smoke(threads) {
            Ok(summary) => {
                println!("{summary}");
                0
            }
            Err(e) => {
                eprintln!("serve smoke failed: {e}");
                1
            }
        };
    }

    let cfg = memgaze::serve::ServeConfig {
        max_sessions: args.num("max-sessions", 64usize),
        queue_depth: args.num("queue", 8usize),
        session_bytes: args.num("session-mb", 256u64) << 20,
        idle_timeout: std::time::Duration::from_secs(args.num("idle-secs", 300u64)),
        ..memgaze::serve::ServeConfig::default()
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:8077");
    let server = match memgaze::serve::Server::bind(addr, cfg, threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            return 1;
        }
    };
    println!(
        "memgaze serve listening on {} ({threads} workers); SIGTERM drains",
        server.addr()
    );

    #[cfg(unix)]
    {
        serve_signals::install();
        while !serve_signals::stopped() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    }
    #[cfg(not(unix))]
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }

    #[cfg(unix)]
    {
        eprintln!("serve: draining...");
        let report = server.drain();
        println!(
            "serve: drained; {} sessions sealed, {} seal failures",
            report.sessions_sealed, report.seal_failures
        );
        if report.seal_failures > 0 {
            return 1;
        }
        0
    }
}

/// `memgaze watch`: run the phase-shift workload under the live
/// rolling-window monitor and print the drift table, anomaly marks,
/// and the controller's retune trace. `--smoke` runs the scripted
/// undersized-buffer run and asserts it raises anomalies and
/// converges.
fn run_watch_cmd(args: &Args) -> i32 {
    use memgaze::core::{watch_workload, ControllerMode, WatchConfig};

    if args.get("smoke").is_some() {
        return match memgaze::core::watch_smoke() {
            Ok(summary) => {
                println!("{summary}");
                0
            }
            Err(e) => {
                eprintln!("watch smoke failed: {e}");
                1
            }
        };
    }

    let mode: ControllerMode = match args.get("controller").unwrap_or("adaptive").parse() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("watch: {e}");
            usage();
        }
    };
    let mut sampler = memgaze::ptsim::SamplerConfig::application(args.num("period", 2_000u64));
    sampler.buffer_bytes = args.num("buffer-kb", 1u64).max(1) << 10;
    let watch = WatchConfig {
        window_samples: args.num("window", 8usize).max(1),
        live: memgaze::analysis::LiveConfig {
            anomaly_threshold: args.num("anomaly-threshold", 2.0f64),
            ..memgaze::analysis::LiveConfig::default()
        },
        mode,
        ..WatchConfig::default()
    };
    let steps = args.num("steps", 64usize).max(2);

    let report = match watch_workload(
        "watch",
        &sampler,
        &watch,
        AnalysisConfig::default(),
        &[16, 64, 256],
        |space, step| memgaze::core::phase_shift_steps(space, step, steps, 4_000),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("watch: {e}");
            return 1;
        }
    };

    let mut table = Table::new(
        "Rolling windows",
        &[
            "window",
            "samples",
            "loads",
            "F\u{302} bytes",
            "\u{394}F",
            "\u{394}F_irr%",
            "A_const%",
            "mean d",
            "\u{3ba}",
        ],
    );
    for w in &report.windows {
        table.push_row(vec![
            w.window.to_string(),
            w.samples.to_string(),
            fmt_si(w.observed as f64),
            fmt_si(w.f_hat_bytes),
            fmt_f3(w.delta_f),
            fmt_pct(w.delta_f_irr_pct),
            fmt_pct(w.a_const_pct),
            fmt_f3(w.mean_d),
            fmt_f3(w.kappa),
        ]);
    }
    println!("{}", table.render());

    if report.anomalies.is_empty() {
        println!("no anomaly marks");
    } else {
        println!("anomaly marks:");
        for mark in &report.anomalies {
            println!("  {}", mark.detail());
        }
    }

    match report.retunes.len() {
        0 => println!("\ncontroller ({mode:?}): no retunes"),
        n => {
            println!("\ncontroller ({mode:?}): {n} retunes");
            for r in &report.retunes {
                println!(
                    "  window {:>3}: drop {:.2} pressure {:.2} -> period {} buffer {} ({:?})",
                    r.window, r.drop_rate, r.pressure, r.period, r.buffer_bytes, r.guard
                );
            }
        }
    }
    match report.converged_at {
        Some(w) => println!(
            "converged at window {w}; final drop rate {:.2}",
            report.final_drop_rate
        ),
        None => println!(
            "controller did not converge; final drop rate {:.2}",
            report.final_drop_rate
        ),
    }
    0
}

fn run_profile(args: &Args) -> i32 {
    if args.positional.len() < 2 {
        usage();
    }
    let obs_out: std::path::PathBuf = args.get("obs-out").map(Into::into).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("memgaze-profile-{}.jsonl", std::process::id()))
    });
    memgaze::obs::configure(memgaze::obs::ObsConfig {
        jsonl_path: Some(obs_out.clone()),
        capture: true,
        summary: false,
        remote_parent: None,
    });
    let inner = Args {
        positional: args.positional[1..].to_vec(),
        flags: args.flags.clone(),
    };
    let code = dispatch(&inner);
    memgaze::obs::flush();
    let events = memgaze::obs::take_capture();

    // The file sink must replay exactly: every line parses back into an
    // event (this is what downstream tooling consumes).
    match std::fs::read_to_string(&obs_out) {
        Ok(text) => match memgaze::obs::validate_jsonl(&text) {
            Ok(n) => println!("\n{n} events written to {}", obs_out.display()),
            Err(e) => {
                eprintln!(
                    "profile: event file {} is malformed: {e}",
                    obs_out.display()
                );
                return 1;
            }
        },
        Err(e) => {
            eprintln!("profile: cannot read event file {}: {e}", obs_out.display());
            return 1;
        }
    }

    let stats = memgaze::obs::profile_stats(&events);
    print!("\n{}", memgaze::obs::render_profile(&events));
    if stats.spans == 0 {
        eprintln!("profile: the run recorded no spans");
        return 1;
    }
    code
}

fn main() {
    let args = Args::parse();
    let code = dispatch(&args);
    // Flush observability sinks on every path that returns here: the
    // `analyze-shard` worker's JSONL must hit disk before the
    // coordinator absorbs it, and `MEMGAZE_OBS=summary` prints now.
    memgaze::obs::flush();
    std::process::exit(code);
}

fn dispatch(args: &Args) -> i32 {
    let cmd = args.positional.first().map(String::as_str).unwrap_or("");
    match cmd {
        "ubench" => {
            let pattern = args
                .positional
                .get(1)
                .map(String::as_str)
                .unwrap_or_else(|| usage());
            let opt = match args.get("opt") {
                Some("O0") => OptLevel::O0,
                _ => OptLevel::O3,
            };
            let elems = args.num("elems", 4096u32);
            let reps = args.num("reps", 50u32);
            let bench = MicroBench::parse(pattern, elems, reps, opt).unwrap_or_else(|| usage());
            let mut cfg = PipelineConfig::microbench();
            cfg.sampler.period = args.num("period", 10_000u64);
            let report = match MemGaze::new(cfg.clone()).run_microbench(&bench) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("pipeline failed: {e}");
                    return 1;
                }
            };
            let analyzer = report.analyzer(cfg.analysis);
            print_analysis(&analyzer, &bench.name());
            let info = DecompressionInfo::from_trace(&report.trace, &report.instrumented.annots);
            println!(
                "\nCollected {} of {} loads ({}%)",
                fmt_si(info.observed as f64),
                fmt_si(report.run.exec.loads as f64),
                fmt_pct(100.0 / info.rho().max(1.0))
            );
            0
        }
        "minivite" => {
            let variant = match args.positional.get(1).map(String::as_str) {
                Some("v2") => MapVariant::V2,
                Some("v3") => MapVariant::V3,
                _ => MapVariant::V1,
            };
            let cfg = MiniViteConfig {
                scale: args.num("scale", 10u32),
                degree: args.num("degree", 8usize),
                iterations: args.num("iters", 2usize),
                variant,
                seed: args.num("seed", 42u64),
                v2_default_capacity: 64,
            };
            run_workload(
                &format!("miniVite-{}", variant.label()),
                args.num("period", 50_000u64),
                move |s| {
                    minivite::run(s, &cfg);
                },
            );
            0
        }
        "gap" => {
            let kernel = match args.positional.get(1).map(String::as_str) {
                Some("pr") => GapKernel::Pr,
                Some("pr-spmv") => GapKernel::PrSpmv,
                Some("cc") => GapKernel::Cc,
                Some("cc-sv") => GapKernel::CcSv,
                _ => usage(),
            };
            let cfg = GapConfig {
                scale: args.num("scale", 10u32),
                degree: args.num("degree", 8usize),
                kernel,
                max_iters: args.num("iters", 9usize),
                seed: args.num("seed", 9u64),
            };
            run_workload(
                &format!("GAP-{}", kernel.label()),
                args.num("period", 20_000u64),
                move |s| {
                    gap::run(s, &cfg);
                },
            );
            0
        }
        "darknet" => {
            let net = match args.positional.get(1).map(String::as_str) {
                Some("resnet152") => Network::ResNet152,
                Some("alexnet") => Network::AlexNet,
                _ => usage(),
            };
            run_workload(
                &format!("Darknet-{}", net.label()),
                args.num("period", 20_000u64),
                move |s| {
                    darknet::run(s, net);
                },
            );
            0
        }
        "fanout" => run_fanout_cmd(args),
        "store" => run_store_cmd(args),
        "query" => run_query_cmd(args),
        // Hidden worker entry point spawned by the fan-out coordinator;
        // not part of the user-facing surface, so absent from usage().
        "analyze-shard" => run_analyze_shard(args),
        "serve" => run_serve_cmd(args),
        "watch" => run_watch_cmd(args),
        "lint" => run_lint(args),
        "profile" => run_profile(args),
        "list" => {
            println!("workloads:");
            println!("  ubench    — microbenchmarks (str<k>, irr, a|b, a/b) on the IR path");
            println!("  minivite  — Louvain community detection, map variants v1/v2/v3");
            println!("  gap       — PageRank (pr, pr-spmv) and Connected Components (cc, cc-sv)");
            println!("  darknet   — gemm/im2col inference (alexnet, resnet152)");
            println!("  store     — content-addressed trace store (put/get/ls/gc/analyze)");
            println!("  query     — catalog-only region/time/function queries over a stored trace");
            println!("  serve     — streaming-analysis daemon (HTTP sessions, SSE deltas)");
            println!("  watch     — live rolling-window monitoring with an adaptive controller");
            println!("  lint      — static verification of generated modules (no execution)");
            println!("  profile   — run any subcommand with span tracing on and render the trace");
            0
        }
        _ => usage(),
    }
}
