//! # MemGaze
//!
//! Rapid and effective load-level memory trace analysis, reproducing the
//! system described in *MemGaze: Rapid and Effective Load-Level Memory Trace
//! Analysis* (Kilic et al., IEEE CLUSTER 2022) on a simulated
//! Processor-Tracing substrate.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names. The typical entry point is [`core::MemGaze`], which drives the
//! paper's pipeline: static analysis + selective instrumentation →
//! Processor-Tracing collection of sampled address traces → multi-resolution
//! reuse analysis.
//!
//! ```
//! use memgaze::core::{MemGaze, PipelineConfig};
//! use memgaze::workloads::ubench::{MicroBench, OptLevel};
//!
//! let bench = MicroBench::parse("str2", 1 << 12, 4, OptLevel::O3).unwrap();
//! let mut cfg = PipelineConfig::microbench();
//! cfg.sampler.period = 2000;
//! let report = MemGaze::new(cfg).run_microbench(&bench).expect("pipeline");
//! assert!(report.trace.num_samples() > 0);
//! ```

/// Footprint, reuse, interval-tree, zoom, heatmap and validation analyses.
pub use memgaze_analysis as analysis;
/// The high-level pipeline API.
pub use memgaze_core as core;
/// Binary instrumentation (DynInst substitute): classification, ptwrite insertion.
pub use memgaze_instrument as instrument;
/// Synthetic x64-like ISA, static analysis, and interpreter.
pub use memgaze_isa as isa;
/// Trace model: accesses, samples, sampled traces, annotations, ρ/κ.
pub use memgaze_model as model;
/// Observability: spans, counters, histograms, JSONL trace sinks.
pub use memgaze_obs as obs;
/// Intel Processor Trace hardware model and perf-like collector.
pub use memgaze_ptsim as ptsim;
/// Streaming-analysis daemon: HTTP sessions, backpressure, live deltas.
pub use memgaze_serve as serve;
/// Content-addressed trace store: blobs, catalogs, caches, queries.
pub use memgaze_store as store;
/// Traced workloads: microbenchmarks, miniVite, GAP, Darknet.
pub use memgaze_workloads as workloads;
