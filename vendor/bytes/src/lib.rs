//! Vendored stand-in for `bytes` (the build environment is offline).
//!
//! Implements exactly the subset the MemGaze trace codec uses: an
//! append-only [`BytesMut`] builder, a cheaply cloneable / sliceable
//! [`Bytes`] view backed by a shared allocation, and the [`Buf`] /
//! [`BufMut`] trait methods the codec calls.

use std::sync::Arc;

/// A mutable, growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Drop the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Freeze into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.vec)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// An immutable view into a shared byte allocation. Cloning and slicing
/// are O(1); the `Buf` reader methods advance the view's start.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Length of the remaining view (what `bytes::Bytes::len` reports).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view relative to the current view, sharing the allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.start..self.end].to_vec()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Reader trait: every method consumes from the front of the view.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

/// Borrowed view: reading advances the slice in place, no copy, no
/// refcount — the zero-allocation path for decoding from memory the
/// caller already owns.
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

impl Bytes {
    /// Consume `len` bytes into a new shared view.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Writer trait: every method appends.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slices() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 6);
        let head = frozen.slice(0..3);
        assert_eq!(head.as_slice(), &[0xAB, 0x34, 0x12]);

        let mut r = frozen.clone();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        let tail = r.copy_to_bytes(2);
        assert_eq!(tail.as_slice(), &[1, 2]);
        assert_eq!(r.remaining(), 1);
        assert_eq!(frozen.len(), 6, "clone reads don't disturb the source");
    }

    #[test]
    #[should_panic]
    fn oob_slice_panics() {
        let b = BytesMut::new().freeze();
        let _ = b.slice(0..1);
    }
}
