//! Vendored stand-in for `rand` (the build environment is offline).
//!
//! Provides the subset the synthetic workload generators use:
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen::<f64>()`. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `rand` crate's
//! `SmallRng` uses on 64-bit targets, so quality is comparable; streams
//! are deterministic per seed but not bit-identical to upstream.

/// Seedable construction (only the `u64` entry point is needed here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// The raw-output trait every generator implements.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods, blanket-implemented for all generators.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased sampling of `[0, n)` by Lemire's widening-multiply method
/// with rejection.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    let mut m = (rng.next_u64() as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let thresh = n.wrapping_neg() % n;
        while lo < thresh {
            m = (rng.next_u64() as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + sample_below(rng, span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64) + 1;
                start + sample_below(rng, span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, usize);

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + sample_below(rng, self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// algorithm backing the real crate's `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Expand the seed with SplitMix64 so state is never all-zero.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `use rand::prelude::*` compatibility.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(0..17usize);
            assert!(u < 17);
            let w = rng.gen_range(1..16u32);
            assert!((1..16).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} implausible");
        }
    }
}
