//! Vendored stand-in for `serde_derive`, written against `proc_macro`
//! alone (no `syn`/`quote` — the build environment is offline).
//!
//! `#[derive(Serialize)]` generates a real `serde::Serialize` impl that
//! writes JSON through `serde::JsonWriter`; `#[derive(Deserialize)]` is
//! accepted and expands to nothing (nothing in this workspace parses
//! serialized artifacts back).
//!
//! Supported shapes — everything this workspace derives on:
//! named-field structs, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("w.begin_object();\n");
            for f in fields {
                s.push_str(&format!(
                    "w.key({f:?}); ::serde::Serialize::write_json(&self.{f}, w);\n"
                ));
            }
            s.push_str("w.end_object();");
            s
        }
        Shape::TupleStruct(1) => {
            // Newtype structs serialize as their inner value, as serde does.
            "::serde::Serialize::write_json(&self.0, w);".to_string()
        }
        Shape::TupleStruct(n) => {
            let mut s = String::from("w.begin_array();\n");
            for i in 0..*n {
                s.push_str(&format!(
                    "w.elem(); ::serde::Serialize::write_json(&self.{i}, w);\n"
                ));
            }
            s.push_str("w.end_array();");
            s
        }
        Shape::UnitStruct => "w.null();".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let mut s = String::from("match self {\n");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        s.push_str(&format!(
                            "{name}::{v} => {{ w.string({v:?}); }}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        s.push_str(&format!(
                            "{name}::{v}(f0) => {{ w.begin_object(); w.key({v:?}); \
                             ::serde::Serialize::write_json(f0, w); w.end_object(); }}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{v}({b}) => {{ w.begin_object(); w.key({v:?}); w.begin_array();\n",
                            v = v.name,
                            b = binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "w.elem(); ::serde::Serialize::write_json({b}, w);\n"
                            ));
                        }
                        arm.push_str("w.end_array(); w.end_object(); }\n");
                        s.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{v} {{ {b} }} => {{ w.begin_object(); w.key({v:?}); w.begin_object();\n",
                            v = v.name,
                            b = fields.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "w.key({f:?}); ::serde::Serialize::write_json({f}, w);\n"
                            ));
                        }
                        arm.push_str("w.end_object(); w.end_object(); }\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push('}');
            s
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, w: &mut ::serde::JsonWriter) {{\n{body}\n}}\n}}\n",
        name = item.name
    );
    out.parse()
        .expect("serde_derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type {name})");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Item { name, shape }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = toks.next() else {
            break;
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to a top-level comma (angle-bracket aware).
        let mut angle = 0i32;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    n += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    if saw_tokens {
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(vname)) = toks.next() else {
            break;
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: vname.to_string(),
            kind,
        });
        // Consume an optional discriminant and the trailing comma.
        let mut angle = 0i32;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    variants
}
