//! Vendored stand-in for `serde` (the build environment is offline; see
//! DESIGN.md §6). It keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations and `serde_json::to_string*` entry points
//! working with a deliberately small surface: `Serialize` writes JSON
//! directly through [`JsonWriter`]; `Deserialize` derives are accepted
//! and expand to nothing (nothing here parses artifacts back).

pub use serde_derive::{Deserialize, Serialize};

/// Serialize by writing JSON into a [`JsonWriter`].
///
/// Unlike real serde there is no serializer abstraction: every consumer
/// in this workspace emits JSON, so the trait goes straight there.
pub trait Serialize {
    fn write_json(&self, w: &mut JsonWriter);
}

/// A JSON emitter with optional pretty-printing and automatic comma
/// placement.
pub struct JsonWriter {
    out: String,
    pretty: bool,
    depth: usize,
    /// Whether the current nesting level has already emitted an entry.
    has_entry: Vec<bool>,
}

impl JsonWriter {
    pub fn new(pretty: bool) -> JsonWriter {
        JsonWriter {
            out: String::new(),
            pretty,
            depth: 0,
            has_entry: Vec::new(),
        }
    }

    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }
    }

    fn open(&mut self, c: char) {
        self.out.push(c);
        self.depth += 1;
        self.has_entry.push(false);
    }

    fn close(&mut self, c: char) {
        self.depth -= 1;
        if self.has_entry.pop() == Some(true) {
            self.newline_indent();
        }
        self.out.push(c);
    }

    /// Start a new entry at the current level: comma (if needed) plus
    /// pretty-printing whitespace.
    fn entry(&mut self) {
        if let Some(has) = self.has_entry.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        self.newline_indent();
    }

    pub fn begin_object(&mut self) {
        self.open('{');
    }

    pub fn end_object(&mut self) {
        self.close('}');
    }

    pub fn begin_array(&mut self) {
        self.open('[');
    }

    pub fn end_array(&mut self) {
        self.close(']');
    }

    /// Begin an object member: `"name":`.
    pub fn key(&mut self, name: &str) {
        self.entry();
        self.string(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Begin an array element.
    pub fn elem(&mut self) {
        self.entry();
    }

    pub fn null(&mut self) {
        self.out.push_str("null");
    }

    pub fn bool(&mut self, v: bool) {
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub fn num_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    pub fn num_i64(&mut self, v: i64) {
        self.out.push_str(&v.to_string());
    }

    pub fn num_f64(&mut self, v: f64) {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            // JSON has no NaN/Inf; serde_json emits null.
            self.null();
        }
    }

    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, w: &mut JsonWriter) {
                w.num_u64(*self as u64);
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, w: &mut JsonWriter) {
                w.num_i64(*self as i64);
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn write_json(&self, w: &mut JsonWriter) {
        w.num_f64(*self);
    }
}

impl Serialize for f32 {
    fn write_json(&self, w: &mut JsonWriter) {
        w.num_f64(*self as f64);
    }
}

impl Serialize for bool {
    fn write_json(&self, w: &mut JsonWriter) {
        w.bool(*self);
    }
}

impl Serialize for str {
    fn write_json(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn write_json(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for char {
    fn write_json(&self, w: &mut JsonWriter) {
        w.string(&self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, w: &mut JsonWriter) {
        (**self).write_json(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, w: &mut JsonWriter) {
        match self {
            Some(v) => v.write_json(w),
            None => w.null(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, w: &mut JsonWriter) {
        self.as_slice().write_json(w);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for v in self {
            w.elem();
            v.write_json(w);
        }
        w.end_array();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, w: &mut JsonWriter) {
        self.as_slice().write_json(w);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn write_json(&self, w: &mut JsonWriter) {
        (**self).write_json(w);
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, w: &mut JsonWriter) {
                w.begin_array();
                $(w.elem(); self.$idx.write_json(w);)+
                w.end_array();
            }
        }
    };
}
impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Maps serialize as arrays of `[key, value]` pairs: JSON object keys
/// must be strings, and the map keys in this workspace are numeric.
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for (k, v) in self {
            w.elem();
            w.begin_array();
            w.elem();
            k.write_json(w);
            w.elem();
            v.write_json(w);
            w.end_array();
        }
        w.end_array();
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for (k, v) in self {
            w.elem();
            w.begin_array();
            w.elem();
            k.write_json(w);
            w.elem();
            v.write_json(w);
            w.end_array();
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for v in self {
            w.elem();
            v.write_json(w);
        }
        w.end_array();
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for v in self {
            w.elem();
            v.write_json(w);
        }
        w.end_array();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        let mut w = JsonWriter::new(false);
        w.begin_array();
        w.elem();
        1u64.write_json(&mut w);
        w.elem();
        (-2i64).write_json(&mut w);
        w.elem();
        2.5f64.write_json(&mut w);
        w.elem();
        "a\"b".write_json(&mut w);
        w.elem();
        f64::NAN.write_json(&mut w);
        w.end_array();
        assert_eq!(w.finish(), r#"[1,-2,2.5,"a\"b",null]"#);
    }

    #[test]
    fn nested_pretty() {
        let mut w = JsonWriter::new(true);
        w.begin_object();
        w.key("xs");
        vec![1u64, 2].write_json(&mut w);
        w.end_object();
        let s = w.finish();
        assert!(s.contains("\"xs\""));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }
}
