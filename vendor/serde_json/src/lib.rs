//! Vendored stand-in for `serde_json` over the vendored `serde`'s
//! direct-to-JSON `Serialize` trait (the build environment is offline).

use serde::{JsonWriter, Serialize};

/// Serialization error. The vendored writer is infallible, but the
/// signature mirrors `serde_json` so call sites stay unchanged.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(false);
    value.write_json(&mut w);
    Ok(w.finish())
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new(true);
    value.write_json(&mut w);
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    #[test]
    fn compact_and_pretty() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        assert_eq!(super::to_string(&v).unwrap(), r#"[[1,"a"],[2,"b"]]"#);
        let p = super::to_string_pretty(&v).unwrap();
        assert!(p.contains('\n'));
    }
}
