//! Vendored stand-in for `proptest` (the build environment is offline).
//!
//! Keeps the repo's property tests source-compatible: `Strategy` with
//! `prop_map`/`boxed`, integer-range and tuple strategies, `Just`,
//! `prop::collection::vec`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` macros over a deterministic seeded runner. Compared
//! to upstream there is no shrinking — a failing case panics with the
//! generated input debug-printed so it can be replayed by hand.

pub mod test_runner {
    /// Failure type carried by `prop_assert*!` and test helper fns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// Upstream API: treat a rejected case like a failure (no
        /// global rejection budget in this stand-in).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample an empty range");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: crate::strategy::Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            // Fixed base seed: runs are reproducible; the env override
            // lets a failure be explored from a different stream.
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0xC0FF_EE00_D15E_A5E5);
            for case in 0..self.config.cases {
                let mut rng = TestRng::new(base.wrapping_add(u64::from(case).wrapping_mul(0x9E37)));
                let value = strategy.generate(&mut rng);
                let mut shown = format!("{value:?}");
                if shown.len() > 4096 {
                    shown.truncate(4096);
                    shown.push_str("… (truncated)");
                }
                if let Err(e) = test(value) {
                    panic!(
                        "proptest: case {case}/{} failed: {e}\n  input: {shown}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!` to mix arms of
    /// different concrete types.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64) + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, usize);

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            if (start, end) == (0, u64::MAX) {
                return rng.next_u64();
            }
            start + rng.below(end - start + 1)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); ) => {};
    (@cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(
                &($($strat,)*),
                |($($arg,)*)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, v in prop::collection::vec(0u8..4, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map(k in prop_oneof![Just(1u32), (5u32..=8).prop_map(|v| v * 10)]) {
            prop_assert!(k == 1 || (50..=80).contains(&k), "{k}");
        }

        #[test]
        fn pairs(p in arb_pair()) {
            prop_assert_eq!(p.0 + p.1, p.1 + p.0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failing_case_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner.run(&(0u64..1000,), |(x,)| {
            prop_assert!(x < 2, "too big");
            Ok(())
        });
    }
}
