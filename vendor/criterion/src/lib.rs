//! Vendored stand-in for `criterion` (the build environment is offline).
//!
//! Source-compatible with the subset the benches use — groups,
//! `bench_with_input`, `Throughput`, `criterion_group!`/`criterion_main!`
//! — and does real wall-clock measurement: per-sample batches sized from
//! a calibration pass, median-of-samples reporting, and throughput
//! rates. There are no statistical regressions reports or plots; each
//! benchmark prints one summary line.
//!
//! Environment knobs:
//! - `MEMGAZE_BENCH_FAST=1` shrinks warmup/measurement budgets (CI smoke).

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier within a group, e.g. a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Collects timing samples for one benchmark via `iter`.
pub struct Bencher {
    /// Iterations per sample batch (calibrated by the harness).
    batch: u64,
    /// Total elapsed across the most recent `iter` call.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

struct Budget {
    warmup: Duration,
    measure: Duration,
    samples: usize,
}

impl Budget {
    fn new(sample_size: usize) -> Budget {
        let fast = std::env::var("MEMGAZE_BENCH_FAST").is_ok_and(|v| v != "0");
        if fast {
            Budget {
                warmup: Duration::from_millis(20),
                measure: Duration::from_millis(80),
                samples: sample_size.min(10),
            }
        } else {
            Budget {
                warmup: Duration::from_millis(150),
                measure: Duration::from_millis(750),
                samples: sample_size,
            }
        }
    }
}

/// One measured benchmark result, reported as the median over samples.
fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    budget: &Budget,
    mut routine: F,
) {
    let mut b = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };

    // Calibration/warmup: grow the batch until one batch fills a slice
    // of the warmup budget, so per-sample overhead is amortized.
    let warm_start = Instant::now();
    loop {
        routine(&mut b);
        if warm_start.elapsed() >= budget.warmup {
            break;
        }
        if b.elapsed < budget.warmup / 10 {
            b.batch = (b.batch * 2).min(1 << 30);
        }
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(budget.samples);
    let measure_start = Instant::now();
    for _ in 0..budget.samples {
        routine(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.batch as f64);
        if measure_start.elapsed() >= budget.measure {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.3} Melem/s", n as f64 / median / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.3} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "bench: {name:<48} {:>12.3} us/iter ({} samples x {} iters){rate}",
        median * 1e6,
        per_iter.len(),
        b.batch
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_bench(
            &name,
            self.throughput,
            &Budget::new(self.sample_size),
            routine,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_bench(
            &name,
            self.throughput,
            &Budget::new(self.sample_size),
            |b| routine(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 50,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_bench(id, None, &Budget::new(50), routine);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        std::env::set_var("MEMGAZE_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("smoke");
            g.throughput(Throughput::Elements(64)).sample_size(5);
            g.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
                b.iter(|| {
                    calls += 1;
                    (0..n).sum::<u64>()
                })
            });
            g.finish();
        }
        assert!(calls > 0, "bencher never invoked the routine");
        c.bench_function("smoke_fn", |b| b.iter(|| black_box(2 + 2)));
    }
}
